//! The parallel harness must be a pure optimization: for a fixed seed the
//! job-pool runner has to produce bit-identical metrics for any worker
//! count, and the profile cache has to return exactly what a cold
//! computation would.
//!
//! Everything lives in one `#[test]` because the worker-count override is
//! process-global state (the libtest runner executes sibling tests
//! concurrently).

use harp::bench::runner::{ManagerKind, RunMetrics, RunOptions};
use harp::bench::{cache, dse, jobs};
use harp::sim::SECOND;
use harp::workload::{benchmark, Platform, Scenario};

fn bits(m: RunMetrics) -> (u64, u64) {
    (m.makespan_s.to_bits(), m.energy_j.to_bits())
}

#[test]
fn parallel_runner_and_cache_are_bit_identical_to_serial() {
    // --- Job pool: 1, 2 and 8 workers vs the serial path. -------------
    let opts = RunOptions::default();
    let mut job_set = jobs::repetition_jobs(
        "determinism",
        Platform::RaptorLake,
        &Scenario::of(Platform::RaptorLake, &["ep"]),
        ManagerKind::Cfs,
        &opts,
        3,
    );
    job_set.extend(jobs::repetition_jobs(
        "determinism",
        Platform::RaptorLake,
        &Scenario::of(Platform::RaptorLake, &["mg"]),
        ManagerKind::Itd,
        &opts,
        2,
    ));

    // Serial reference: each job executed in order on this thread.
    let serial: Vec<RunMetrics> = job_set
        .iter()
        .map(|j| j.run().expect("serial job"))
        .collect();

    for workers in [1usize, 2, 8] {
        jobs::set_worker_override(Some(workers));
        let parallel = jobs::run_jobs(&job_set).expect("parallel jobs");
        jobs::set_worker_override(None);
        assert_eq!(parallel.len(), serial.len());
        for (i, (p, s)) in parallel.iter().zip(&serial).enumerate() {
            assert_eq!(
                bits(*p),
                bits(*s),
                "job {i} differs with {workers} workers: {p:?} vs {s:?}"
            );
        }
    }

    // Folding the repetition groups must match `run_repeated` exactly.
    let folded = jobs::fold_repetitions(&serial[..3]);
    let repeated = harp::bench::runner::run_repeated(
        Platform::RaptorLake,
        &Scenario::of(Platform::RaptorLake, &["ep"]),
        ManagerKind::Cfs,
        &opts,
        3,
    )
    .expect("run_repeated");
    assert_eq!(bits(folded), bits(repeated), "fold vs run_repeated");

    // --- Profile cache: hit == cold computation. ----------------------
    cache::reset();
    cache::set_spill_dir(None);
    let spec = benchmark(Platform::Odroid, "ep").expect("known benchmark");
    let cold = dse::sweep_table(Platform::Odroid, &spec, 60.0, 17).expect("cold sweep");
    let first = cache::offline_table(Platform::Odroid, &spec, 60.0, 17).expect("miss");
    assert_eq!(cache::misses(), 1, "first lookup computes");
    let second = cache::offline_table(Platform::Odroid, &spec, 60.0, 17).expect("hit");
    assert_eq!(cache::hits(), 1, "second lookup hits");
    let json = |t| serde_json::to_string(t).expect("serializable table");
    assert_eq!(json(&first), json(&cold), "cached vs uncached computation");
    assert_eq!(json(&first), json(&second), "hit vs miss");

    // Learned profiles: cached result == direct computation.
    let sc = Scenario::of(Platform::RaptorLake, &["mg"]);
    let direct = harp::bench::runner::learn_profiles(Platform::RaptorLake, &sc, 30 * SECOND, 23)
        .expect("direct learn");
    let cached =
        cache::learned_profiles(Platform::RaptorLake, &sc, 30 * SECOND, 23).expect("cached learn");
    assert_eq!(
        serde_json::to_string(&direct).expect("store json"),
        serde_json::to_string(&cached).expect("store json"),
        "learned profiles: cached vs direct"
    );

    // --- JSON spill: a fresh in-memory cache reloads from disk. -------
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("harp-profile-cache-test");
    let _ = std::fs::remove_dir_all(&dir);
    cache::set_spill_dir(Some(dir.clone()));
    cache::reset();
    let spilled = cache::offline_table(Platform::Odroid, &spec, 60.0, 17).expect("spill miss");
    assert_eq!(cache::misses(), 1);
    cache::reset(); // drop the in-memory copy, keep the spill file
    let reloaded = cache::offline_table(Platform::Odroid, &spec, 60.0, 17).expect("spill hit");
    assert_eq!(cache::hits(), 1, "reloaded from the spill directory");
    assert_eq!(cache::misses(), 0, "no recomputation after reload");
    assert_eq!(json(&spilled), json(&reloaded), "spill round-trip");
    cache::set_spill_dir(None);
    cache::reset();
    let _ = std::fs::remove_dir_all(&dir);
}
