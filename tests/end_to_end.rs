//! Cross-crate integration tests: the full HARP stack — protocol, libharp,
//! RM core, allocation, simulator, workloads — wired together the way a
//! deployment would use it.

use harp::libharp::{HarpSession, MalleableRuntime, SessionConfig};
use harp::platform::HardwareDescription;
use harp::proto::{duplex, AdaptivityType, Message, RegisterAck};
use harp::rm::{RmConfig, RmCore};
use harp::types::{AppId, ExtResourceVector, NonFunctional};

/// A minimal in-process RM frontend over the duplex transport: receives
/// registration + points, runs the real `RmCore`, pushes activations back —
/// the paper's Fig. 3 control flow.
#[test]
fn registration_points_activation_flow_over_protocol() {
    let hw = HardwareDescription::raptor_lake();
    let shape = hw.erv_shape();
    let (app_side, rm_side) = duplex();

    let server = std::thread::spawn(move || {
        let cfg = RmConfig {
            offline: true,
            ..Default::default()
        };
        let mut rm = RmCore::new(HardwareDescription::raptor_lake(), cfg);
        let shape = HardwareDescription::raptor_lake().erv_shape();
        let mut app_id = None;
        loop {
            let msg = match rm_side.recv() {
                Ok(m) => m,
                Err(_) => return,
            };
            match msg {
                Message::Register(reg) => {
                    let id = AppId(1);
                    app_id = Some(id);
                    rm.register(id, &reg.app_name, reg.provides_utility)
                        .expect("register");
                    rm_side
                        .send(&Message::RegisterAck(RegisterAck::new(id.raw())))
                        .unwrap();
                }
                Message::SubmitPoints(sp) => {
                    let id = app_id.expect("registered");
                    let points = sp
                        .points
                        .iter()
                        .map(|p| {
                            (
                                ExtResourceVector::from_flat(&shape, &p.erv_flat).unwrap(),
                                NonFunctional::new(p.utility, p.power),
                            )
                        })
                        .collect();
                    let out = rm.submit_points(id, points).expect("submit");
                    for d in &out.directives {
                        rm_side
                            .send(&Message::Activate(harp::proto::Activate {
                                app_id: d.app.raw(),
                                erv_flat: d.erv.flat(),
                                core_ids: d.cores.iter().map(|c| c.0 as u32).collect(),
                                parallelism: d.parallelism,
                                hw_thread_ids: d.hw_threads.iter().map(|t| t.0 as u32).collect(),
                            }))
                            .unwrap();
                    }
                }
                Message::Exit { .. } => return,
                _ => {}
            }
        }
    });

    // Application side: description file with an efficient small point.
    let points = vec![
        (
            ExtResourceVector::from_flat(&shape, &[0, 8, 16]).unwrap(),
            NonFunctional::new(1.0e11, 140.0),
        ),
        (
            ExtResourceVector::from_flat(&shape, &[0, 0, 6]).unwrap(),
            NonFunctional::new(7.0e10, 32.0),
        ),
    ];
    let cfg =
        SessionConfig::new("integration", AdaptivityType::Scalable).with_points(vec![2, 1], points);
    let mut session = HarpSession::connect(app_side, cfg).unwrap();

    // Receive the activation and wire it into the malleable runtime.
    let runtime = MalleableRuntime::new(session.allocation(), 32);
    session.poll_blocking(|| 0.0).unwrap();
    let act = session.allocation().current().expect("activation arrived");
    assert_eq!(act.parallelism, 6, "the efficient 6-E-core point wins");
    assert_eq!(runtime.current_team(), 6);
    // The parallel region actually runs with the RM-chosen team.
    let widths = runtime.parallel_region(|_, team| team);
    assert_eq!(widths, vec![6; 6]);

    session.exit().unwrap();
    server.join().unwrap();
}

/// The full daemon path over a real Unix socket, including profile
/// persistence across two runs of the same application.
#[cfg(unix)]
#[test]
fn daemon_round_trip_with_profile_reuse() {
    use harp::daemon::{DaemonConfig, HarpDaemon, UnixTransport};
    let hw = HardwareDescription::raptor_lake();
    let shape = hw.erv_shape();
    let socket = std::env::temp_dir().join(format!("harp-int-{}.sock", std::process::id()));
    let daemon = HarpDaemon::start(DaemonConfig::new(&socket, hw)).unwrap();

    // First run submits points.
    let points = vec![(
        ExtResourceVector::from_flat(&shape, &[0, 2, 0]).unwrap(),
        NonFunctional::new(2.0e10, 20.0),
    )];
    let s1 = HarpSession::connect(
        UnixTransport::connect(&socket).unwrap(),
        SessionConfig::new("reuse-me", AdaptivityType::Scalable).with_points(vec![2, 1], points),
    )
    .unwrap();
    s1.exit().unwrap();
    // Give the daemon a moment to persist the profile on disconnect.
    std::thread::sleep(std::time::Duration::from_millis(100));

    // Second run of the same name: no points submitted, yet the stored
    // profile drives the activation.
    let mut s2 = HarpSession::connect(
        UnixTransport::connect(&socket).unwrap(),
        SessionConfig::new("reuse-me", AdaptivityType::Scalable),
    )
    .unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        s2.poll(|| 0.0).unwrap();
        if let Some(act) = s2.allocation().current() {
            if act.parallelism == 4 {
                break; // 2 P-cores x 2 threads, from the persisted profile
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "profile-driven activation never arrived: {:?}",
            s2.allocation().current()
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    s2.exit().unwrap();
    daemon.shutdown();
}

/// The daemon path must be a pure transport: running the same scenario
/// through a real loopback socket and directly against an in-process
/// `RmCore` with the daemon's configuration must converge to the *same*
/// final allocation, bit for bit — vector, core ids, thread ids,
/// parallelism. Any divergence means the daemon (framing, routing, session
/// bookkeeping) is editorializing on RM decisions.
#[cfg(unix)]
#[test]
fn daemon_allocation_matches_in_process_run_bitwise() {
    use harp::daemon::{DaemonConfig, HarpDaemon, UnixTransport};
    let hw = HardwareDescription::raptor_lake();
    let shape = hw.erv_shape();
    let points = vec![
        (
            ExtResourceVector::from_flat(&shape, &[0, 6, 0]).unwrap(),
            NonFunctional::new(6.0e10, 90.0),
        ),
        (
            ExtResourceVector::from_flat(&shape, &[0, 2, 4]).unwrap(),
            NonFunctional::new(5.0e10, 45.0),
        ),
        (
            ExtResourceVector::from_flat(&shape, &[0, 0, 8]).unwrap(),
            NonFunctional::new(3.5e10, 18.0),
        ),
    ];

    // Reference run: the RM core driven directly, using the exact
    // configuration the daemon constructs (offline mode).
    let cfg = DaemonConfig::new("/unused", hw.clone());
    let mut rm = RmCore::new(hw, cfg.rm.clone());
    let id = AppId(1); // the daemon's id counter also starts at 1
    rm.register(id, "bitwise", false).expect("register");
    let out = rm.submit_points(id, points.clone()).expect("submit");
    let reference = out
        .directives
        .iter()
        .find(|d| d.app == id)
        .expect("allocation for the only app")
        .clone();

    // Daemon run: same app, same points, over a real Unix socket.
    let socket = std::env::temp_dir().join(format!("harp-bitwise-{}.sock", std::process::id()));
    let daemon = HarpDaemon::start(DaemonConfig::new(&socket, cfg.hw)).unwrap();
    let mut session = HarpSession::connect(
        UnixTransport::connect(&socket).unwrap(),
        SessionConfig::new("bitwise", AdaptivityType::Scalable).with_points(vec![2, 1], points),
    )
    .unwrap();
    assert_eq!(session.app_id(), id.raw(), "daemon assigned a different id");

    let want_threads: Vec<_> = reference.hw_threads.clone();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let act = loop {
        session.poll(|| 0.0).unwrap();
        // The provisional whole-machine activation from registration may
        // arrive first; wait for the post-submission allocation.
        if let Some(act) = session.allocation().current() {
            if act.parallelism == reference.parallelism {
                break act;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "daemon never converged to the reference allocation {reference:?}; last {:?}",
            session.allocation().current()
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    };
    assert_eq!(act.erv_flat, reference.erv.flat(), "vector differs");
    assert_eq!(act.hw_threads, want_threads, "hw threads differ");
    assert_eq!(act.parallelism, reference.parallelism);

    session.exit().unwrap();
    daemon.shutdown();
}

/// Crash recovery end to end: a journaled daemon is killed mid-session and
/// restarted from its journal; the client (connected with a reconnect
/// policy) rides out the outage in degraded mode with its last activation
/// still applied, resumes idempotently under its token, and the replayed
/// allocation is bit-identical to the pre-crash one.
#[cfg(unix)]
#[test]
fn killed_daemon_restart_resumes_client_with_bit_identical_allocation() {
    use harp::daemon::{DaemonConfig, HarpDaemon, UnixTransport};
    use harp::libharp::{ReconnectPolicy, SessionState};
    use std::time::{Duration, Instant};

    let hw = HardwareDescription::raptor_lake();
    let shape = hw.erv_shape();
    let pid = std::process::id();
    let socket = std::env::temp_dir().join(format!("harp-recover-{pid}.sock"));
    let journal = std::env::temp_dir().join(format!("harp-recover-{pid}.journal"));
    let _ = std::fs::remove_file(&journal);

    let daemon =
        HarpDaemon::start(DaemonConfig::new(&socket, hw.clone()).with_journal(&journal)).unwrap();
    let epoch_before = daemon.epoch();

    let points = vec![
        (
            ExtResourceVector::from_flat(&shape, &[0, 4, 0]).unwrap(),
            NonFunctional::new(3.0e10, 40.0),
        ),
        (
            ExtResourceVector::from_flat(&shape, &[0, 0, 8]).unwrap(),
            NonFunctional::new(2.5e10, 15.0),
        ),
    ];
    let sock = socket.clone();
    let mut session = HarpSession::connect_with_reconnect(
        move || UnixTransport::connect(&sock).map_err(Into::into),
        SessionConfig::new("survivor", AdaptivityType::Scalable).with_points(vec![2, 1], points),
        ReconnectPolicy::new(Duration::from_millis(2), Duration::from_millis(50), 500)
            .with_seed(0x5EED_CAFE),
    )
    .unwrap();
    let app_id = session.app_id();

    // Settle on the post-submission allocation (8 E-core threads).
    let poll_until =
        |session: &mut HarpSession<UnixTransport>,
         what: &str,
         mut cond: Box<dyn FnMut(&mut HarpSession<UnixTransport>) -> bool>| {
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                let _ = session.poll(|| 0.0);
                if cond(session) {
                    break;
                }
                assert!(Instant::now() < deadline, "timed out waiting for {what}");
                std::thread::sleep(Duration::from_millis(2));
            }
        };
    poll_until(
        &mut session,
        "first allocation",
        Box::new(|s| s.allocation().current().is_some_and(|a| a.parallelism == 8)),
    );
    let before = session.allocation().current().expect("allocation");

    // Crash: connections severed, journal kept. The session degrades but
    // keeps the last activation applied.
    daemon.kill();
    poll_until(
        &mut session,
        "degraded state",
        Box::new(|s| s.state() == SessionState::Degraded),
    );
    assert_eq!(
        session.allocation().current(),
        Some(before.clone()),
        "degraded session must keep the last activation applied"
    );

    // Restart from the same journal: epoch bumps, the session resumes
    // under its token and replays the identical allocation.
    let daemon = HarpDaemon::start(DaemonConfig::new(&socket, hw).with_journal(&journal)).unwrap();
    assert!(daemon.epoch() > epoch_before, "boot epoch must increase");
    poll_until(
        &mut session,
        "reconnect",
        Box::new(|s| s.state() == SessionState::Connected),
    );
    assert_eq!(session.app_id(), app_id, "resume must keep the session id");
    assert!(
        session.epoch() > epoch_before,
        "client must observe the bump"
    );
    poll_until(
        &mut session,
        "replayed allocation",
        Box::new(move |s| s.allocation().current() == Some(before.clone())),
    );

    session.exit().unwrap();
    daemon.shutdown();
    let _ = std::fs::remove_file(&journal);
}

/// End-to-end evaluation shape: on the simulated Raptor Lake, HARP with
/// learned points must beat CFS on energy for a memory+compute mix, and the
/// binpack convoy must yield a multi-x speedup.
#[test]
fn simulated_evaluation_shapes_hold() {
    use harp_bench::runner::{improvement, learn_profiles, run_scenario, ManagerKind, RunOptions};
    use harp_workload::{Platform, Scenario};

    let scenario = Scenario::of(Platform::RaptorLake, &["mg", "ep"]);
    let opts = RunOptions::default();
    let cfs = run_scenario(Platform::RaptorLake, &scenario, ManagerKind::Cfs, &opts).unwrap();
    let profiles =
        learn_profiles(Platform::RaptorLake, &scenario, 120 * harp::sim::SECOND, 9).unwrap();
    let mut hopts = opts.clone();
    hopts.profiles = Some(profiles);
    let harp_run =
        run_scenario(Platform::RaptorLake, &scenario, ManagerKind::Harp, &hopts).unwrap();
    let imp = improvement(cfs, harp_run);
    assert!(imp.energy > 1.0, "HARP must save energy on mg+ep: {imp:?}");

    let binpack = Scenario::of(Platform::RaptorLake, &["binpack"]);
    let cfs_bp = run_scenario(Platform::RaptorLake, &binpack, ManagerKind::Cfs, &opts).unwrap();
    let profiles =
        learn_profiles(Platform::RaptorLake, &binpack, 90 * harp::sim::SECOND, 9).unwrap();
    let mut bopts = opts.clone();
    bopts.profiles = Some(profiles);
    let harp_bp = run_scenario(Platform::RaptorLake, &binpack, ManagerKind::Harp, &bopts).unwrap();
    let imp = improvement(cfs_bp, harp_bp);
    assert!(
        imp.time > 2.0,
        "binpack should speed up multi-x under HARP (paper 6.9x): {imp:?}"
    );
}

/// The Odroid path: HARP (Offline) with DSE profiles vs EAS on a
/// mixed-characteristics pair.
#[test]
fn odroid_offline_beats_eas_on_multi_scenario() {
    use harp_bench::dse::offline_profiles;
    use harp_bench::runner::{improvement, run_scenario, ManagerKind, RunOptions};
    use harp_workload::{Platform, Scenario};

    let scenario = Scenario::of(Platform::Odroid, &["bt", "cg", "lu"]);
    let profiles = offline_profiles(Platform::Odroid, &scenario.apps, 600.0).unwrap();
    let opts = RunOptions {
        governor: harp::platform::Governor::Schedutil,
        ..RunOptions::default()
    };
    let eas = run_scenario(Platform::Odroid, &scenario, ManagerKind::Eas, &opts).unwrap();
    let mut hopts = opts.clone();
    hopts.profiles = Some(profiles);
    let harp_run = run_scenario(
        Platform::Odroid,
        &scenario,
        ManagerKind::HarpOffline,
        &hopts,
    )
    .unwrap();
    let imp = improvement(eas, harp_run);
    assert!(
        imp.time > 1.0 && imp.energy > 1.0,
        "HARP (Offline) should beat EAS on bt+cg+lu: {imp:?}"
    );
}
