//! End-to-end regression tests for the `harp-trace` CLI: malformed or
//! producer-truncated dumps must fail (or warn) with the documented
//! typed exit codes instead of panicking, and `--watch` must stream a
//! live daemon's telemetry frames.

use std::path::PathBuf;
use std::process::Command;

fn harp_trace() -> Command {
    Command::new(env!("CARGO_BIN_EXE_harp-trace"))
}

fn corpus(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus")
        .join(name)
}

#[test]
fn usage_errors_exit_2() {
    let out = harp_trace().output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "no args should be a usage error"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    let out = harp_trace().arg("--bogus-flag").output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    // --watch without a socket is a usage error, not a hang.
    let out = harp_trace().args(["--watch"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn missing_file_exits_3() {
    let out = harp_trace()
        .arg("/nonexistent/dump.jsonl")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("io error"));
}

#[test]
fn malformed_dumps_exit_5_without_panicking() {
    for fixture in ["malformed_cut_line.jsonl", "malformed_bad_header.jsonl"] {
        let out = harp_trace().arg(corpus(fixture)).output().unwrap();
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(
            out.status.code(),
            Some(5),
            "{fixture}: expected malformed-dump exit, got {:?}\nstderr: {stderr}",
            out.status
        );
        assert!(
            stderr.contains("malformed dump"),
            "{fixture}: untyped error: {stderr}"
        );
        assert!(
            !stderr.contains("panicked"),
            "{fixture}: the CLI panicked: {stderr}"
        );
    }
}

#[test]
fn producer_truncated_dump_renders_with_a_note() {
    let out = harp_trace()
        .arg(corpus("truncated_by_producer.jsonl"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "marker dumps are still valid");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("dropping 8192 bytes"),
        "missing truncation note:\n{stdout}"
    );
}

#[test]
fn watch_streams_bounded_frames_from_a_live_daemon() {
    let hw = harp_platform::HardwareDescription::raptor_lake();
    let socket = std::env::temp_dir().join(format!("harp-trace-cli-{}.sock", std::process::id()));
    let daemon =
        harp_daemon::HarpDaemon::start(harp_daemon::DaemonConfig::new(&socket, hw).with_shards(1))
            .unwrap();

    let out = harp_trace()
        .args(["--socket", socket.to_str().unwrap()])
        .args(["--watch", "--interval", "20", "--frames", "3", "--metrics"])
        .output()
        .unwrap();
    daemon.shutdown();

    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "watch failed\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        stdout.matches("== frame seq=").count(),
        3,
        "expected exactly 3 frames:\n{stdout}"
    );
    // The baseline frame carries cumulative daemon metrics.
    assert!(
        stdout.contains("daemon."),
        "baseline frame should include daemon metrics:\n{stdout}"
    );
}
