//! Minimal, offline stand-in for the `rand` crate covering the API surface
//! used by this workspace: `RngCore`, `Rng::{random, random_range,
//! random_bool}`, `SeedableRng::seed_from_u64`, and
//! `seq::SliceRandom::shuffle`. Deterministic per seed; not bit-compatible
//! with upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u32`/`u64` words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction. Only the `seed_from_u64` entry point is provided;
/// it expands the state with SplitMix64 like upstream's default.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step, used for seed expansion by `SeedableRng` implementors.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Values constructible from a single raw draw ("standard" distribution).
pub trait FromRng: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types uniformly sampleable from a half-open or inclusive range using one
/// raw 64-bit draw.
pub trait SampleVal: Copy + PartialOrd {
    fn from_draw(lo: Self, hi: Self, inclusive: bool, draw: u64) -> Self;
}

macro_rules! sample_val_int {
    ($($t:ty),*) => {$(
        impl SampleVal for $t {
            fn from_draw(lo: Self, hi: Self, inclusive: bool, draw: u64) -> Self {
                let span = (hi as i128) - (lo as i128) + if inclusive { 1 } else { 0 };
                debug_assert!(span > 0);
                let off = (draw as u128 % span as u128) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
sample_val_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleVal for f64 {
    fn from_draw(lo: Self, hi: Self, _inclusive: bool, draw: u64) -> Self {
        let frac = (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + frac * (hi - lo)
    }
}

impl SampleVal for f32 {
    fn from_draw(lo: Self, hi: Self, _inclusive: bool, draw: u64) -> Self {
        let frac = (draw >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
        lo + frac * (hi - lo)
    }
}

/// Range-like arguments accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleVal> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::from_draw(self.start, self.end, false, rng.next_u64())
    }
}

impl<T: SampleVal> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        T::from_draw(lo, hi, true, rng.next_u64())
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn random<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    fn random_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Small fast PRNG (xoshiro256**-style) for internal use.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut st = state;
            Self {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.random_range(3..9);
            assert!((3..9).contains(&v));
            let w = rng.random_range(2..=4u64);
            assert!((2..=4).contains(&w));
            let f = rng.random_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let x = rng.random::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
