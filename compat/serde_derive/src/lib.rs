//! `#[derive(Serialize, Deserialize)]` for the compat `serde` crate,
//! implemented by walking the raw `TokenStream` (no `syn`/`quote`
//! available offline). Supports the shapes this workspace uses:
//!
//! - structs with named fields  -> JSON object keyed by field name
//! - tuple structs with 1 field -> transparent newtype
//! - tuple structs with N>1     -> JSON array
//! - unit structs               -> null
//! - enums with unit variants   -> `"VariantName"`
//! - enums with newtype variants-> `{"VariantName": payload}`
//!
//! Generics and `#[serde(...)]` attributes are intentionally unsupported
//! and panic at expansion time so misuse is caught at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct { fields: Vec<String> },
    TupleStruct { arity: usize },
    UnitStruct,
    Enum { variants: Vec<(String, bool)> }, // (name, has_payload)
}

struct Parsed {
    name: String,
    shape: Shape,
}

/// Skip outer attributes (`#[...]`, including doc comments) and visibility
/// markers, returning the remaining tokens.
fn skip_attrs_and_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` or `#!` followed by a bracket group.
                i += 1;
                if let Some(TokenTree::Punct(p2)) = tokens.get(i) {
                    if p2.as_char() == '!' {
                        i += 1;
                    }
                }
                match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => i += 1,
                    _ => panic!("serde_derive: malformed attribute"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` etc.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return &tokens[i..],
        }
    }
}

/// Extract field names from the brace group of a named-field struct.
fn named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut rest: &[TokenTree] = &tokens;
    while !rest.is_empty() {
        rest = skip_attrs_and_vis(rest);
        let Some(TokenTree::Ident(name)) = rest.first() else {
            break;
        };
        fields.push(name.to_string());
        // Skip `: Type` up to the next top-level comma, tracking generic
        // angle depth so `HashMap<K, V>` commas don't split fields.
        let mut angle: i32 = 0;
        let mut i = 1;
        while i < rest.len() {
            if let TokenTree::Punct(p) = &rest[i] {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        rest = &rest[i..];
    }
    fields
}

/// Count fields in the paren group of a tuple struct.
fn tuple_arity(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle: i32 = 0;
    for (i, t) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 && i + 1 < tokens.len() => arity += 1,
                _ => {}
            }
        }
    }
    arity
}

/// Extract `(variant_name, has_newtype_payload)` pairs from an enum body.
fn enum_variants(group: &proc_macro::Group) -> Vec<(String, bool)> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut rest: &[TokenTree] = &tokens;
    while !rest.is_empty() {
        rest = skip_attrs_and_vis(rest);
        let Some(TokenTree::Ident(name)) = rest.first() else {
            break;
        };
        let name = name.to_string();
        let mut i = 1;
        let mut has_payload = false;
        match rest.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                assert_eq!(
                    tuple_arity(g),
                    1,
                    "serde_derive: enum variant `{name}` must have exactly one payload field"
                );
                has_payload = true;
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("serde_derive: struct enum variants are not supported (`{name}`)");
            }
            _ => {}
        }
        match rest.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(other) => panic!("serde_derive: unexpected token after variant `{name}`: {other}"),
        }
        variants.push((name, has_payload));
        rest = &rest[i..];
    }
    variants
}

fn parse(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let rest = skip_attrs_and_vis(&tokens);
    let (kind, rest) = match rest.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => ("struct", &rest[1..]),
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => ("enum", &rest[1..]),
        other => panic!("serde_derive: expected struct or enum, got {other:?}"),
    };
    let Some(TokenTree::Ident(name)) = rest.first() else {
        panic!("serde_derive: expected type name");
    };
    let name = name.to_string();
    let rest = &rest[1..];
    if let Some(TokenTree::Punct(p)) = rest.first() {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported ({name})");
        }
    }
    let shape = match (kind, rest.first()) {
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => Shape::Enum {
            variants: enum_variants(g),
        },
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::NamedStruct {
                fields: named_fields(g),
            }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct {
                arity: tuple_arity(g),
            }
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Shape::UnitStruct,
        (k, other) => panic!("serde_derive: unsupported {k} body for {name}: {other:?}"),
    };
    Parsed { name, shape }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let p = parse(input);
    let name = &p.name;
    let body = match &p.shape {
        Shape::NamedStruct { fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push(({f:?}.to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}::serde::Value::Obj(fields)"
            )
        }
        Shape::TupleStruct { arity: 1 } => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct { arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum { variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, has_payload)| {
                    if *has_payload {
                        format!(
                            "{name}::{v}(inner) => ::serde::Value::Obj(vec![({v:?}.to_string(), \
                             ::serde::Serialize::to_value(inner))]),\n"
                        )
                    } else {
                        format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string()),\n")
                    }
                })
                .collect();
            // `_ => unreachable` arm is unnecessary: all variants covered.
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let p = parse(input);
    let name = &p.name;
    let body = match &p.shape {
        Shape::NamedStruct { fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__private::get_field(v, {name:?}, {f:?})?,\n"))
                .collect();
            format!("Ok({name} {{\n{inits}}})")
        }
        Shape::TupleStruct { arity: 1 } => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct { arity } => {
            let gets: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Arr(items) if items.len() == {arity} => \
                 Ok({name}({gets})),\n\
                 other => Err(::serde::DeError::custom(format!(\
                 \"{name}: expected {arity}-element array, got {{other:?}}\"))),\n}}",
                gets = gets.join(", ")
            )
        }
        Shape::UnitStruct => format!(
            "match v {{\n\
             ::serde::Value::Null => Ok({name}),\n\
             other => Err(::serde::DeError::custom(format!(\
             \"{name}: expected null, got {{other:?}}\"))),\n}}"
        ),
        Shape::Enum { variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, has)| !has)
                .map(|(v, _)| format!("{v:?} => Ok({name}::{v}),\n"))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter(|(_, has)| *has)
                .map(|(v, _)| {
                    format!(
                        "{v:?} => Ok({name}::{v}(::serde::Deserialize::from_value(payload)?)),\n"
                    )
                })
                .collect();
            let obj_arm = if payload_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "::serde::Value::Obj(fields) if fields.len() == 1 => {{\n\
                     let (tag, payload) = &fields[0];\n\
                     match tag.as_str() {{\n\
                     {payload_arms}\
                     other => Err(::serde::DeError::custom(format!(\
                     \"{name}: unknown variant `{{other}}`\"))),\n}}\n}},\n"
                )
            };
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => Err(::serde::DeError::custom(format!(\
                 \"{name}: unknown variant `{{other}}`\"))),\n}},\n\
                 {obj_arm}\
                 other => Err(::serde::DeError::custom(format!(\
                 \"{name}: expected variant, got {{other:?}}\"))),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<{name}, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .unwrap()
}
