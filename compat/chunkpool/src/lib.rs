//! Minimal, dependency-free chunked worker pool for deterministic
//! data-parallel loops (a tiny offline stand-in for the slice of `rayon`
//! this workspace would otherwise use; see `compat/README.md`).
//!
//! The design goal is *bit-identical results at any thread count*: the
//! caller pre-splits its work into an ordered list of chunks (each chunk
//! typically owning disjoint `&mut` sub-slices of the output buffers), the
//! pool executes `f(chunk_index, chunk)` exactly once per chunk, and the
//! caller performs any cross-chunk reduction serially in chunk order after
//! [`Pool::run_parts`] returns. Which *thread* executes a chunk is
//! scheduling-dependent; what the chunk computes and where it lands is not.
//!
//! A [`Pool`] of `threads` spawns `threads - 1` persistent workers; the
//! submitting thread claims chunks too, so `Pool::new(1)` degenerates to a
//! plain serial loop with no synchronization. Worker threads park on a
//! condvar between jobs, so a dispatch costs roughly one mutex round trip
//! plus a wakeup — cheap enough to dispatch once per subgradient
//! iteration of a solver.
//!
//! Panic policy: a panicking chunk does not deadlock the pool. The panic
//! is caught on whichever thread ran the chunk, the job still completes,
//! and [`Pool::run_parts`] re-panics on the calling thread.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Type-erased pointer to the per-chunk closure of the current job.
///
/// Safety: the pointer is only dereferenced while the owning
/// [`Pool::run`] call is still on the submitter's stack — `run` does not
/// return until every chunk has executed, and a thread never calls the
/// closure once its claimed index reaches `num_chunks`.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the closure behind the pointer is `Sync` (shared calls from many
// threads are fine) and the completion barrier in `Pool::run` bounds its
// lifetime as described on `TaskPtr`.
unsafe impl Send for TaskPtr {}
// SAFETY: see above — `&TaskPtr` only ever hands out `&dyn Fn + Sync`.
unsafe impl Sync for TaskPtr {}

/// One dispatched job: an erased chunk closure plus its claim/completion
/// counters. Cloned out of the job slot by each participating thread.
#[derive(Clone)]
struct Job {
    task: TaskPtr,
    /// Next chunk index to claim (fetch-add).
    next: Arc<AtomicUsize>,
    /// Chunks not yet finished; the job is complete at zero.
    pending: Arc<AtomicUsize>,
    /// A chunk panicked somewhere; `run` re-panics after completion.
    poisoned: Arc<AtomicBool>,
    num_chunks: usize,
}

struct State {
    /// Bumped once per dispatched job; workers use it to detect new work.
    epoch: u64,
    job: Option<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for a new epoch.
    work_cv: Condvar,
    /// The submitter waits here for `pending == 0`.
    done_cv: Condvar,
}

fn lock(m: &Mutex<State>) -> std::sync::MutexGuard<'_, State> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A fixed-size pool of persistent worker threads executing pre-split
/// chunked jobs with deterministic chunk→slot mapping.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl Pool {
    /// Creates a pool of `threads` total execution lanes: `threads - 1`
    /// spawned workers plus the submitting thread. `threads <= 1` spawns
    /// nothing and [`Pool::run_parts`] runs serially.
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name("chunkpool".into())
                    .spawn(move || worker(&shared))
                    .expect("spawn chunkpool worker")
            })
            .collect();
        Pool {
            shared,
            workers,
            threads,
        }
    }

    /// Total execution lanes (spawned workers + the submitting thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes `f(index, part)` exactly once for every part, in parallel,
    /// and returns once all parts completed. Part `i` always receives index
    /// `i`; results must be written into the parts themselves (or reduced
    /// by the caller afterwards, in index order, for determinism).
    ///
    /// # Panics
    ///
    /// Re-panics on the calling thread if any chunk panicked (after the
    /// whole job has completed, so the pool stays usable).
    pub fn run_parts<P, F>(&self, parts: Vec<P>, f: F)
    where
        P: Send,
        F: Fn(usize, P) + Sync,
    {
        if self.workers.is_empty() || parts.len() <= 1 {
            for (i, p) in parts.into_iter().enumerate() {
                f(i, p);
            }
            return;
        }
        // Each part sits in its own slot; the chunk task claims slot `i`
        // exactly once (the `next` counter hands every index to exactly one
        // thread), so the slot mutexes are never contended.
        let slots: Vec<Mutex<Option<P>>> = parts.into_iter().map(|p| Mutex::new(Some(p))).collect();
        let task = |i: usize| {
            let part = slots[i]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take()
                .expect("chunk index claimed exactly once");
            f(i, part);
        };
        self.run(slots.len(), &task);
    }

    /// Dispatches `task` over `num_chunks` chunk indices and blocks until
    /// all have executed. The submitting thread participates.
    fn run(&self, num_chunks: usize, task: &(dyn Fn(usize) + Sync)) {
        if num_chunks == 0 {
            return;
        }
        // SAFETY: lifetime erasure only — the pointer is dead before `run`
        // returns (TaskPtr contract), so the borrow it came from outlives
        // every dereference.
        let task: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
        let job = Job {
            task: TaskPtr(task as *const _),
            next: Arc::new(AtomicUsize::new(0)),
            pending: Arc::new(AtomicUsize::new(num_chunks)),
            poisoned: Arc::new(AtomicBool::new(false)),
            num_chunks,
        };
        {
            let mut st = lock(&self.shared.state);
            st.epoch += 1;
            st.job = Some(job.clone());
        }
        self.shared.work_cv.notify_all();

        run_chunks(&self.shared, &job);

        let mut st = lock(&self.shared.state);
        while job.pending.load(Ordering::Acquire) != 0 {
            st = self
                .shared
                .done_cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        // All chunks have finished; nothing will touch the task pointer
        // again. Drop the job so its counters are not kept alive.
        st.job = None;
        drop(st);
        if job.poisoned.load(Ordering::Acquire) {
            panic!("chunkpool: a chunk task panicked");
        }
    }
}

/// Claims and executes chunk indices of `job` until exhausted. Used by both
/// workers and the submitting thread.
fn run_chunks(shared: &Shared, job: &Job) {
    loop {
        let i = job.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.num_chunks {
            return;
        }
        // SAFETY: `i < num_chunks`, so the submitter is still blocked in
        // `Pool::run` and the closure is alive (TaskPtr contract).
        let task = unsafe { &*job.task.0 };
        if catch_unwind(AssertUnwindSafe(|| task(i))).is_err() {
            job.poisoned.store(true, Ordering::Release);
        }
        if job.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last chunk: wake the submitter. Taking the state lock first
            // orders this notify after the submitter either checked
            // `pending` (and stayed awake) or went to sleep on `done_cv`,
            // so the wakeup cannot be lost.
            drop(lock(&shared.state));
            shared.done_cv.notify_all();
        }
    }
}

fn worker(shared: &Arc<Shared>) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    if let Some(j) = st.job.clone() {
                        break j;
                    }
                    // Epoch advanced but the job is already gone (it
                    // completed before this worker woke): keep waiting.
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        run_chunks(shared, &job);
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Process-global pool cache: returns a pool with exactly `threads` lanes,
/// reusing the previous one when the size matches (the common case — a
/// process picks one solver thread count and sticks with it). Sizes `0`
/// and `1` share the serial singleton.
pub fn global(threads: usize) -> Arc<Pool> {
    static CACHE: Mutex<Option<Arc<Pool>>> = Mutex::new(None);
    let threads = threads.max(1);
    let mut cache = CACHE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(p) = cache.as_ref() {
        if p.threads() == threads {
            return Arc::clone(p);
        }
    }
    let pool = Arc::new(Pool::new(threads));
    *cache = Some(Arc::clone(&pool));
    pool
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parts_execute_exactly_once_in_their_slot() {
        let p = Pool::new(4);
        for n in [0usize, 1, 2, 7, 64, 257] {
            let mut out = vec![0usize; n];
            let parts: Vec<(usize, &mut usize)> = out.iter_mut().enumerate().collect();
            p.run_parts(parts, |i, (orig, slot)| {
                assert_eq!(i, orig);
                *slot += i * i + 1;
            });
            let want: Vec<usize> = (0..n).map(|i| i * i + 1).collect();
            assert_eq!(out, want, "n = {n}");
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let compute = |p: &Pool| -> Vec<f64> {
            let mut out = vec![0.0f64; 1000];
            let parts: Vec<&mut [f64]> = out.chunks_mut(64).collect();
            p.run_parts(parts, |c, chunk| {
                for (j, v) in chunk.iter_mut().enumerate() {
                    let i = c * 64 + j;
                    *v = (i as f64).sqrt() * 1.0001 + c as f64;
                }
            });
            out
        };
        let serial = compute(&Pool::new(1));
        for t in [2usize, 3, 8] {
            let par = compute(&Pool::new(t));
            assert!(
                serial
                    .iter()
                    .zip(&par)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "threads = {t}"
            );
        }
    }

    #[test]
    fn pool_survives_many_dispatches() {
        let p = Pool::new(3);
        let total = AtomicUsize::new(0);
        for round in 0..200 {
            let parts: Vec<usize> = (0..5).collect();
            p.run_parts(parts, |_, v| {
                total.fetch_add(v + round, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 200 * 10 + 199 * 200 * 5 / 2);
    }

    #[test]
    fn panicking_chunk_propagates_and_pool_stays_usable() {
        let p = Pool::new(2);
        let res = catch_unwind(AssertUnwindSafe(|| {
            p.run_parts(vec![0usize, 1, 2], |_, v| {
                if v == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(res.is_err());
        let mut out = vec![0usize; 3];
        let parts: Vec<&mut usize> = out.iter_mut().collect();
        p.run_parts(parts, |i, slot| *slot = i + 10);
        assert_eq!(out, vec![10, 11, 12]);
    }

    #[test]
    fn global_cache_reuses_matching_size() {
        let a = global(2);
        let b = global(2);
        assert!(Arc::ptr_eq(&a, &b));
        let c = global(3);
        assert_eq!(c.threads(), 3);
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
