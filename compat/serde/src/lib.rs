//! Minimal, offline stand-in for `serde`. Instead of the visitor-based
//! zero-copy architecture, this models serialization through an owned
//! [`Value`] tree: `Serialize` renders into a `Value`, `Deserialize` reads
//! back out of one. `serde_json` (the compat sibling) converts between
//! `Value` and JSON text. The derive macros are re-exported from
//! `serde_derive` and cover plain structs, tuple structs, and enums with
//! unit/newtype variants — exactly the shapes this workspace uses.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing data tree; the interchange format between `Serialize`,
/// `Deserialize`, and `serde_json`. Objects preserve insertion order so
/// that serialized output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable path/expectation mismatch.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// `Value` round-trips through itself, as in upstream serde_json: lets
// callers parse arbitrary JSON into a tree, edit it, and re-serialize
// (read-modify-write of artifact files).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: u64 = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| DeError::custom(format!("{u} out of range for i64")))?,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            // Non-finite floats serialize as null (JSON has no literal for them).
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::custom(format!("expected char, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic regardless of hash order.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Obj(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(DeError::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(DeError::custom(format!("expected object, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Arr(items) => {
                        let expected = [$(stringify!($n)),+].len();
                        if items.len() != expected {
                            return Err(DeError::custom(format!(
                                "expected {expected}-tuple, got {} elements", items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(DeError::custom(format!("expected array, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Support module used by generated derive code. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{DeError, Deserialize, Value};

    pub fn get_field<T: Deserialize>(v: &Value, ty: &str, name: &str) -> Result<T, DeError> {
        match v {
            Value::Obj(_) => match v.get(name) {
                Some(field) => {
                    T::from_value(field).map_err(|e| DeError::custom(format!("{ty}.{name}: {e}")))
                }
                None => Err(DeError::custom(format!("{ty}: missing field `{name}`"))),
            },
            other => Err(DeError::custom(format!(
                "{ty}: expected object, got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u8>::from_value(&None::<u8>.to_value()).unwrap(),
            None
        );
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn out_of_range_is_an_error() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }
}
