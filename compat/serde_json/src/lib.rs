//! JSON text <-> compat `serde::Value` conversion: `to_string`,
//! `to_string_pretty` (2-space indent, upstream-compatible layout for the
//! shapes in use), and `from_str` via a recursive-descent parser.
//!
//! Floats are written with Rust's shortest-round-trip `Display`, so
//! `from_str(to_string(x))` recovers every finite `f64` bit-exactly — a
//! property the bench profile cache relies on. Non-finite floats serialize
//! as `null` (JSON has no literal for them), matching upstream behavior.

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

pub use serde::Value as JsonValue;

#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_str(s)?;
    Ok(T::from_value(&value)?)
}

pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    Ok(T::from_value(v)?)
}

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Shortest round-trip representation; always re-parses to
                // the same bits.
                let s = format!("{f}");
                out.push_str(&s);
                // serde_json always writes floats with a decimal point or
                // exponent; integral floats get ".0" so the type survives.
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + (((hi - 0xD800) as u32) << 10)
                                        + (lo - 0xDC00) as u32;
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi as u32)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let start = self.pos;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let neg = self.peek() == Some(b'-');
        if neg {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if neg {
                // Preserve the sign of integral negative zero as a float.
                if text == "-0" {
                    return Ok(Value::Float(-0.0));
                }
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("x\"y\n".into())),
            ("n".into(), Value::UInt(42)),
            ("neg".into(), Value::Int(-3)),
            ("f".into(), Value::Float(1.25)),
            (
                "arr".into(),
                Value::Arr(vec![Value::Bool(true), Value::Null]),
            ),
            ("empty".into(), Value::Arr(vec![])),
        ]);
        let compact = {
            let mut s = String::new();
            write_value(&v, &mut s, None, 0);
            s
        };
        assert_eq!(parse_value_str(&compact).unwrap(), v);
        let pretty = {
            let mut s = String::new();
            write_value(&v, &mut s, Some(2), 0);
            s
        };
        assert_eq!(parse_value_str(&pretty).unwrap(), v);
    }

    #[test]
    #[allow(clippy::excessive_precision)] // over-precise literal is the point
    fn floats_round_trip_bit_exactly() {
        for &f in &[
            0.1,
            1.0 / 3.0,
            6.02214076e23,
            -0.0,
            1e-308,
            123456789.123456789,
        ] {
            let mut s = String::new();
            write_value(&Value::Float(f), &mut s, None, 0);
            let back = match parse_value_str(&s).unwrap() {
                Value::Float(g) => g,
                Value::UInt(u) => u as f64,
                Value::Int(i) => i as f64,
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(back.to_bits(), f.to_bits(), "value {f}");
        }
    }

    #[test]
    fn integral_floats_keep_their_type() {
        let mut s = String::new();
        write_value(&Value::Float(4.0), &mut s, None, 0);
        assert_eq!(s, "4.0");
        assert_eq!(parse_value_str("4.0").unwrap(), Value::Float(4.0));
    }

    #[test]
    fn typed_round_trip() {
        let xs: Vec<f64> = vec![1.5, -2.25, 0.0];
        let json = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Vec<u32>>("[1, 2,]").is_err());
        assert!(from_str::<Vec<u32>>("[1 2]").is_err());
        assert!(from_str::<u32>("nope").is_err());
    }
}
