//! A minimal, dependency-free readiness reactor over Linux `epoll`.
//!
//! This is the I/O substrate of the sharded `harpd` event loop
//! (DESIGN.md §12): a mio-style poller with level-triggered readiness,
//! a pipe-based cross-thread [`Waker`], a single-fd [`poll_fd`] helper
//! for poll-driven client transports, and a [`Slab`] allocator for the
//! per-shard session tables. Everything binds straight to the libc
//! symbols the platform already links (`epoll_*`, `pipe2`, `poll`,
//! `read`, `write`, `close`) — no external crates, exactly like the
//! rest of `compat/`.
//!
//! The `unsafe` in this crate is confined to [`sys`]: raw syscall
//! bindings plus the two byte-sized pipe reads/writes of the waker.
//! Every unsafe call site checks its return value and converts failures
//! into [`std::io::Error`].
//!
//! Readiness is *level-triggered* (the epoll default): a session with
//! unread bytes or writable space keeps firing until the condition is
//! drained, so a shard that processes a bounded batch per wakeup never
//! loses an edge.

#![warn(missing_docs)]

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

mod slab;
pub mod sys;

pub use slab::Slab;

/// What readiness a registration subscribes to. Hangup (`EPOLLHUP` /
/// `EPOLLRDHUP`) and error conditions are always reported regardless of
/// the requested interest — exactly the events the daemon uses to free a
/// dead session's allocation within one tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd has bytes to read (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd can accept writes without blocking.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle session.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest — a session with a backlogged outbound ring.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn epoll_mask(self) -> u32 {
        let mut mask = sys::EPOLLRDHUP; // always observe peer hangups
        if self.readable {
            mask |= sys::EPOLLIN;
        }
        if self.writable {
            mask |= sys::EPOLLOUT;
        }
        mask
    }
}

/// One readiness event delivered by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Bytes are readable (or the peer closed — read to find out).
    pub readable: bool,
    /// The fd accepts writes without blocking.
    pub writable: bool,
    /// The peer hung up (`EPOLLHUP` or `EPOLLRDHUP`).
    pub hangup: bool,
    /// The fd is in an error state (`EPOLLERR`).
    pub error: bool,
}

/// Reusable event buffer for [`Poller::wait`] — allocate once per shard,
/// drain per wakeup.
#[derive(Debug)]
pub struct Events {
    raw: Vec<sys::EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer that can carry up to `capacity` events per wakeup.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            raw: vec![sys::EpollEvent::zeroed(); capacity.max(1)],
            len: 0,
        }
    }

    /// Number of events delivered by the last `wait`.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the last `wait` delivered no events (timeout or wake-only).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates the events delivered by the last `wait`.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.raw[..self.len].iter().map(|e| {
            let mask = e.events();
            Event {
                token: e.data(),
                readable: mask & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0,
                writable: mask & sys::EPOLLOUT != 0,
                hangup: mask & (sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
                error: mask & sys::EPOLLERR != 0,
            }
        })
    }
}

/// A level-triggered `epoll` instance. Registrations map fds to opaque
/// `u64` tokens; [`Poller::wait`] reports which tokens are ready.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates a fresh epoll instance (`EPOLL_CLOEXEC`).
    ///
    /// # Errors
    ///
    /// Returns the `epoll_create1` failure (fd exhaustion, kernel limits).
    pub fn new() -> io::Result<Poller> {
        let epfd = sys::epoll_create()?;
        Ok(Poller { epfd })
    }

    /// Registers `fd` under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// Returns the `epoll_ctl` failure (e.g. the fd is already registered).
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_ctl(
            self.epfd,
            sys::EPOLL_CTL_ADD,
            fd,
            interest.epoll_mask(),
            token,
        )
    }

    /// Updates the interest (and token) of an already-registered fd.
    ///
    /// # Errors
    ///
    /// Returns the `epoll_ctl` failure.
    pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_ctl(
            self.epfd,
            sys::EPOLL_CTL_MOD,
            fd,
            interest.epoll_mask(),
            token,
        )
    }

    /// Removes `fd` from the poller. Harmless to call for an fd that the
    /// kernel already dropped (closing an fd deregisters it implicitly).
    pub fn deregister(&self, fd: RawFd) {
        let _ = sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Blocks until at least one registered fd is ready, the timeout
    /// elapses, or a [`Waker`] fires. Returns the number of events
    /// written into `events`. `None` blocks indefinitely.
    ///
    /// # Errors
    ///
    /// Returns the `epoll_wait` failure; `EINTR` is retried internally.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms = match timeout {
            // Round up so a 100µs timeout doesn't spin at 0ms.
            Some(t) => i32::try_from(t.as_millis().max(u128::from(u32::from(!t.is_zero()))))
                .unwrap_or(i32::MAX),
            None => -1,
        };
        let n = sys::epoll_wait(self.epfd, &mut events.raw, timeout_ms)?;
        events.len = n;
        Ok(n)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        sys::close_fd(self.epfd);
    }
}

/// Cross-thread wakeup for a [`Poller`]: a non-blocking pipe whose read
/// end is registered with the poller. Any thread holding (a clone of, or
/// an `Arc` to) the waker can interrupt `wait` with [`Waker::wake`].
#[derive(Debug)]
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

// The waker only writes/reads single bytes through fds; both operations
// are atomic at this size and the fds live until Drop.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Waker {
    /// Creates a waker and registers its pipe with `poller` under `token`.
    ///
    /// # Errors
    ///
    /// Returns pipe-creation or registration failures.
    pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
        let (read_fd, write_fd) = sys::pipe_nonblocking()?;
        poller.register(read_fd, token, Interest::READABLE)?;
        Ok(Waker { read_fd, write_fd })
    }

    /// Interrupts the poller. A full pipe means a wake is already
    /// pending — that is success, not failure.
    pub fn wake(&self) {
        sys::write_byte(self.write_fd);
    }

    /// Drains pending wake bytes; call when the waker's token fires so a
    /// level-triggered poller doesn't spin on the pipe.
    pub fn drain(&self) {
        sys::drain_pipe(self.read_fd);
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        sys::close_fd(self.read_fd);
        sys::close_fd(self.write_fd);
    }
}

/// Blocks until `fd` is ready for the requested direction(s) or the
/// timeout elapses. Returns `true` when ready, `false` on timeout. This
/// is the single-fd fast path for poll-driven client transports — no
/// epoll instance, one `poll(2)` call.
///
/// # Errors
///
/// Returns the `poll` failure; `EINTR` is retried internally.
pub fn poll_fd(
    fd: RawFd,
    readable: bool,
    writable: bool,
    timeout: Option<Duration>,
) -> io::Result<bool> {
    let mut mask: i16 = 0;
    if readable {
        mask |= sys::POLLIN;
    }
    if writable {
        mask |= sys::POLLOUT;
    }
    let timeout_ms = match timeout {
        Some(t) => i32::try_from(t.as_millis().max(u128::from(u32::from(!t.is_zero()))))
            .unwrap_or(i32::MAX),
        None => -1,
    };
    sys::poll_one(fd, mask, timeout_ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::sync::Arc;

    #[test]
    fn readable_event_fires_for_pending_bytes() {
        let poller = Poller::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poller
            .register(b.as_raw_fd(), 7, Interest::READABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);
        // Nothing pending yet: a zero-ish timeout returns no events.
        poller
            .wait(&mut events, Some(Duration::from_millis(1)))
            .unwrap();
        assert!(events.is_empty());
        a.write_all(b"x").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().next().expect("one event");
        assert_eq!(ev.token, 7);
        assert!(ev.readable && !ev.hangup);
    }

    #[test]
    fn hangup_is_reported() {
        let poller = Poller::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        poller
            .register(b.as_raw_fd(), 3, Interest::READABLE)
            .unwrap();
        drop(a);
        let mut events = Events::with_capacity(8);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().next().expect("hangup event");
        assert_eq!(ev.token, 3);
        assert!(ev.hangup);
    }

    #[test]
    fn level_triggered_readiness_persists_until_drained() {
        let poller = Poller::new().unwrap();
        let (mut a, mut b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poller
            .register(b.as_raw_fd(), 1, Interest::READABLE)
            .unwrap();
        a.write_all(b"xyz").unwrap();
        let mut events = Events::with_capacity(4);
        for _ in 0..2 {
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.iter().filter(|e| e.token == 1).count(), 1);
        }
        let mut buf = [0u8; 8];
        let n = b.read(&mut buf).unwrap();
        assert_eq!(n, 3);
        poller
            .wait(&mut events, Some(Duration::from_millis(1)))
            .unwrap();
        assert!(events.is_empty(), "drained fd must stop firing");
    }

    #[test]
    fn waker_interrupts_wait_from_another_thread() {
        let poller = Poller::new().unwrap();
        let waker = Arc::new(Waker::new(&poller, u64::MAX).unwrap());
        let w = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            w.wake();
        });
        let mut events = Events::with_capacity(4);
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        let ev = events.iter().next().expect("waker event");
        assert_eq!(ev.token, u64::MAX);
        waker.drain();
        // Drained waker stops firing.
        poller
            .wait(&mut events, Some(Duration::from_millis(1)))
            .unwrap();
        assert!(events.is_empty());
        t.join().unwrap();
    }

    #[test]
    fn writable_interest_and_reregister() {
        let poller = Poller::new().unwrap();
        let (a, _b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        poller
            .register(a.as_raw_fd(), 9, Interest::READABLE)
            .unwrap();
        let mut events = Events::with_capacity(4);
        poller
            .wait(&mut events, Some(Duration::from_millis(1)))
            .unwrap();
        assert!(events.is_empty(), "no read interest satisfied yet");
        // Flip to BOTH: an idle socket is immediately writable.
        poller.reregister(a.as_raw_fd(), 9, Interest::BOTH).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().next().expect("writable event");
        assert!(ev.writable);
        poller.deregister(a.as_raw_fd());
        poller
            .wait(&mut events, Some(Duration::from_millis(1)))
            .unwrap();
        assert!(events.is_empty(), "deregistered fd must not fire");
    }

    #[test]
    fn poll_fd_reports_readiness_and_timeout() {
        let (mut a, b) = UnixStream::pair().unwrap();
        assert!(!poll_fd(b.as_raw_fd(), true, false, Some(Duration::from_millis(1))).unwrap());
        a.write_all(b"!").unwrap();
        assert!(poll_fd(b.as_raw_fd(), true, false, Some(Duration::from_secs(5))).unwrap());
        // Any healthy socket is writable.
        assert!(poll_fd(b.as_raw_fd(), false, true, Some(Duration::from_secs(5))).unwrap());
    }
}
