//! Raw libc bindings for the reactor: `epoll`, the waker pipe, and
//! single-fd `poll`. This module is the crate's entire unsafe surface;
//! every call site checks the return value and surfaces failures as
//! [`std::io::Error`].

use std::io;
use std::os::unix::io::RawFd;

/// Readiness mask bit: fd has bytes to read.
pub const EPOLLIN: u32 = 0x001;
/// Readiness mask bit: fd accepts writes without blocking.
pub const EPOLLOUT: u32 = 0x004;
/// Readiness mask bit: fd is in an error state.
pub const EPOLLERR: u32 = 0x008;
/// Readiness mask bit: peer hung up completely.
pub const EPOLLHUP: u32 = 0x010;
/// Readiness mask bit: peer closed its write half (half-hangup).
pub const EPOLLRDHUP: u32 = 0x2000;

/// `epoll_ctl` op: add a new fd registration.
pub const EPOLL_CTL_ADD: i32 = 1;
/// `epoll_ctl` op: remove a registration.
pub const EPOLL_CTL_DEL: i32 = 2;
/// `epoll_ctl` op: modify an existing registration.
pub const EPOLL_CTL_MOD: i32 = 3;

/// `poll(2)` events bit: readable.
pub const POLLIN: i16 = 0x001;
/// `poll(2)` events bit: writable.
pub const POLLOUT: i16 = 0x004;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const O_NONBLOCK: i32 = 0o4000;
const O_CLOEXEC: i32 = 0o2000000;
const EINTR: i32 = 4;

/// Kernel-ABI epoll event record. Packed on x86_64 only — that is the
/// one architecture where the kernel struct is unpadded.
#[derive(Clone, Copy)]
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
pub struct EpollEvent {
    events: u32,
    data: u64,
}

impl EpollEvent {
    /// An empty event slot for the wait buffer.
    pub fn zeroed() -> EpollEvent {
        EpollEvent { events: 0, data: 0 }
    }

    /// The readiness mask the kernel filled in.
    pub fn events(&self) -> u32 {
        // Field reads copy out of the (possibly packed) struct.
        self.events
    }

    /// The registration token the kernel echoed back.
    pub fn data(&self) -> u64 {
        self.data
    }
}

impl std::fmt::Debug for EpollEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpollEvent")
            .field("events", &self.events())
            .field("data", &self.data())
            .finish()
    }
}

#[repr(C)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    #[link_name = "epoll_ctl"]
    fn epoll_ctl_raw(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    #[link_name = "epoll_wait"]
    fn epoll_wait_raw(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
    #[link_name = "poll"]
    fn poll_raw(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    #[link_name = "read"]
    fn read_raw(fd: i32, buf: *mut u8, count: usize) -> isize;
    #[link_name = "write"]
    fn write_raw(fd: i32, buf: *const u8, count: usize) -> isize;
    #[link_name = "close"]
    fn close_raw(fd: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Creates a close-on-exec epoll instance.
pub fn epoll_create() -> io::Result<RawFd> {
    // SAFETY: epoll_create1 takes no pointers; the flag is valid.
    cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

/// Adds/modifies/deletes an fd registration on `epfd`.
pub fn epoll_ctl(epfd: RawFd, op: i32, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events, data };
    // SAFETY: `ev` outlives the call; the kernel copies it before returning.
    // EPOLL_CTL_DEL ignores the event pointer on modern kernels but a valid
    // one is passed anyway for pre-2.6.9 compatibility.
    cvt(unsafe { epoll_ctl_raw(epfd, op, fd, &mut ev) }).map(|_| ())
}

/// Waits for readiness events; retries on `EINTR`. Returns the number of
/// events written into the front of `events`.
pub fn epoll_wait(epfd: RawFd, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    let max = i32::try_from(events.len()).unwrap_or(i32::MAX).max(1);
    loop {
        // SAFETY: the buffer is valid for `max` records for the duration of
        // the call, and the kernel writes at most `max` of them.
        let n = unsafe { epoll_wait_raw(epfd, events.as_mut_ptr(), max, timeout_ms) };
        if n >= 0 {
            return Ok(n as usize);
        }
        let err = io::Error::last_os_error();
        if err.raw_os_error() != Some(EINTR) {
            return Err(err);
        }
    }
}

/// Creates a non-blocking close-on-exec pipe: `(read_fd, write_fd)`.
pub fn pipe_nonblocking() -> io::Result<(RawFd, RawFd)> {
    let mut fds = [0i32; 2];
    // SAFETY: `fds` is a valid 2-element buffer for pipe2 to fill.
    cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) })?;
    Ok((fds[0], fds[1]))
}

/// Polls a single fd for readiness; retries on `EINTR`. Returns whether
/// any requested (or error/hangup) condition is ready.
pub fn poll_one(fd: RawFd, events: i16, timeout_ms: i32) -> io::Result<bool> {
    let mut pfd = PollFd {
        fd,
        events,
        revents: 0,
    };
    loop {
        // SAFETY: `pfd` is a valid single-element array for the call.
        let n = unsafe { poll_raw(&mut pfd, 1, timeout_ms) };
        if n >= 0 {
            return Ok(n > 0);
        }
        let err = io::Error::last_os_error();
        if err.raw_os_error() != Some(EINTR) {
            return Err(err);
        }
    }
}

/// Writes one byte to a waker pipe. `EAGAIN` (pipe already full — a wake
/// is pending) and `EINTR` are both fine: the wake is delivered either way.
pub fn write_byte(fd: RawFd) {
    let b = 1u8;
    // SAFETY: one-byte write from a valid stack buffer.
    let _ = unsafe { write_raw(fd, &b, 1) };
}

/// Drains all pending bytes from a non-blocking waker pipe.
pub fn drain_pipe(fd: RawFd) {
    let mut buf = [0u8; 64];
    loop {
        // SAFETY: read into a valid stack buffer of the stated length.
        let n = unsafe { read_raw(fd, buf.as_mut_ptr(), buf.len()) };
        if n <= 0 {
            return; // empty (EAGAIN), EOF, or error — all mean "drained"
        }
    }
}

/// Closes an fd, ignoring errors (used from Drop impls only).
pub fn close_fd(fd: RawFd) {
    // SAFETY: closing an owned fd exactly once from Drop.
    let _ = unsafe { close_raw(fd) };
}
