//! A compact slab allocator: stable `usize` keys into a reusable
//! vector, vacant slots chained into a free list. This is the
//! per-shard session table index for `harpd` — O(1) insert/remove, no
//! hashing, keys dense enough to pack into epoll tokens.

/// Slab entry: either a live value or a link in the free list.
#[derive(Debug)]
enum Entry<T> {
    Vacant(usize),
    Occupied(T),
}

/// A vector-backed slab with free-slot reuse.
#[derive(Debug)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    next_free: usize,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Slab<T> {
        Slab {
            entries: Vec::new(),
            next_free: 0,
            len: 0,
        }
    }

    /// An empty slab with room for `capacity` entries before reallocating.
    pub fn with_capacity(capacity: usize) -> Slab<T> {
        Slab {
            entries: Vec::with_capacity(capacity),
            next_free: 0,
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a value, returning its key. Reuses the most recently
    /// vacated slot if one exists.
    pub fn insert(&mut self, value: T) -> usize {
        self.len += 1;
        if self.next_free == self.entries.len() {
            self.entries.push(Entry::Occupied(value));
            self.next_free = self.entries.len();
            self.entries.len() - 1
        } else {
            let key = self.next_free;
            match std::mem::replace(&mut self.entries[key], Entry::Occupied(value)) {
                Entry::Vacant(next) => self.next_free = next,
                Entry::Occupied(_) => unreachable!("free list points at occupied slot"),
            }
            key
        }
    }

    /// Removes and returns the value at `key`, or `None` if vacant/out
    /// of range. The slot becomes reusable.
    pub fn remove(&mut self, key: usize) -> Option<T> {
        match self.entries.get_mut(key) {
            Some(slot @ Entry::Occupied(_)) => {
                let old = std::mem::replace(slot, Entry::Vacant(self.next_free));
                self.next_free = key;
                self.len -= 1;
                match old {
                    Entry::Occupied(v) => Some(v),
                    Entry::Vacant(_) => unreachable!(),
                }
            }
            _ => None,
        }
    }

    /// Borrows the value at `key`.
    pub fn get(&self, key: usize) -> Option<&T> {
        match self.entries.get(key) {
            Some(Entry::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Mutably borrows the value at `key`.
    pub fn get_mut(&mut self, key: usize) -> Option<&mut T> {
        match self.entries.get_mut(key) {
            Some(Entry::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Whether `key` names a live entry.
    pub fn contains(&self, key: usize) -> bool {
        matches!(self.entries.get(key), Some(Entry::Occupied(_)))
    }

    /// Iterates `(key, &value)` over live entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(k, e)| match e {
                Entry::Occupied(v) => Some((k, v)),
                Entry::Vacant(_) => None,
            })
    }

    /// Keys of live entries in key order (detached — safe to remove while
    /// walking).
    pub fn keys(&self) -> Vec<usize> {
        self.iter().map(|(k, _)| k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_ne!(a, b);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.remove(a), None);
        assert_eq!(slab.len(), 1);
        assert!(slab.contains(b));
        assert!(!slab.contains(a));
    }

    #[test]
    fn vacated_slots_are_reused() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        let b = slab.insert(2);
        let c = slab.insert(3);
        slab.remove(b);
        slab.remove(a);
        // LIFO reuse: last-vacated slot comes back first.
        assert_eq!(slab.insert(4), a);
        assert_eq!(slab.insert(5), b);
        assert_eq!(slab.insert(6), c + 1);
        assert_eq!(slab.len(), 4);
    }

    #[test]
    fn iter_skips_vacant_slots() {
        let mut slab = Slab::new();
        let keys: Vec<usize> = (0..5).map(|i| slab.insert(i * 10)).collect();
        slab.remove(keys[1]);
        slab.remove(keys[3]);
        let live: Vec<(usize, i32)> = slab.iter().map(|(k, v)| (k, *v)).collect();
        assert_eq!(live, vec![(keys[0], 0), (keys[2], 20), (keys[4], 40)]);
        assert_eq!(slab.keys(), vec![keys[0], keys[2], keys[4]]);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut slab = Slab::with_capacity(4);
        let k = slab.insert(vec![1u8]);
        slab.get_mut(k).unwrap().push(2);
        assert_eq!(slab.get(k).unwrap(), &vec![1, 2]);
        assert!(slab.get_mut(99).is_none());
    }
}
