//! ChaCha8-based PRNG implementing the compat `rand` traits. The block
//! function is the real ChaCha permutation with 8 rounds; seeding expands a
//! `u64` into a 256-bit key with SplitMix64. Streams are deterministic per
//! seed but are not bit-compatible with upstream `rand_chacha`.

use rand::{splitmix64, RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Input block: constants, 8 key words, 64-bit block counter, 2 nonce words.
    state: [u32; 16],
    buf: [u32; 16],
    idx: usize,
}

#[inline(always)]
fn quarter_round(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut x = self.state;
        for _ in 0..4 {
            // One double round: 4 column rounds + 4 diagonal rounds.
            quarter_round(&mut x, 0, 4, 8, 12);
            quarter_round(&mut x, 1, 5, 9, 13);
            quarter_round(&mut x, 2, 6, 10, 14);
            quarter_round(&mut x, 3, 7, 11, 15);
            quarter_round(&mut x, 0, 5, 10, 15);
            quarter_round(&mut x, 1, 6, 11, 12);
            quarter_round(&mut x, 2, 7, 8, 13);
            quarter_round(&mut x, 3, 4, 9, 14);
        }
        for (o, s) in x.iter_mut().zip(self.state.iter()) {
            *o = o.wrapping_add(*s);
        }
        self.buf = x;
        self.idx = 0;
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut st = seed;
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        for i in 0..4 {
            let w = splitmix64(&mut st);
            state[4 + 2 * i] = w as u32;
            state[5 + 2 * i] = (w >> 32) as u32;
        }
        // Counter and nonce start at zero.
        Self {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        let mut c = ChaCha8Rng::seed_from_u64(124);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_ish_bits() {
        // Cheap sanity check: mean of many uniform [0,1) draws is near 0.5.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 4096;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
