//! Minimal, offline stand-in for `proptest` covering the surface this
//! workspace uses: the `proptest!` macro with optional
//! `#![proptest_config(...)]`, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, `prop_oneof!`, `Just`, `any::<T>()`, numeric-range and
//! tuple strategies, `proptest::collection::vec`, literal `".{a,b}"` regex
//! string strategies, and `prop_map`/`prop_flat_map`.
//!
//! Cases are generated from a per-test deterministic seed (FNV-1a of the
//! test name driving a ChaCha8 stream), so failures are reproducible.
//! There is no shrinking: the failing inputs are reported via `Debug` on
//! the assertion message instead.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::{Range, RangeInclusive};

    /// Size argument for [`vec`]: a `usize` range, inclusive or half-open.
    pub trait SizeRange {
        /// (min, max) both inclusive.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty size range");
            (*self.start(), *self.end())
        }
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, u32)> {
        (0u32..10, 0u32..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 3u32..9, b in 0.5f64..2.0, c in 1usize..=4) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((0.5..2.0).contains(&b));
            prop_assert!((1..=4).contains(&c));
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(0u8..255, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn flat_map_and_assume((x, y) in arb_pair().prop_flat_map(|(a, b)| {
            (Just(a), Just(b))
        })) {
            prop_assume!(x + y > 0);
            prop_assert!(x < 10 && y < 10);
            if x == y {
                return Ok(());
            }
            prop_assert_ne!(x, y);
        }

        #[test]
        fn oneof_and_regex(choice in prop_oneof![Just(1u8), Just(2), Just(3)], s in ".{0,8}") {
            prop_assert!((1..=3).contains(&choice));
            prop_assert!(s.chars().count() <= 8);
        }

        #[test]
        fn any_values_exist(x in any::<u64>(), f in any::<f64>(), b in any::<bool>()) {
            let _ = (x, f, b);
            prop_assert_eq!(x, x);
        }
    }
}
