//! Strategy combinators: how test inputs are generated.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;
use rand::{Rng, SampleVal};

/// A recipe for generating values of `Self::Value`. Object-safe: the
/// combinator methods are `Self: Sized` so `Box<dyn Strategy<Value = T>>`
/// works (needed by `prop_oneof!`).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleVal> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T: SampleVal> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J)
}

/// `proptest::collection::vec(element, size)`.
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) min: usize,
    pub(crate) max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.random_range(self.min..=self.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical "arbitrary" strategy, used via [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Bias towards small magnitudes and boundary values so
                // varint-style codecs see every width class.
                match rng.random_range(0u32..8) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => rng.random_range(0u64..256) as $t,
                    _ => rng.random::<u64>() as $t,
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.random_range(0u32..8) {
            0 => 0.0,
            1 => -0.0,
            2 => rng.random_range(-10.0f64..10.0),
            3 => f64::MAX,
            4 => f64::MIN_POSITIVE,
            // Wide-magnitude finite values via a random exponent.
            _ => {
                let mag = 10f64.powi(rng.random_range(-30i32..30));
                rng.random_range(-1.0f64..1.0) * mag
            }
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// String literals act as regex strategies. Only the pattern shapes used in
/// this workspace are supported: `.{min,max}` (any chars, length range),
/// optionally `.*`/`.+`. Anything else panics at generation time.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_len_pattern(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy pattern: {self:?}"));
        let len = rng.random_range(min..=max);
        (0..len)
            .map(|_| {
                // Mostly printable ASCII with occasional multi-byte chars so
                // UTF-8 handling gets exercised.
                if rng.random_bool(0.9) {
                    rng.random_range(0x20u32..0x7f) as u8 as char
                } else {
                    char::from_u32(rng.random_range(0xA0u32..0x2FF)).unwrap_or('¤')
                }
            })
            .collect()
    }
}

fn parse_len_pattern(pat: &str) -> Option<(usize, usize)> {
    match pat {
        ".*" => return Some((0, 32)),
        ".+" => return Some((1, 32)),
        _ => {}
    }
    let body = pat.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    let min = lo.trim().parse().ok()?;
    let max = if hi.trim().is_empty() {
        min + 32
    } else {
        hi.trim().parse().ok()?
    };
    Some((min, max))
}

/// The `proptest!` macro: expands each `fn name(bindings) { body }` into a
/// plain test running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($p:pat in $s:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            while __accepted < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __config.cases.saturating_mul(20).saturating_add(1000),
                    "proptest {}: too many rejected cases", stringify!($name),
                );
                $(let $p = $crate::strategy::Strategy::generate(&($s), &mut __rng);)+
                let mut __case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    #[allow(unreachable_code, clippy::needless_return)]
                    {
                        $body
                        Ok(())
                    }
                };
                match __case() {
                    Ok(()) => __accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name), __accepted, msg,
                        );
                    }
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+), __l, __r,
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
