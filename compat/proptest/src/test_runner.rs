//! Test-runner plumbing: config, deterministic RNG, and case errors.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs; the case is retried.
    Reject,
    /// `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Deterministic per-test RNG: the seed is FNV-1a of the test name, so every
/// test sees a stable input sequence across runs and machines.
#[derive(Debug, Clone)]
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(ChaCha8Rng::seed_from_u64(hash))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
