//! Minimal, offline stand-in for `criterion`: enough of the API to build
//! and run the workspace's `[[bench]]` targets with simple wall-clock
//! measurement (median of a few iterations) instead of full statistical
//! analysis.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(None, &id.into(), 10, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(Some(&self.name), &id.into(), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(group: Option<&str>, id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        // Cap the sample count: this harness reports a median, not a
        // distribution, so large criterion-style sample sizes only add time.
        samples: sample_size.min(10),
        durations: Vec::new(),
    };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if b.durations.is_empty() {
        println!("bench {label}: no measurements");
        return;
    }
    b.durations.sort();
    let median = b.durations[b.durations.len() / 2];
    println!(
        "bench {label}: median {median:?} over {} samples",
        b.durations.len()
    );
}

pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then timed samples.
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.durations.push(start.elapsed());
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut count = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.finish();
        assert!(count >= 4); // warm-up + samples
    }
}
