//! Custom adaptivity on the embedded platform: the KPN applications
//! (`mandelbrot`, `lms`) on the Odroid XU3-E, in their static and adaptive
//! variants, managed by HARP (Offline) with DSE-generated points — the
//! paper's §6.4 embedded study in miniature.
//!
//! ```text
//! cargo run --release --example kpn_pipeline
//! ```

use harp_bench::dse::offline_profiles;
use harp_bench::runner::{improvement, run_scenario, ManagerKind, RunOptions};
use harp_workload::{benchmark, Platform, Scenario};

fn main() -> harp::types::Result<()> {
    println!("platform: {}\n", Platform::Odroid);

    // Offline design-space exploration for all four KPN variants.
    let variants = ["mandelbrot", "mandelbrot-static", "lms", "lms-static"];
    let specs: Vec<_> = variants
        .iter()
        .map(|n| benchmark(Platform::Odroid, n).expect("known benchmark"))
        .collect();
    println!("running offline DSE sweeps (all 24 configurations per app)...");
    let profiles = offline_profiles(Platform::Odroid, &specs, 600.0)?;

    println!("\n  variant              EAS[s]  HARP[s]   time x  energy x");
    for name in variants {
        let scenario = Scenario::of(Platform::Odroid, &[name]);
        let opts = RunOptions {
            governor: harp::platform::Governor::Schedutil,
            ..RunOptions::default()
        };
        let eas = run_scenario(Platform::Odroid, &scenario, ManagerKind::Eas, &opts)?;
        let mut hopts = opts.clone();
        hopts.profiles = Some(profiles.clone());
        let harp = run_scenario(
            Platform::Odroid,
            &scenario,
            ManagerKind::HarpOffline,
            &hopts,
        )?;
        let imp = improvement(eas, harp);
        println!(
            "  {:<20} {:6.2}  {:6.2}    {:5.2}    {:5.2}",
            name, eas.makespan_s, harp.makespan_s, imp.time, imp.energy
        );
    }
    println!(
        "\nThe adaptive variants expose a scalable parallel region that HARP\n\
         resizes through fine-grained operating points; the static process\n\
         networks can only be *placed*, so their gains are smaller — the\n\
         paper's §6.4 observation."
    );
    Ok(())
}
