//! A dynamic desktop scenario: three applications with different
//! characteristics (compute-bound `ep`, memory-bound `cg`, mixed `ft`)
//! arrive together; compare Linux CFS against HARP end to end.
//!
//! ```text
//! cargo run --release --example multi_app_desktop
//! ```
//!
//! HARP first *learns* operating points online (applications restart in a
//! warm-up loop, the RM explores configurations), then manages a fresh run
//! with the learned tables — the paper's "stable operating points"
//! methodology (§6.3).

use harp_bench::runner::{improvement, learn_profiles, run_scenario, ManagerKind, RunOptions};
use harp_workload::{Platform, Scenario};

fn main() -> harp::types::Result<()> {
    let scenario = Scenario::of(Platform::RaptorLake, &["cg", "ep", "ft"]);
    println!("scenario: {} on {}", scenario.name, Platform::RaptorLake);

    // Baseline: Linux CFS, 32 OpenMP threads per application.
    let opts = RunOptions::default();
    let cfs = run_scenario(Platform::RaptorLake, &scenario, ManagerKind::Cfs, &opts)?;
    println!(
        "CFS   : makespan {:6.2}s   energy {:7.0}J",
        cfs.makespan_s, cfs.energy_j
    );

    // Warm-up: HARP explores operating points online.
    println!("\nlearning operating points online (240 simulated seconds)...");
    let profiles = learn_profiles(Platform::RaptorLake, &scenario, 240 * harp::sim::SECOND, 42)?;
    for (name, table) in &profiles {
        println!(
            "  learned {:>3} measured operating points for {name}",
            table.measured_count()
        );
    }

    // Measured run with stable operating points.
    let mut hopts = opts.clone();
    hopts.profiles = Some(profiles);
    let harp = run_scenario(Platform::RaptorLake, &scenario, ManagerKind::Harp, &hopts)?;
    println!(
        "\nHARP  : makespan {:6.2}s   energy {:7.0}J",
        harp.makespan_s, harp.energy_j
    );
    let imp = improvement(cfs, harp);
    println!(
        "HARP vs CFS: {:.2}x faster, {:.2}x less energy",
        imp.time, imp.energy
    );
    println!("(paper, multi-application geomeans: 1.40x faster, 1.52x less energy)");
    Ok(())
}
