//! Watch HARP learn: run `mg` in a restart loop and print the exploration
//! stage, table size and the quality of the RM's decisions every few
//! seconds — the paper's Fig. 8 methodology on one application.
//!
//! ```text
//! cargo run --release --example online_learning
//! ```

use harp_bench::fig8::{study_scenario, Fig8Options};
use harp_workload::{Platform, Scenario};

fn main() -> harp::types::Result<()> {
    let scenario = Scenario::of(Platform::RaptorLake, &["mg"]);
    let opts = Fig8Options {
        horizon_s: 60,
        snapshot_every_s: 5,
        scenarios: vec![(scenario.clone(), false)],
    };
    println!(
        "learning '{}' online for {} simulated seconds (snapshot every {}s)\n",
        scenario.name, opts.horizon_s, opts.snapshot_every_s
    );
    let row = study_scenario(&scenario, false, &opts)?;
    println!("   t[s]  stage      time x  energy x   (improvement over CFS with the");
    println!("                                        operating points known at t)");
    for p in &row.points {
        println!(
            "  {:5.1}  {}   {:6.2}   {:6.2}",
            p.t_s,
            if p.all_stable { "stable  " } else { "learning" },
            p.improvement.time,
            p.improvement.energy
        );
    }
    match row.time_to_stable_s {
        Some(t) => println!(
            "\nall operating points stable after {t:.1}s \
             (paper, single-application: 29.8 ± 5.9 s)"
        ),
        None => println!("\nnever reached the stable stage within the horizon"),
    }
    Ok(())
}
