//! The real middleware path, end to end on this machine: start `harpd` on
//! a Unix socket, connect a libharp application, receive the RM's
//! operating-point activation over the wire, resize the malleable runtime
//! accordingly and (on Linux) pin the workers with real
//! `sched_setaffinity`.
//!
//! ```text
//! cargo run --release --example live_daemon
//! ```

use harp::daemon::{DaemonConfig, HarpDaemon, UnixTransport};
use harp::libharp::{HarpSession, MalleableRuntime, SessionConfig};
use harp::platform::HardwareDescription;
use harp::proto::AdaptivityType;
use harp::types::{ExtResourceVector, NonFunctional};

fn main() -> harp::types::Result<()> {
    // Describe the machine the daemon manages. For the demo we use a tiny
    // profile whose best operating point is 4 threads.
    let hw = HardwareDescription::raptor_lake();
    let shape = hw.erv_shape();
    let socket = std::env::temp_dir().join(format!("harp-demo-{}.sock", std::process::id()));
    // `with_tracing` switches on the harp-obs flight recorder: while the
    // daemon runs, `harp-trace --socket <path> --metrics` renders the
    // span tree and metric snapshot of everything below.
    let daemon = HarpDaemon::start(DaemonConfig::new(&socket, hw).with_tracing())?;
    println!("harpd listening on {} (tracing on)", socket.display());

    // The application side: register as a scalable app with description
    // points; the efficient 4-E-core point wins the energy-utility cost.
    let points = vec![
        (
            ExtResourceVector::from_flat(&shape, &[0, 8, 16])?,
            NonFunctional::new(1.0e11, 130.0),
        ),
        (
            ExtResourceVector::from_flat(&shape, &[0, 0, 4])?,
            NonFunctional::new(8.0e10, 30.0),
        ),
    ];
    let transport = UnixTransport::connect(&socket)?;
    let cfg =
        SessionConfig::new("live-demo", AdaptivityType::Scalable).with_points(vec![2, 1], points);
    let mut session = HarpSession::connect(transport, cfg)?;
    println!("registered with the RM as app {}", session.app_id());

    // The malleable runtime consults the RM-controlled allocation at every
    // parallel-region entry (the GOMP_parallel hook of the paper, §4.1.3).
    let runtime = MalleableRuntime::new(session.allocation(), 16);

    // Wait for the activation reflecting the submitted points (the first
    // activation is a provisional whole-machine envelope granted at
    // registration, before the points arrive).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        session.poll(|| runtime.regions_entered() as f64)?;
        if session
            .allocation()
            .current()
            .is_some_and(|a| a.parallelism == 4)
        {
            break;
        }
        if std::time::Instant::now() > deadline {
            eprintln!("final activation not received; using the latest one");
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    if let Some(act) = session.allocation().current() {
        println!(
            "activation: parallelism {} on hw threads {:?}",
            act.parallelism,
            act.hw_threads.iter().map(|t| t.0).collect::<Vec<_>>()
        );
        // Real actuation (Linux): pin to the granted hardware threads.
        #[cfg(target_os = "linux")]
        {
            // Clamp to the CPUs this machine actually has.
            let ncpu = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            let cpus: Vec<_> = act
                .hw_threads
                .iter()
                .copied()
                .filter(|t| t.0 < ncpu)
                .collect();
            if !cpus.is_empty() {
                harp::daemon::affinity::pin_current_thread(&cpus)?;
                println!(
                    "pinned to CPUs {:?} (sched_setaffinity)",
                    harp::daemon::affinity::current_affinity()?
                        .iter()
                        .map(|t| t.0)
                        .collect::<Vec<_>>()
                );
            }
        }
    }

    // Run a parallel region on the RM-sized team.
    let team = runtime.current_team();
    let data: Vec<u64> = (0..4_000_000).collect();
    let sum: u64 = runtime.parallel_sum(&data, |&x| x % 7);
    println!("parallel region ran with team size {team}; checksum {sum}");

    // Optionally hold the daemon open so an observer can attach with
    // `harp-trace --socket` while the session's telemetry is still live.
    if let Some(ms) = std::env::var("HARP_DEMO_HOLD_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        println!("holding the daemon open for {ms} ms (HARP_DEMO_HOLD_MS)");
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }

    session.exit()?;
    daemon.shutdown();
    println!("daemon stopped; socket removed");
    Ok(())
}
