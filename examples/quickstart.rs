//! Quickstart: manage one application with the HARP RM.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the simulated Intel Raptor Lake machine, loads an operating-point
//! profile for a memory-bound application, registers it with the RM, and
//! prints the activation HARP selects — the efficient-core configuration
//! that minimizes the energy-utility cost.

use harp::platform::HardwareDescription;
use harp::rm::{RmConfig, RmCore};
use harp::types::{AppId, ExtResourceVector, NonFunctional};

fn main() -> harp::types::Result<()> {
    // 1. The hardware description (normally /etc/harp/hardware.json).
    let hw = HardwareDescription::raptor_lake();
    println!(
        "machine: {} ({} cores, {} hardware threads)",
        hw.name,
        hw.num_cores(),
        hw.total_hw_threads()
    );

    // 2. An RM in offline mode with a small description-file profile:
    //    three operating points of a memory-bound application.
    let cfg = RmConfig {
        offline: true,
        ..Default::default()
    };
    let mut rm = RmCore::new(hw.clone(), cfg);
    let shape = hw.erv_shape();
    let points = vec![
        // All 8 P-cores with SMT: fast but power-hungry.
        (
            ExtResourceVector::from_flat(&shape, &[0, 8, 0])?,
            NonFunctional::new(5.2e10, 95.0),
        ),
        // Ten E-cores: nearly as fast (bandwidth-bound!) at a fraction
        // of the power.
        (
            ExtResourceVector::from_flat(&shape, &[0, 0, 10])?,
            NonFunctional::new(4.8e10, 42.0),
        ),
        // Two E-cores: frugal but slow.
        (
            ExtResourceVector::from_flat(&shape, &[0, 0, 2])?,
            NonFunctional::new(1.0e10, 22.0),
        ),
    ];
    rm.load_profile("membound", harp::rm::table_from_points(points));

    // 3. Register the application; the RM runs an allocation round and
    //    returns the activation libharp would relay.
    let out = rm.register(AppId(1), "membound", false)?;
    for d in &out.directives {
        println!(
            "activation for {}: {} -> {} cores / parallelism {}",
            d.app,
            d.erv,
            d.cores.len(),
            d.parallelism
        );
        println!(
            "  granted cores:      {:?}",
            d.cores.iter().map(|c| c.0).collect::<Vec<_>>()
        );
        println!(
            "  granted hw threads: {:?}",
            d.hw_threads.iter().map(|t| t.0).collect::<Vec<_>>()
        );
    }
    // The 10-E-core point wins on the EDP-style energy-utility cost.
    assert_eq!(out.directives[0].erv.cores_of_kind(1), 10);
    println!("\nHARP selected the energy-efficient configuration, as expected.");
    Ok(())
}
