#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, and the tier-1 test suite.
# Run from the repository root. Fails fast on the first violation.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1 gate)"
cargo test -q

echo "==> chaos suite (quick mode, fixed seeds)"
# Deterministic bounded sweep of the fault-injection harness, including
# the crash-recovery scenarios (daemon kill mid-session, reconnect storm,
# solver deadline overrun); the full sweep is opt-in via HARP_CHAOS_FULL=1
# (see DESIGN.md sections 8 and 10).
HARP_CHAOS_QUICK=1 cargo test -q -p harp-testkit --test chaos

echo "==> crash recovery gate (journal round trip, kill/restart resume)"
# Journal recovery must be bit-identical (including torn/corrupted tails),
# and a client must ride out a daemon kill+restart and resume onto the
# exact pre-crash allocation (DESIGN.md section 10).
cargo test -q -p harp-rm --test prop_journal
cargo test -q --test end_to_end killed_daemon_restart_resumes_client_with_bit_identical_allocation

echo "==> telemetry round trip (traced daemon session, schema check)"
# Starts a traced daemon, runs a client session plus a 4-tick RM run,
# dumps the flight recorder over the wire and validates the JSONL
# against the harp-obs-v1 schema (crates/obs/tests/schema.rs), then
# checks the daemon-side event guarantees (crates/daemon/tests/telemetry.rs).
cargo test -q -p harp-obs --test schema
cargo test -q -p harp-daemon --test telemetry

echo "==> solver bench smoke (quick mode, parallel determinism check)"
# Quick sweep into a scratch path: never clobbers the committed
# BENCH_solver.json (regenerate that with a full `cargo bench` run).
# Quick mode also runs the 256-app parallel λ-search tier on a 2-thread
# chunk pool and exits non-zero unless the parallel solve is
# bit-identical to serial (picks, cost bits, work bits, outcome, and an
# 8-tick warm-started sequence).
mkdir -p target
HARP_SOLVER_BENCH_QUICK=1 \
    HARP_SOLVER_BENCH_JSON="$PWD/target/BENCH_solver_smoke.json" \
    cargo bench -p harp-bench --bench solver
test -s target/BENCH_solver_smoke.json

echo "==> connection-storm smoke (quick mode, 512-session mini-storm)"
# Boots a 4-shard reactor daemon and churns 512 session lifecycles
# through a 64-connection sliding window with tracing on. Exits
# non-zero on any lost or duplicated directive, any session-level
# transport error, or events_dropped > 0 (DESIGN.md section 12). The
# scratch path keeps the committed BENCH_harness.json storm section
# (regenerate that with a full `storm_bench` run) untouched.
HARP_STORM_QUICK=1 \
    HARP_STORM_JSON="$PWD/target/BENCH_storm_smoke.json" \
    cargo run --release -q -p harp-bench --bin storm_bench
test -s target/BENCH_storm_smoke.json

echo "==> workload-trace replay gate (committed headline corpus)"
# Replays the three committed headline traces (diurnal, flash-crowd,
# heavy-tail-churn) through the testkit oracles and pins their RM state
# fingerprints and telemetry counts against the committed .expect files
# (DESIGN.md section 13). Fails on any invariant violation or
# fingerprint drift; regenerate deliberately with HARP_TRACE_BLESS=1.
cargo test -q -p harp-testkit --test trace_replay

echo "==> energy-ledger conservation gate (headline replay + live stream)"
# Replays a committed headline trace under the testkit oracles — which
# reject any tick whose per-session attributed energy plus idle share
# misses the modeled total, at solver threads 0 and 2 — while a live
# daemon streams telemetry frames to an in-process subscriber that fails
# on any seq/dropped_frames miscount (DESIGN.md section 14). The
# dedicated solver-thread sweep (0/1/2/8) runs in the trace_replay gate
# above via committed_corpus_conserves_ledger_energy_across_solver_threads.
cargo test -q -p harp-testkit --test telemetry_gate

echo "==> trace-engine smoke (quick mode, 10k-arrival generation + replays)"
# Generates each headline shape at 10k arrivals, checks the canonical
# round trip, and replays a small trace per shape under the oracles,
# requiring clean, quiescent, fingerprint-deterministic runs. The
# scratch path keeps the committed BENCH_harness.json trace_bench
# section (regenerate that with a full `trace_bench` run) untouched.
HARP_TRACE_BENCH_QUICK=1 \
    HARP_TRACE_BENCH_JSON="$PWD/target/BENCH_trace_smoke.json" \
    cargo run --release -q -p harp-bench --bin trace_bench
test -s target/BENCH_trace_smoke.json

echo "==> degradation gate (committed fault-laced corpus, threads 0 and 2)"
# Replays the two committed fault-injection headline traces (a transient
# single-core failure and a flapping-core cascade that trips quarantine)
# through the testkit oracles at solver threads 0 and the 1/2/8 sweep.
# Fails on any oracle violation — a grant naming an offline or
# quarantined core, a non-conserving ledger tick across sensor-dark
# windows, warm solve work exceeding cold — or on fingerprint/counter
# drift from the committed .expect files (DESIGN.md section 15).
# Regenerate deliberately with HARP_TRACE_BLESS=1.
cargo test -q -p harp-testkit --test degradation

echo "CI OK"
