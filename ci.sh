#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, and the tier-1 test suite.
# Run from the repository root. Fails fast on the first violation.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1 gate)"
cargo test -q

echo "CI OK"
