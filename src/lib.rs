//! # HARP — Energy-Aware and Adaptive Management of Heterogeneous Processors
//!
//! Facade crate re-exporting the HARP workspace: a reproduction of the
//! Middleware '25 paper *"HARP: Energy-Aware and Adaptive Management of
//! Heterogeneous Processors"* (Smejkal, Khasanov, Castrillon, Härtig).
//!
//! HARP is a user-space resource-management framework for single-ISA
//! heterogeneous CPUs (Intel P/E-cores, Arm big.LITTLE). A central resource
//! manager ([`rm`]) partitions heterogeneous cores among registered
//! applications by selecting one *operating point* per application and
//! solving a multiple-choice multi-dimensional knapsack problem; the
//! application-side library ([`libharp`]) adapts each application (e.g. its
//! parallelization degree) to the decision and feeds utility metrics back.
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md` for the
//! reproduced evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use harp::platform::HardwareDescription;
//! use harp::types::ExtResourceVector;
//!
//! // The simulated Intel Raptor Lake i9-13900K: 8 P-cores (SMT) + 16 E-cores.
//! let hw = HardwareDescription::raptor_lake();
//! assert_eq!(hw.total_hw_threads(), 32);
//! let shape = hw.erv_shape();
//! let erv = ExtResourceVector::full_smt(&shape, &[8, 16]).unwrap();
//! assert_eq!(erv.total_threads(), 32);
//! ```

pub use harp_alloc as alloc;
pub use harp_bench as bench;
pub use harp_energy as energy;
pub use harp_explore as explore;
pub use harp_model as model;
pub use harp_obs as obs;
pub use harp_platform as platform;
pub use harp_proto as proto;
pub use harp_rm as rm;
pub use harp_sched as sched;
pub use harp_sim as sim;
pub use harp_types as types;
pub use harp_workload as workload;
pub use libharp;

pub use harp_daemon as daemon;
