//! `harp-trace` — renders HARP telemetry dumps.
//!
//! Reads a `harp-obs-v1` JSONL document either from a file or live from a
//! running daemon (via the `DumpTelemetry` request) and prints three
//! views: the span tree (one connected trace from request to directive),
//! the per-tick RM/solver timing table, and the metric snapshot.
//!
//! ```text
//! harp-trace dump.jsonl                 # render a file (e.g. a panic dump)
//! harp-trace --socket /run/harp.sock    # dump a live daemon
//! harp-trace --socket /run/harp.sock --metrics
//! ```

use harp_obs::render::{
    parse_dump, render_fault_tolerance, render_metrics, render_shards, render_span_tree,
    render_tick_table,
};
use harp_obs::schema::validate_dump;
use harp_proto::{frame, DumpTelemetry, Message};
use std::os::unix::net::UnixStream;
use std::process::ExitCode;

const USAGE: &str = "usage: harp-trace <dump.jsonl>\n       harp-trace --socket <path> [--metrics]";

struct Args {
    socket: Option<String>,
    file: Option<String>,
    metrics: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        socket: None,
        file: None,
        metrics: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => {
                args.socket = Some(it.next().ok_or("--socket needs a path")?);
            }
            "--metrics" => args.metrics = true,
            "--help" | "-h" => return Err(USAGE.into()),
            _ if a.starts_with('-') => return Err(format!("unknown flag {a}\n{USAGE}")),
            _ if args.file.is_none() => args.file = Some(a),
            _ => return Err(format!("unexpected argument {a}\n{USAGE}")),
        }
    }
    if args.socket.is_some() == args.file.is_some() {
        return Err(USAGE.into());
    }
    Ok(args)
}

/// Fetches the flight recorder of a live daemon over its control socket.
fn fetch_live(socket: &str, include_metrics: bool) -> Result<String, String> {
    let conn = UnixStream::connect(socket).map_err(|e| format!("connect {socket}: {e}"))?;
    let mut read = conn.try_clone().map_err(|e| format!("clone socket: {e}"))?;
    frame::write_frame(
        &conn,
        &Message::DumpTelemetry(DumpTelemetry { include_metrics }),
    )
    .map_err(|e| format!("send DumpTelemetry: {e}"))?;
    loop {
        match frame::read_frame(&mut read) {
            Ok(Some(Message::TelemetryDump(d))) => {
                if d.truncated {
                    eprintln!("note: dump truncated by the daemon (8 MiB cap)");
                }
                return Ok(d.jsonl);
            }
            // A crash-recoverable daemon greets every connection with its
            // boot epoch before serving requests.
            Ok(Some(Message::Hello(_))) => continue,
            Ok(Some(other)) => return Err(format!("unexpected reply: {other:?}")),
            Ok(None) => return Err("daemon closed the connection without replying".into()),
            Err(e) => return Err(format!("read reply: {e}")),
        }
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let jsonl = match (&args.socket, &args.file) {
        (Some(socket), _) => fetch_live(socket, args.metrics)?,
        (_, Some(file)) => {
            std::fs::read_to_string(file).map_err(|e| format!("read {file}: {e}"))?
        }
        _ => unreachable!("parse_args enforces one source"),
    };
    let stats = validate_dump(&jsonl).map_err(|e| format!("not a harp-obs-v1 dump: {e}"))?;
    let dump = parse_dump(&jsonl)?;

    println!(
        "== harp-obs dump: {} events ({} recorded, {} evicted), max tick {} ==",
        stats.events, dump.recorded, dump.evicted, stats.max_tick
    );
    println!("\n== span tree ==");
    print!("{}", render_span_tree(&dump));
    println!("\n== per-tick timings ==");
    print!("{}", render_tick_table(&dump));
    let faults = render_fault_tolerance(&dump);
    if !faults.is_empty() {
        println!("\n== fault tolerance ==");
        print!("{faults}");
    }
    let shards = render_shards(&dump);
    if !shards.is_empty() {
        println!("\n== reactor shards ==");
        print!("{shards}");
    }
    if !dump.metrics.is_empty() {
        println!("\n== metrics ==");
        print!("{}", render_metrics(&dump));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
