//! `harp-trace` — renders HARP telemetry dumps and live streams.
//!
//! Reads a `harp-obs-v1` JSONL document either from a file or live from a
//! running daemon (via the `DumpTelemetry` request) and prints three
//! views: the span tree (one connected trace from request to directive),
//! the per-tick RM/solver timing table, and the metric snapshot. With
//! `--watch` it instead subscribes to the daemon's telemetry stream and
//! renders a live per-session energy/latency table per frame.
//!
//! ```text
//! harp-trace dump.jsonl                 # render a file (e.g. a panic dump)
//! harp-trace --socket /run/harp.sock    # dump a live daemon
//! harp-trace --socket /run/harp.sock --metrics
//! harp-trace --socket /run/harp.sock --watch --interval 250
//! harp-trace --socket /run/harp.sock --watch --frames 10
//! ```
//!
//! Exit codes: 0 success, 2 usage error, 3 I/O error, 4 daemon protocol
//! error, 5 malformed dump.

use harp_daemon::UnixTransport;
use harp_obs::render::{
    parse_dump, render_degradation, render_fault_tolerance, render_metrics, render_shards,
    render_span_tree, render_tick_table,
};
use harp_obs::schema::validate_dump;
use harp_proto::{frame, DumpTelemetry, Message, TelemetryFrame};
use libharp::TelemetrySubscription;
use std::os::unix::net::UnixStream;
use std::process::ExitCode;

const USAGE: &str = "usage: harp-trace <dump.jsonl>\n       harp-trace --socket <path> [--metrics]\n       harp-trace --socket <path> --watch [--interval <ms>] [--frames <n>] [--metrics]";

/// Everything that can go wrong, with a distinct exit code per class so
/// scripts can tell a bad invocation from a bad dump from a dead daemon.
#[derive(Debug)]
enum TraceError {
    /// Bad command line (exit 2).
    Usage(String),
    /// Filesystem or socket failure (exit 3).
    Io(String),
    /// The daemon answered, but not with what the protocol promises
    /// (exit 4).
    Protocol(String),
    /// The document is not a valid `harp-obs-v1` dump (exit 5).
    Malformed(String),
}

impl TraceError {
    fn exit_code(&self) -> ExitCode {
        match self {
            TraceError::Usage(_) => ExitCode::from(2),
            TraceError::Io(_) => ExitCode::from(3),
            TraceError::Protocol(_) => ExitCode::from(4),
            TraceError::Malformed(_) => ExitCode::from(5),
        }
    }
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Usage(m) => write!(f, "{m}"),
            TraceError::Io(m) => write!(f, "io error: {m}"),
            TraceError::Protocol(m) => write!(f, "protocol error: {m}"),
            TraceError::Malformed(m) => write!(f, "malformed dump: {m}"),
        }
    }
}

struct Args {
    socket: Option<String>,
    file: Option<String>,
    metrics: bool,
    watch: bool,
    interval_ms: u32,
    frames: Option<u64>,
}

fn parse_args() -> Result<Option<Args>, TraceError> {
    let mut args = Args {
        socket: None,
        file: None,
        metrics: false,
        watch: false,
        interval_ms: 250,
        frames: None,
    };
    let usage = |m: String| TraceError::Usage(m);
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => {
                args.socket = Some(
                    it.next()
                        .ok_or_else(|| usage("--socket needs a path".into()))?,
                );
            }
            "--metrics" => args.metrics = true,
            "--watch" => args.watch = true,
            "--interval" => {
                let v = it
                    .next()
                    .ok_or_else(|| usage("--interval needs milliseconds".into()))?;
                args.interval_ms = v
                    .parse()
                    .map_err(|_| usage(format!("--interval: not a number: {v}")))?;
            }
            "--frames" => {
                let v = it
                    .next()
                    .ok_or_else(|| usage("--frames needs a count".into()))?;
                args.frames = Some(
                    v.parse()
                        .map_err(|_| usage(format!("--frames: not a number: {v}")))?,
                );
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            _ if a.starts_with('-') => return Err(usage(format!("unknown flag {a}\n{USAGE}"))),
            _ if args.file.is_none() => args.file = Some(a),
            _ => return Err(usage(format!("unexpected argument {a}\n{USAGE}"))),
        }
    }
    if args.socket.is_some() == args.file.is_some() {
        return Err(usage(USAGE.into()));
    }
    if args.watch && args.socket.is_none() {
        return Err(usage(format!("--watch needs --socket\n{USAGE}")));
    }
    Ok(Some(args))
}

/// Fetches the flight recorder of a live daemon over its control socket.
fn fetch_live(socket: &str, include_metrics: bool) -> Result<String, TraceError> {
    let conn = UnixStream::connect(socket)
        .map_err(|e| TraceError::Io(format!("connect {socket}: {e}")))?;
    let mut read = conn
        .try_clone()
        .map_err(|e| TraceError::Io(format!("clone socket: {e}")))?;
    frame::write_frame(
        &conn,
        &Message::DumpTelemetry(DumpTelemetry { include_metrics }),
    )
    .map_err(|e| TraceError::Io(format!("send DumpTelemetry: {e}")))?;
    loop {
        match frame::read_frame(&mut read) {
            Ok(Some(Message::TelemetryDump(d))) => {
                if d.truncated {
                    eprintln!("note: dump truncated by the daemon (8 MiB cap)");
                }
                return Ok(d.jsonl);
            }
            // A crash-recoverable daemon greets every connection with its
            // boot epoch before serving requests.
            Ok(Some(Message::Hello(_))) => continue,
            Ok(Some(other)) => {
                return Err(TraceError::Protocol(format!("unexpected reply: {other:?}")))
            }
            Ok(None) => {
                return Err(TraceError::Protocol(
                    "daemon closed the connection without replying".into(),
                ))
            }
            Err(e) => return Err(TraceError::Io(format!("read reply: {e}"))),
        }
    }
}

/// Renders one telemetry frame as a per-session energy/latency table.
fn render_frame(f: &TelemetryFrame, show_metrics: bool) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "== frame seq={} dropped={} interval={}ms ==\n",
        f.seq, f.dropped_frames, f.interval_ms
    ));
    out.push_str(&format!(
        "tick: {} uJ (idle {} uJ)   lifetime total: {} uJ\n",
        f.tick_uj, f.idle_uj, f.total_uj
    ));
    if f.sessions.is_empty() {
        out.push_str("(no sessions)\n");
    } else {
        out.push_str(&format!(
            "{:>6}  {:<16} {:>12} {:>14} {:>12}\n",
            "app", "name", "tick uJ", "total uJ", "p99 lat us"
        ));
        for s in &f.sessions {
            out.push_str(&format!(
                "{:>6}  {:<16} {:>12} {:>14} {:>12}\n",
                s.app_id, s.name, s.tick_uj, s.total_uj, s.latency_p99_us
            ));
        }
    }
    if show_metrics && !f.metrics_jsonl.is_empty() {
        out.push_str("-- metric deltas --\n");
        out.push_str(&f.metrics_jsonl);
        if !f.metrics_jsonl.ends_with('\n') {
            out.push('\n');
        }
    }
    out
}

/// Live streaming mode: subscribe and print a table per frame until the
/// frame budget (if any) is exhausted or the daemon goes away.
fn watch(args: &Args) -> Result<(), TraceError> {
    let socket = args
        .socket
        .as_deref()
        .expect("parse_args enforces --socket");
    let transport = UnixTransport::connect(socket)
        .map_err(|e| TraceError::Io(format!("connect {socket}: {e}")))?;
    let mut sub = TelemetrySubscription::subscribe(transport, args.interval_ms, args.metrics)
        .map_err(|e| TraceError::Io(format!("subscribe: {e}")))?;
    loop {
        if let Some(budget) = args.frames {
            if sub.delivered() >= budget {
                return Ok(());
            }
        }
        let f = match sub.next_frame() {
            Ok(f) => f,
            // A clean daemon shutdown ends the stream; only miscounted
            // frames are a protocol error.
            Err(harp_types::HarpError::Io { .. }) if args.frames.is_none() => return Ok(()),
            Err(e) => return Err(TraceError::Protocol(format!("stream: {e}"))),
        };
        print!("{}", render_frame(&f, args.metrics));
    }
}

fn run() -> Result<(), TraceError> {
    let args = match parse_args()? {
        Some(a) => a,
        None => return Ok(()), // --help
    };
    if args.watch {
        return watch(&args);
    }
    let jsonl = match (&args.socket, &args.file) {
        (Some(socket), _) => fetch_live(socket, args.metrics)?,
        (_, Some(file)) => std::fs::read_to_string(file)
            .map_err(|e| TraceError::Io(format!("read {file}: {e}")))?,
        _ => unreachable!("parse_args enforces one source"),
    };
    let stats = validate_dump(&jsonl)
        .map_err(|e| TraceError::Malformed(format!("not a harp-obs-v1 dump: {e}")))?;
    let dump = parse_dump(&jsonl).map_err(TraceError::Malformed)?;

    println!(
        "== harp-obs dump: {} events ({} recorded, {} evicted), max tick {} ==",
        stats.events, dump.recorded, dump.evicted, stats.max_tick
    );
    if let Some(dropped) = dump.truncated_bytes {
        println!("note: producer truncated this dump, dropping {dropped} bytes");
    }
    println!("\n== span tree ==");
    print!("{}", render_span_tree(&dump));
    println!("\n== per-tick timings ==");
    print!("{}", render_tick_table(&dump));
    let faults = render_fault_tolerance(&dump);
    if !faults.is_empty() {
        println!("\n== fault tolerance ==");
        print!("{faults}");
    }
    let degradation = render_degradation(&dump);
    if !degradation.is_empty() {
        println!("\n== degradation ==");
        print!("{degradation}");
    }
    let shards = render_shards(&dump);
    if !shards.is_empty() {
        println!("\n== reactor shards ==");
        print!("{shards}");
    }
    if !dump.metrics.is_empty() {
        println!("\n== metrics ==");
        print!("{}", render_metrics(&dump));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("harp-trace: {e}");
            e.exit_code()
        }
    }
}
