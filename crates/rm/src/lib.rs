//! The HARP Resource Manager (paper §4).
//!
//! A single RM instance oversees all managed applications. It reacts to
//! application arrivals and exits and to periodic measurement ticks:
//!
//! 1. it gathers each application's *operating points* — supplied offline
//!    via profiles or learned online by the exploration engine
//!    (`harp-explore`);
//! 2. it attributes measured package energy to applications
//!    (`harp-energy`) and smooths utility/power measurements;
//! 3. it selects one Pareto-optimal operating point per application by
//!    solving the MMKP of Eq. 1 (`harp-alloc`), mapping selections onto
//!    disjoint physical cores;
//! 4. it emits [`Directive`]s — the *operating-point activation* messages
//!    that a frontend relays to each application's libharp instance, which
//!    then adapts (affinity + parallelism).
//!
//! The RM core is transport-agnostic: `harp-sched` drives it inside the
//! machine simulator for the evaluation, and `harp-daemon` drives it over
//! real Unix sockets. Both frontends charge the RM's communication costs to
//! the applications, reproducing the §6.6 overhead study.
//!
//! # Example
//!
//! ```
//! use harp_platform::HardwareDescription;
//! use harp_rm::{RmConfig, RmCore};
//! use harp_types::AppId;
//!
//! let hw = HardwareDescription::raptor_lake();
//! let mut rm = RmCore::new(hw, RmConfig::default());
//! let out = rm.register(AppId(1), "mg", false)?;
//! // A fresh application starts exploring: it gets the whole idle machine
//! // as its measurement envelope and a first target configuration.
//! assert_eq!(out.directives.len(), 1);
//! assert!(out.directives[0].parallelism >= 1);
//! # Ok::<(), harp_types::HarpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod core;
pub mod journal;
mod store;

pub use crate::core::{
    table_from_points, AppObservation, Directive, RmConfig, RmCore, RmOutput, TickObservations,
};
pub use crate::journal::{JournalRecord, JournalWriter, ReadOutcome};
pub use crate::store::ProfileStore;
pub use harp_energy::{EnergyLedger, LedgerEntry, LedgerTick};
pub use harp_explore::Stage;
