//! The transport-agnostic RM state machine.

use crate::journal::{
    JournalAppObs, JournalPoint, JournalRecord, JournalWriter, Snapshot, SnapshotFaults,
    SnapshotSession,
};
use harp_alloc::{
    allocate_avail, hw_threads_for, AllocOption, AllocRequest, SolveDeadline, SolveOpts,
    SolverKind, WarmStart, REFERENCE_ITERS,
};
use harp_energy::{EnergyAttributor, EnergyLedger, LedgerTick};
use harp_explore::{ExplorationConfig, Explorer, SampleOutcome, Stage};
use harp_platform::{CoreAvailability, FaultState, HardwareDescription, CAP_NOMINAL_PERMILLE};
use harp_types::{
    energy_utility_cost, AppId, CoreId, ErvShape, ExtResourceVector, FaultEvent, HarpError,
    HwThreadId, NonFunctional, OperatingPointTable, ResourceVector, Result,
};
use std::collections::HashMap;
use std::fmt::Write as _;

/// RM configuration.
#[derive(Debug, Clone)]
pub struct RmConfig {
    /// MMKP solver used for allocation rounds.
    pub solver: SolverKind,
    /// Online-exploration parameters.
    pub exploration: ExplorationConfig,
    /// Offline mode: applications run on their preloaded profiles and no
    /// runtime exploration happens (the *HARP (Offline)* variant, and the
    /// only mode on the Odroid, §6.4).
    pub offline: bool,
    /// Modelled CPU cost of one RM↔libharp message round trip, charged by
    /// the frontend to the application (overhead study, §6.6).
    pub message_cost_ns: u64,
    /// Modelled CPU cost of one allocation solve.
    pub solve_cost_ns: u64,
    /// Cooperative solver budget per allocation round in subgradient
    /// iterations (`0` = unbounded). Deterministic, so journal replay takes
    /// the same degraded/non-degraded path as the live run — the production
    /// choice for crash-recoverable daemons. On overrun the RM keeps the
    /// previous feasible allocation, marks the tick degraded
    /// (`rm.degraded_ticks`) and re-solves next tick.
    pub solve_deadline_iters: u32,
    /// Wall-clock solver budget per allocation round in microseconds
    /// (`0` = disabled). Layers on top of the iteration budget; whichever
    /// exhausts first wins. Non-deterministic: a replay under different
    /// load may diverge from the live run, so snapshots (compaction) bound
    /// the divergence window.
    pub solve_deadline_us: u64,
    /// Worker-pool width for the solver's data-parallel candidate
    /// evaluation (`0`/`1` = serial). Results are bit-identical at any
    /// setting — the knob trades solve latency for CPU time on large
    /// managed populations (≳ 256 applications), so journal replay is
    /// unaffected by it.
    pub solver_threads: u32,
}

impl Default for RmConfig {
    fn default() -> Self {
        RmConfig {
            solver: SolverKind::Lagrangian,
            exploration: ExplorationConfig::default(),
            offline: false,
            message_cost_ns: 300_000,
            solve_cost_ns: 2_000_000,
            solve_deadline_iters: 0,
            solve_deadline_us: 0,
            solver_threads: 0,
        }
    }
}

/// An operating-point activation the frontend must relay to an application
/// (paper §4.1.1 step 3).
#[derive(Debug, Clone, PartialEq)]
pub struct Directive {
    /// Target application.
    pub app: AppId,
    /// The activated extended resource vector.
    pub erv: ExtResourceVector,
    /// Concrete granted cores.
    pub cores: Vec<CoreId>,
    /// Concrete granted hardware threads.
    pub hw_threads: Vec<HwThreadId>,
    /// The parallelization degree libharp should apply.
    pub parallelism: u32,
}

/// The result of an RM entry point: activations to relay plus bookkeeping
/// for overhead accounting.
#[derive(Debug, Clone, Default)]
pub struct RmOutput {
    /// Activations to deliver.
    pub directives: Vec<Directive>,
    /// Number of allocation solves performed.
    pub solves: u32,
    /// Summed solver effort of those solves, as a fraction of the
    /// reference solver's full iteration schedule (see
    /// [`harp_alloc::Selection::work`]). Warm-started rounds report far
    /// less than `solves × 1.0`; the overhead model charges
    /// `solve_cost_ns × solve_work`.
    pub solve_work: f64,
    /// The solver overran its deadline this round: the previous feasible
    /// allocation stays applied (new arrivals fall back to whole-machine
    /// co-allocation) and a full re-solve is retried next tick.
    pub degraded: bool,
    /// The tick's exact integer energy decomposition ([`RmCore::tick`]
    /// only; register/deregister rounds report `None`). Per-session
    /// micro-joules sum bit-exactly to `energy.tick_uj` — see
    /// [`harp_energy::EnergyLedger`].
    pub energy: Option<LedgerTick>,
}

impl RmOutput {
    fn merge(&mut self, other: RmOutput) {
        // Later directives supersede earlier ones for the same app.
        for d in other.directives {
            self.directives.retain(|x| x.app != d.app);
            self.directives.push(d);
        }
        self.solves += other.solves;
        self.solve_work += other.solve_work;
        self.degraded |= other.degraded;
        if other.energy.is_some() {
            self.energy = other.energy;
        }
    }
}

/// One application observation of a measurement tick.
#[derive(Debug, Clone)]
pub struct AppObservation {
    /// The application.
    pub app: AppId,
    /// Utility rate over the tick: IPS from perf sampling, or the
    /// application-specific metric for apps that provide one (§4.2.1).
    pub utility_rate: f64,
    /// Cumulative per-kind CPU seconds (scheduler accounting).
    pub cpu_time: Vec<f64>,
}

/// Observations of one measurement tick (50 ms cadence by default).
#[derive(Debug, Clone)]
pub struct TickObservations {
    /// Interval length in seconds.
    pub dt_s: f64,
    /// Cumulative package energy counter in joules (RAPL-style).
    pub package_energy_j: f64,
    /// Per-application observations.
    pub apps: Vec<AppObservation>,
}

struct Session {
    name: String,
    provides_utility: bool,
    explorer: Explorer,
    /// Disjoint core envelope this session may use until the next
    /// allocation round (selected point + leftover share while exploring).
    envelope: Vec<CoreId>,
    /// The configuration the application currently runs.
    active_erv: Option<ExtResourceVector>,
    samples_since_realloc: u64,
    co_allocated: bool,
    /// Opaque token a disconnected client presents to reclaim the session
    /// (0 = resume not supported for this session).
    resume_token: u64,
    /// Tenant priority weight: the allocator multiplies option costs by
    /// it, so under λ-pressure a weight < 1 session is downgraded off its
    /// preferred point before a weight > 1 session. Exactly 1.0 for the
    /// default class, which leaves costs bit-identical.
    priority: f64,
}

/// A core enters probation instead of returning to service once it has
/// failed this many times.
const QUARANTINE_AFTER_FAILS: u32 = 2;
/// Base probation length in measurement ticks; doubles per additional
/// failure beyond the threshold, capped at `<< QUARANTINE_BACKOFF_CAP`.
const QUARANTINE_BASE_TICKS: u64 = 8;
/// Cap on the exponential-backoff shift (8 << 6 = 512 ticks max).
const QUARANTINE_BACKOFF_CAP: u32 = 6;
/// An in-service core that stays clean this many ticks has one past
/// failure forgiven, so ancient flaps do not quarantine forever.
const HEALTH_DECAY_TICKS: u64 = 64;

/// Per-core health record backing the quarantine policy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct CoreHealth {
    /// Lifetime failure count (decayed while the core stays clean).
    fails: u32,
    /// Probation re-admission tick; 0 = not quarantined.
    quarantined_until: u64,
    /// Tick of the last fail/recover/quarantine/decay transition.
    last_change_tick: u64,
}

/// The HARP RM state machine. See the [crate docs](crate) for the overall
/// role; frontends call [`RmCore::register`], [`RmCore::deregister`] and
/// [`RmCore::tick`] and relay the returned [`Directive`]s.
pub struct RmCore {
    hw: HardwareDescription,
    cfg: RmConfig,
    sessions: HashMap<AppId, Session>,
    attributor: EnergyAttributor,
    /// Exact integer micro-joule energy accounting over the attribution
    /// model — the per-session ledger surfaced via [`RmOutput::energy`].
    ledger: EnergyLedger,
    last_package_energy: f64,
    last_cpu: HashMap<AppId, Vec<f64>>,
    /// Operating-point profiles persisted across application runs, keyed by
    /// application name (the `/etc/harp` profile store, §4.3).
    profiles: HashMap<String, OperatingPointTable>,
    /// Solver warm-start state carried between allocation rounds:
    /// consecutive rounds differ by at most an arrival, departure or small
    /// cost drift, so the λ multipliers, previous picks and instance memo
    /// let warm rounds converge in a handful of iterations.
    warm: WarmStart,
    /// Ticks processed so far; scopes telemetry events via
    /// [`harp_obs::set_tick`].
    ticks: u64,
    /// Attached crash-recovery journal (None = journaling off).
    journal: Option<JournalWriter>,
    /// Records appended since the last compaction.
    ops_since_compact: u64,
    /// Compact the journal after this many records (0 = never).
    compact_every: u64,
    /// Resume-token → session lookup for idempotent reconnects.
    resume_tokens: HashMap<u64, AppId>,
    /// Last activation emitted per app — replayed to a resuming client so
    /// it re-applies its current allocation without waiting for a round.
    last_directives: HashMap<AppId, Directive>,
    /// Highest app id ever registered; survives recovery so a restarted
    /// frontend never reuses ids.
    max_app_seen: u64,
    /// The last allocation round overran its solver deadline; the next
    /// tick forces a full re-solve even if nothing else changed.
    pending_resolve: bool,
    /// Allocation rounds that overran the solver deadline since creation.
    degraded_ticks: u64,
    /// Degraded-hardware state: core hotplug, thermal caps, sensor dropout
    /// (DESIGN.md §15).
    faults: FaultState,
    /// Per-core quarantine health records (indexed by raw core id).
    health: Vec<CoreHealth>,
    /// Sessions migrated off failing cores so far (`rm.migrations`).
    migrations: u64,
}

impl std::fmt::Debug for RmCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RmCore")
            .field("sessions", &self.sessions.len())
            .field("profiles", &self.profiles.len())
            .field("offline", &self.cfg.offline)
            .finish()
    }
}

impl RmCore {
    /// Creates an RM for a machine.
    pub fn new(hw: HardwareDescription, cfg: RmConfig) -> Self {
        let attributor = EnergyAttributor::new(&hw);
        let faults = FaultState::new(&hw);
        let health = vec![CoreHealth::default(); hw.num_cores()];
        RmCore {
            hw,
            cfg,
            sessions: HashMap::new(),
            attributor,
            ledger: EnergyLedger::new(),
            last_package_energy: 0.0,
            last_cpu: HashMap::new(),
            profiles: HashMap::new(),
            warm: WarmStart::new(),
            ticks: 0,
            journal: None,
            ops_since_compact: 0,
            compact_every: 0,
            resume_tokens: HashMap::new(),
            last_directives: HashMap::new(),
            max_app_seen: 0,
            pending_resolve: false,
            degraded_ticks: 0,
            faults,
            health,
            migrations: 0,
        }
    }

    /// Rebuilds a core by replaying a journal record sequence through the
    /// real entry points. With a full (uncompacted) history the result is
    /// bit-identical to the crashed core — sessions, measured points,
    /// solver warm-start and exploration state all evolve deterministically
    /// from the same inputs. A leading [`JournalRecord::Snapshot`] restores
    /// durable state exactly (profiles, sessions, points, tokens, counters)
    /// and the allocation is re-derived on the first round.
    ///
    /// The recovered core has no journal attached; call
    /// [`RmCore::attach_journal`] to resume journaling.
    ///
    /// # Errors
    ///
    /// Propagates replay errors — a journal written by a correct core never
    /// produces them, so they indicate the records belong to a different
    /// machine description or configuration.
    pub fn recover(
        hw: HardwareDescription,
        cfg: RmConfig,
        records: &[JournalRecord],
    ) -> Result<RmCore> {
        let mut core = RmCore::new(hw, cfg);
        for rec in records {
            core.apply_record(rec)?;
        }
        Ok(core)
    }

    /// Attaches a journal; subsequent successful state changes are appended
    /// to it. `compact_every` > 0 rewrites the file as one snapshot after
    /// that many appended records.
    pub fn attach_journal(&mut self, journal: JournalWriter, compact_every: u64) {
        self.journal = Some(journal);
        self.ops_since_compact = 0;
        self.compact_every = compact_every;
    }

    /// Detaches and returns the journal, if any (flushed state stays on
    /// disk).
    pub fn detach_journal(&mut self) -> Option<JournalWriter> {
        self.journal.take()
    }

    /// Mutable access to the attached journal (daemon epoch bumps).
    pub fn journal_mut(&mut self) -> Option<&mut JournalWriter> {
        self.journal.as_mut()
    }

    /// Resolves a resume token to the session it is bound to.
    pub fn resolve_resume_token(&self, token: u64) -> Option<AppId> {
        if token == 0 {
            return None;
        }
        self.resume_tokens.get(&token).copied()
    }

    /// The resume token bound to a session (0 = none).
    pub fn resume_token_of(&self, app: AppId) -> u64 {
        self.sessions.get(&app).map_or(0, |s| s.resume_token)
    }

    /// The last activation emitted for an app (replayed on resume).
    pub fn last_directive(&self, app: AppId) -> Option<&Directive> {
        self.last_directives.get(&app)
    }

    /// Highest app id ever registered on this core (including recovered
    /// history); frontends seed their id counters past it after a restart.
    pub fn max_app_seen(&self) -> u64 {
        self.max_app_seen
    }

    /// Number of measurement ticks processed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The exact integer micro-joule energy ledger (per-session
    /// attribution that conserves the modeled total bit-exactly; see
    /// [`harp_energy::EnergyLedger`]). Frontends read it to build
    /// telemetry frames; the per-tick decomposition is also returned via
    /// [`RmOutput::energy`].
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// The display name of a live session, if registered.
    pub fn session_name(&self, app: AppId) -> Option<&str> {
        self.sessions.get(&app).map(|s| s.name.as_str())
    }

    /// Allocation rounds that overran the solver deadline and fell back to
    /// the previous feasible allocation (also surfaced as the
    /// `rm.degraded_ticks` metric).
    pub fn degraded_ticks(&self) -> u64 {
        self.degraded_ticks
    }

    /// The RM configuration.
    pub fn config(&self) -> &RmConfig {
        &self.cfg
    }

    /// The solver warm-start state carried between allocation rounds
    /// (memo/certificate counters for the overhead study).
    pub fn warm_start(&self) -> &WarmStart {
        &self.warm
    }

    /// Installs an operating-point profile for an application name (from a
    /// description file or a previous run).
    pub fn load_profile(&mut self, name: impl Into<String>, table: OperatingPointTable) {
        self.profiles.insert(name.into(), table);
    }

    /// The stored profile of an application name, if any.
    pub fn profile(&self, name: &str) -> Option<&OperatingPointTable> {
        self.profiles.get(name)
    }

    /// The exploration stage of a managed application (always `Stable` in
    /// offline mode).
    pub fn stage_of(&self, app: AppId) -> Option<Stage> {
        let s = self.sessions.get(&app)?;
        Some(self.session_stage(s))
    }

    /// Whether every managed application has reached the stable stage.
    pub fn all_stable(&self) -> bool {
        self.sessions
            .values()
            .all(|s| self.session_stage(s) == Stage::Stable)
    }

    /// Ids of all managed applications.
    pub fn managed_apps(&self) -> Vec<AppId> {
        let mut v: Vec<AppId> = self.sessions.keys().copied().collect();
        v.sort();
        v
    }

    fn session_stage(&self, s: &Session) -> Stage {
        if self.cfg.offline {
            Stage::Stable
        } else {
            s.explorer.stage()
        }
    }

    /// Registers an application (paper §4.1.1 steps 1–3). Returns the
    /// activations of the triggered allocation round.
    ///
    /// # Errors
    ///
    /// Returns [`HarpError::Other`] on duplicate registration.
    pub fn register(&mut self, app: AppId, name: &str, provides_utility: bool) -> Result<RmOutput> {
        self.register_resumable(app, name, provides_utility, 0)
    }

    /// [`RmCore::register`] with a resume token bound to the session: a
    /// disconnected client presenting the token later reclaims this exact
    /// session instead of registering fresh (crash-recovery protocol,
    /// DESIGN.md §10).
    ///
    /// # Errors
    ///
    /// Returns [`HarpError::Other`] on duplicate registration or a token
    /// already bound to another session.
    pub fn register_resumable(
        &mut self,
        app: AppId,
        name: &str,
        provides_utility: bool,
        resume_token: u64,
    ) -> Result<RmOutput> {
        let _sp = harp_obs::span(harp_obs::Subsystem::Rm, "register")
            .field("app", app.0)
            .field("name", name.to_string());
        if self.sessions.contains_key(&app) {
            return Err(HarpError::other(format!("{app} already registered")));
        }
        if resume_token != 0 && self.resume_tokens.contains_key(&resume_token) {
            return Err(HarpError::other(format!(
                "resume token {resume_token} already bound"
            )));
        }
        let mut explorer = Explorer::new(
            &self.hw.erv_shape(),
            &self.hw.capacity(),
            self.cfg.exploration.clone(),
        )?;
        if let Some(profile) = self.profiles.get(name) {
            explorer.seed_measured(profile.iter_measured().map(|(_, p)| (p.erv.clone(), p.nfc)));
        }
        self.sessions.insert(
            app,
            Session {
                name: name.to_string(),
                provides_utility,
                explorer,
                envelope: Vec::new(),
                active_erv: None,
                samples_since_realloc: 0,
                co_allocated: false,
                resume_token,
                priority: 1.0,
            },
        );
        if resume_token != 0 {
            self.resume_tokens.insert(resume_token, app);
        }
        self.max_app_seen = self.max_app_seen.max(app.0);
        let out = self.reallocate()?;
        self.journal_append(JournalRecord::Register {
            app: app.0,
            name: name.to_string(),
            provides_utility,
            resume_token,
        });
        self.note_output(&out);
        Ok(out)
    }

    /// The live operating-point table of a managed application.
    pub fn session_table(&self, app: AppId) -> Option<&OperatingPointTable> {
        self.sessions.get(&app).map(|s| s.explorer.table())
    }

    /// A snapshot of every known operating-point table: stored profiles
    /// overlaid with the live tables of currently managed applications
    /// (used by the learning-phase study, Fig. 8).
    pub fn snapshot_profiles(&self) -> HashMap<String, OperatingPointTable> {
        let mut out = self.profiles.clone();
        for s in self.sessions.values() {
            let table: OperatingPointTable = s
                .explorer
                .table()
                .iter_measured()
                .map(|(_, p)| harp_types::OperatingPoint::new(p.erv.clone(), p.nfc))
                .collect();
            out.insert(s.name.clone(), table);
        }
        out
    }

    /// Submits operating points for a registered application (paper §4.1.1
    /// step 2: points parsed from the application description file). The
    /// points are recorded as measured and an allocation round runs.
    ///
    /// The whole batch is validated before any point is recorded, so a
    /// malformed submission leaves the session table untouched rather than
    /// half-updated.
    ///
    /// # Errors
    ///
    /// Returns [`HarpError::NotFound`] for unknown applications,
    /// [`HarpError::ShapeMismatch`] for points whose vector shape differs
    /// from the machine's, and [`HarpError::Numeric`] for non-finite or
    /// negative utility/power values.
    pub fn submit_points(
        &mut self,
        app: AppId,
        points: Vec<(ExtResourceVector, NonFunctional)>,
    ) -> Result<RmOutput> {
        let _sp = harp_obs::span(harp_obs::Subsystem::Rm, "submit_points")
            .field("app", app.0)
            .field("points", points.len());
        let shape = self.hw.erv_shape();
        let session = self
            .sessions
            .get_mut(&app)
            .ok_or_else(|| HarpError::not_found(format!("{app}")))?;
        for (erv, nfc) in &points {
            if erv.shape() != shape {
                return Err(HarpError::ShapeMismatch {
                    detail: format!(
                        "submitted point shape {:?} does not match machine shape {:?}",
                        erv.shape(),
                        shape
                    ),
                });
            }
            if !nfc.utility.is_finite()
                || !nfc.power.is_finite()
                || nfc.utility < 0.0
                || nfc.power < 0.0
            {
                return Err(HarpError::Numeric {
                    detail: format!(
                        "submitted point has non-finite or negative characteristics \
                         (utility {}, power {})",
                        nfc.utility, nfc.power
                    ),
                });
            }
        }
        let journaled: Option<Vec<JournalPoint>> = self
            .journal
            .is_some()
            .then(|| points.iter().map(encode_point).collect());
        session.explorer.seed_measured(points);
        let out = self.reallocate()?;
        if let Some(points) = journaled {
            self.journal_append(JournalRecord::SubmitPoints { app: app.0, points });
        }
        self.note_output(&out);
        Ok(out)
    }

    /// The priority weight of a managed application (1.0 = default class).
    pub fn priority_of(&self, app: AppId) -> Option<f64> {
        self.sessions.get(&app).map(|s| s.priority)
    }

    /// Changes an application's tenant priority weight and re-balances.
    /// The weight scales the session's option costs in the MMKP objective
    /// (see `harp_types::PriorityClass` for the canonical classes): heavier
    /// sessions hold their preferred operating points under contention
    /// while lighter ones absorb the downgrade. Setting the current weight
    /// again is a no-op: no allocation round runs and nothing is
    /// journaled, so replays stay bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`HarpError::NotFound`] for unknown applications and
    /// [`HarpError::Numeric`] for a non-finite or non-positive weight.
    pub fn set_priority(&mut self, app: AppId, weight: f64) -> Result<RmOutput> {
        let _sp = harp_obs::span(harp_obs::Subsystem::Rm, "set_priority")
            .field("app", app.0)
            .field("weight", weight);
        if !weight.is_finite() || weight <= 0.0 {
            return Err(HarpError::Numeric {
                detail: format!("priority weight must be finite and positive, got {weight}"),
            });
        }
        let session = self
            .sessions
            .get_mut(&app)
            .ok_or_else(|| HarpError::not_found(format!("{app} is not registered")))?;
        if session.priority == weight {
            return Ok(RmOutput::default());
        }
        session.priority = weight;
        let out = self.reallocate()?;
        self.journal_append(JournalRecord::SetPriority {
            app: app.0,
            weight_bits: weight.to_bits(),
        });
        self.note_output(&out);
        Ok(out)
    }

    /// Deregisters an application: its learned profile is persisted (the
    /// self-improving store of §4.3) and resources are re-balanced.
    ///
    /// # Errors
    ///
    /// Returns [`HarpError::NotFound`] for unknown applications — an
    /// out-of-order deregistration (duplicate exit, exit before register)
    /// is rejected without triggering a spurious allocation round.
    pub fn deregister(&mut self, app: AppId) -> Result<RmOutput> {
        let _sp = harp_obs::span(harp_obs::Subsystem::Rm, "deregister").field("app", app.0);
        let Some(s) = self.sessions.remove(&app) else {
            return Err(HarpError::not_found(format!("{app} is not registered")));
        };
        if s.resume_token != 0 {
            self.resume_tokens.remove(&s.resume_token);
        }
        self.last_directives.remove(&app);
        self.profiles.insert(s.name, s.explorer.into_table());
        self.attributor.remove(app);
        self.ledger.remove(app);
        self.last_cpu.remove(&app);
        let out = if self.sessions.is_empty() {
            RmOutput::default()
        } else {
            self.reallocate()?
        };
        self.journal_append(JournalRecord::Deregister { app: app.0 });
        self.note_output(&out);
        Ok(out)
    }

    /// The usable-core mask: every hardware-online core that is not in
    /// quarantine. This is the set the allocator may grant from.
    pub fn availability(&self) -> CoreAvailability {
        let mut avail = CoreAvailability::full(&self.hw);
        for i in 0..self.hw.num_cores() {
            if !self.faults.is_online(CoreId(i)) || self.health[i].quarantined_until != 0 {
                avail.ban(CoreId(i));
            }
        }
        avail
    }

    /// The current degraded-hardware state (hotplug, caps, sensor dropout).
    pub fn fault_state(&self) -> &FaultState {
        &self.faults
    }

    /// Sessions migrated off failing cores since creation.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Cores currently held in quarantine (hardware-online, policy-banned).
    pub fn quarantined_cores(&self) -> Vec<CoreId> {
        (0..self.hw.num_cores())
            .filter(|&i| self.health[i].quarantined_until != 0)
            .map(CoreId)
            .collect()
    }

    /// Whether `core` may currently receive work.
    pub fn core_available(&self, core: CoreId) -> bool {
        self.faults.core_in_range(core)
            && self.faults.is_online(core)
            && self.health[core.0].quarantined_until == 0
    }

    /// Number of cores the allocator may currently grant.
    pub fn available_core_count(&self) -> usize {
        (0..self.hw.num_cores())
            .filter(|&i| self.core_available(CoreId(i)))
            .count()
    }

    /// Injects one hardware-degradation event (paper-style hotplug,
    /// thermal capping, or sensor dropout; DESIGN.md §15).
    ///
    /// A `CoreFail` of an in-service core evicts every session holding it
    /// (counted in `rm.migrations`), shrinks the MMKP capacity vector and
    /// forces a cold re-solve. A `CoreRecover` either readmits the core
    /// (again a topology change, so cold re-solve) or — once the core has
    /// failed [`QUARANTINE_AFTER_FAILS`] times — places it in probation
    /// with exponential-backoff re-admission. Thermal caps do not change
    /// the capacity vector; they schedule a full re-solve so the solver
    /// re-reads the shifted power landscape. Applied events are journaled
    /// and replay deterministically on recovery.
    ///
    /// # Errors
    ///
    /// Returns [`HarpError::NotFound`] for an out-of-range core or
    /// cluster; allocation errors propagate from the eviction re-solve.
    pub fn inject_fault(&mut self, ev: &FaultEvent) -> Result<RmOutput> {
        let (kind, a, b) = ev.encode_words();
        let (out, applied) = self.fault_inner(ev)?;
        if applied {
            self.journal_append(JournalRecord::Fault { kind, a, b });
            self.note_output(&out);
        }
        Ok(out)
    }

    fn fault_inner(&mut self, ev: &FaultEvent) -> Result<(RmOutput, bool)> {
        let mut realloc = false;
        match *ev {
            FaultEvent::CoreFail { core } => {
                if !self.faults.core_in_range(core) {
                    return Err(HarpError::not_found(format!("{core} out of range")));
                }
                if !self.faults.is_online(core) {
                    return Ok((RmOutput::default(), false));
                }
                let was_available = self.health[core.0].quarantined_until == 0;
                self.faults.apply(ev);
                let h = &mut self.health[core.0];
                h.fails = h.fails.saturating_add(1);
                h.quarantined_until = 0;
                h.last_change_tick = self.ticks;
                if was_available {
                    // Evict and migrate every session holding the dead core.
                    let holders = self
                        .sessions
                        .iter()
                        .filter(|(_, s)| s.envelope.contains(&core))
                        .map(|(a, _)| *a)
                        .collect::<Vec<_>>();
                    if harp_obs::enabled() {
                        for &app in &holders {
                            harp_obs::instant(harp_obs::Subsystem::Rm, "migrate")
                                .field("app", app.0)
                                .field("core", core.0 as u64);
                        }
                    }
                    self.migrations += holders.len() as u64;
                    harp_obs::metrics::counter("rm.migrations").add(holders.len() as u64);
                    realloc = true;
                }
            }
            FaultEvent::CoreRecover { core } => {
                if !self.faults.core_in_range(core) {
                    return Err(HarpError::not_found(format!("{core} out of range")));
                }
                if self.faults.is_online(core) {
                    // Already recovered (possibly sitting in quarantine).
                    return Ok((RmOutput::default(), false));
                }
                self.faults.apply(ev);
                let h = &mut self.health[core.0];
                h.last_change_tick = self.ticks;
                if h.fails >= QUARANTINE_AFTER_FAILS {
                    // Repeat offender: probation with exponential backoff
                    // instead of immediate readmission.
                    let shift = (h.fails - QUARANTINE_AFTER_FAILS).min(QUARANTINE_BACKOFF_CAP);
                    h.quarantined_until = self.ticks + (QUARANTINE_BASE_TICKS << shift);
                    if harp_obs::enabled() {
                        harp_obs::instant(harp_obs::Subsystem::Rm, "quarantine")
                            .field("core", core.0 as u64)
                            .field("fails", u64::from(h.fails))
                            .field("until_tick", h.quarantined_until);
                    }
                } else {
                    realloc = true;
                }
            }
            FaultEvent::ThermalCap { cluster, permille } => {
                if cluster as usize >= self.hw.num_kinds() {
                    return Err(HarpError::not_found(format!(
                        "cluster {cluster} out of range"
                    )));
                }
                if !self.faults.apply(ev) {
                    return Ok((RmOutput::default(), false));
                }
                let _ = permille;
                // Capacity vectors are unchanged; the power landscape is
                // not, so schedule a full re-solve on the next tick.
                self.pending_resolve = true;
            }
            FaultEvent::SensorDrop { ticks } => {
                if ticks == 0 || !self.faults.apply(ev) {
                    return Ok((RmOutput::default(), false));
                }
            }
        }
        harp_obs::metrics::counter("platform.faults_injected").inc();
        harp_obs::metrics::counter(match ev.kind() {
            harp_types::FaultKind::CoreFail => "platform.fault.core_fail",
            harp_types::FaultKind::CoreRecover => "platform.fault.core_recover",
            harp_types::FaultKind::ThermalCap => "platform.fault.thermal_cap",
            harp_types::FaultKind::SensorDrop => "platform.fault.sensor_drop",
        })
        .inc();
        if harp_obs::enabled() {
            harp_obs::instant(harp_obs::Subsystem::Rm, "fault")
                .field("kind", ev.kind().as_str())
                .field("available_cores", self.available_core_count() as u64);
        }
        self.publish_fault_gauges();
        let out = if realloc {
            // Topology changed: the warm-start state describes a machine
            // that no longer exists, so the next solve must run cold.
            self.warm.clear();
            if self.sessions.is_empty() {
                RmOutput::default()
            } else {
                self.reallocate()?
            }
        } else {
            RmOutput::default()
        };
        Ok((out, true))
    }

    fn publish_fault_gauges(&self) {
        harp_obs::metrics::gauge("rm.quarantined_cores").set(self.quarantined_cores().len() as i64);
        harp_obs::metrics::gauge("rm.offline_cores").set(self.faults.offline_cores().len() as i64);
    }

    /// Processes one measurement tick (paper §5.1/§5.3): energy
    /// attribution, EMA-smoothed sampling, exploration progress, and —
    /// when campaigns complete or the stable re-evaluation cycle elapses —
    /// new allocation rounds.
    ///
    /// # Errors
    ///
    /// Propagates allocation errors (which indicate an inconsistent
    /// machine description rather than a runtime condition).
    pub fn tick(&mut self, obs: &TickObservations) -> Result<RmOutput> {
        self.ticks += 1;
        harp_obs::set_tick(self.ticks);
        let mut sp = harp_obs::span(harp_obs::Subsystem::Rm, "tick").field("apps", obs.apps.len());
        let out = self.tick_inner(obs);
        if let Ok(out) = &out {
            if sp.is_active() {
                sp.set_field("directives", out.directives.len());
                sp.set_field("solves", out.solves);
                sp.set_field("solve_work", out.solve_work);
            }
        }
        if let Ok(out) = &out {
            if self.journal.is_some() {
                self.journal_append(JournalRecord::Tick {
                    dt_bits: obs.dt_s.to_bits(),
                    package_energy_bits: obs.package_energy_j.to_bits(),
                    apps: obs
                        .apps
                        .iter()
                        .map(|a| JournalAppObs {
                            app: a.app.0,
                            utility_rate_bits: a.utility_rate.to_bits(),
                            cpu_time_bits: a.cpu_time.iter().map(|v| v.to_bits()).collect(),
                        })
                        .collect(),
                });
            }
            self.note_output(out);
        }
        out
    }

    fn tick_inner(&mut self, obs: &TickObservations) -> Result<RmOutput> {
        // Energy attribution from observable counters. While the package
        // power sensor is dark the tick is charged zero energy and the
        // baseline reading is left untouched, so the whole dark-window
        // delta lands on the first tick after the sensor returns: deferred
        // attribution keeps ledger conservation exact (DESIGN.md §15).
        let sensor_dark = self.faults.consume_sensor_tick();
        let energy_delta = if sensor_dark {
            harp_obs::metrics::counter("platform.sensor_dark_ticks").inc();
            0.0
        } else {
            let d = (obs.package_energy_j - self.last_package_energy).max(0.0);
            self.last_package_energy = obs.package_energy_j;
            d
        };
        let mut cpu_deltas = Vec::with_capacity(obs.apps.len());
        for a in &obs.apps {
            // Read the previous sample in place (cloning it every tick was
            // pure allocation churn) and reuse its buffer for the update.
            let prev = self.last_cpu.get(&a.app);
            let delta: Vec<f64> = a
                .cpu_time
                .iter()
                .enumerate()
                .map(|(i, now)| {
                    let before = prev.and_then(|p| p.get(i)).copied().unwrap_or(0.0);
                    (now - before).max(0.0)
                })
                .collect();
            self.last_cpu
                .entry(a.app)
                .or_default()
                .clone_from(&a.cpu_time);
            cpu_deltas.push((a.app, delta));
        }
        self.attributor.update(obs.dt_s, energy_delta, &cpu_deltas);

        // Integer ledger over the same model: per-session weights are the
        // attributor's Σ_k γ_k·T_k, so the exact micro-joule split follows
        // the float attribution proportions. Sequential tick-path
        // arithmetic only — solver parallelism cannot reach it.
        let weights: Vec<(AppId, f64)> = cpu_deltas
            .iter()
            .map(|(app, times)| {
                let w: f64 = times
                    .iter()
                    .enumerate()
                    .map(|(k, &t)| self.attributor.coefficient(k) * t.max(0.0))
                    .sum();
                (*app, w)
            })
            .collect();
        let ledger_tick = self.ledger.charge(energy_delta, &weights);
        if harp_obs::enabled() {
            harp_obs::instant(harp_obs::Subsystem::Rm, "energy")
                .field("tick_uj", ledger_tick.tick_uj)
                .field("idle_uj", ledger_tick.idle_tick_uj)
                .field("total_uj", self.ledger.total_uj())
                .field("sessions", ledger_tick.entries.len() as u64);
        }

        let mut out = RmOutput::default();
        let mut want_realloc = false;
        let mut retarget: Vec<AppId> = Vec::new();

        for a in &obs.apps {
            let power = self.attributor.last_power(a.app);
            let Some(session) = self.sessions.get_mut(&a.app) else {
                continue;
            };
            if session.co_allocated {
                // Co-allocation distorts measurements; monitoring is
                // suspended (paper §4.2.2).
                continue;
            }
            if self.cfg.offline {
                continue;
            }
            if session.explorer.current_target().is_some() {
                let stage_before = session.explorer.stage();
                match session.explorer.record_sample(a.utility_rate, power)? {
                    SampleOutcome::Continue => {}
                    SampleOutcome::TargetDone => {
                        session.explorer.refresh_predictions();
                        let stage_after = session.explorer.stage();
                        if harp_obs::enabled() {
                            harp_obs::instant(harp_obs::Subsystem::Explore, "campaign_done")
                                .field("app", a.app.0)
                                .field("stage", stage_name(stage_after));
                            if stage_after != stage_before {
                                harp_obs::instant(harp_obs::Subsystem::Explore, "stage_transition")
                                    .field("app", a.app.0)
                                    .field("from", stage_name(stage_before))
                                    .field("to", stage_name(stage_after));
                            }
                        }
                        if stage_after == Stage::Stable {
                            want_realloc = true;
                        } else {
                            retarget.push(a.app);
                        }
                    }
                }
            } else if let Some(erv) = session.active_erv.clone() {
                session.explorer.record_ambient(&erv, a.utility_rate, power);
                session.samples_since_realloc += 1;
                if session.samples_since_realloc >= self.cfg.exploration.stable_realloc_every {
                    session.samples_since_realloc = 0;
                    want_realloc = true;
                }
            }
        }

        // Quarantine re-admission and health decay (DESIGN.md §15): a core
        // whose probation expired rejoins the usable set (cold re-solve,
        // since the topology changed), and an in-service core that stayed
        // clean for HEALTH_DECAY_TICKS has one past failure forgiven.
        let now = self.ticks;
        let mut readmitted = false;
        for (i, h) in self.health.iter_mut().enumerate() {
            if h.quarantined_until != 0 && now >= h.quarantined_until {
                h.quarantined_until = 0;
                h.last_change_tick = now;
                readmitted = true;
                if harp_obs::enabled() {
                    harp_obs::instant(harp_obs::Subsystem::Rm, "readmit")
                        .field("core", i as u64)
                        .field("fails", u64::from(h.fails));
                }
            } else if h.fails > 0
                && h.quarantined_until == 0
                && self.faults.is_online(CoreId(i))
                && now.saturating_sub(h.last_change_tick) >= HEALTH_DECAY_TICKS
            {
                h.fails -= 1;
                h.last_change_tick = now;
            }
        }
        if readmitted {
            self.warm.clear();
            self.publish_fault_gauges();
            if !self.sessions.is_empty() {
                want_realloc = true;
            }
        }

        // A degraded round leaves the previous allocation in place; retry
        // the full solve on the next tick even if nothing else changed.
        if want_realloc || self.pending_resolve {
            out.merge(self.reallocate()?);
        } else {
            for app in retarget {
                if let Some(d) = self.next_target_directive(app) {
                    out.merge(RmOutput {
                        directives: vec![d],
                        solves: 0,
                        solve_work: 0.0,
                        degraded: false,
                        energy: None,
                    });
                }
            }
        }
        out.energy = Some(ledger_tick);
        Ok(out)
    }

    /// Chooses the next exploration target for `app` within its existing
    /// envelope and produces the corresponding activation.
    fn next_target_directive(&mut self, app: AppId) -> Option<Directive> {
        // Disjoint field borrows: the machine description is only read
        // while the session is mutated (cloning it per call was churn).
        let hw = &self.hw;
        let session = self.sessions.get_mut(&app)?;
        let envelope_rv = cores_to_rv(&session.envelope, hw);
        let erv = match session.explorer.begin_target(&envelope_rv) {
            Some(t) => t,
            None => {
                // Candidate space within the envelope exhausted: run on the
                // full envelope until the next allocation round.
                full_envelope_erv(&session.envelope, hw)
            }
        };
        session.active_erv = Some(erv.clone());
        Some(directive_for(app, &erv, &session.envelope, hw))
    }

    /// Runs one allocation round (paper §4.2 + §5.3 integration): MMKP over
    /// the Pareto-optimal operating points of every application, leftover
    /// cores to exploring applications, exploration targets within the
    /// envelopes.
    fn reallocate(&mut self) -> Result<RmOutput> {
        let mut sp = harp_obs::span(harp_obs::Subsystem::Rm, "reallocate");
        let avail = self.availability();
        // Only a degraded platform takes the masked path, so the healthy
        // solve stays bit-identical to the pre-fault code.
        let degraded_hw = !avail.is_full();
        let eff_capacity = avail.capacity(&self.hw);
        let hw = &self.hw;
        let mut out = RmOutput {
            directives: Vec::new(),
            solves: 1,
            solve_work: 0.0, // set from the allocation below
            degraded: false,
            energy: None,
        };
        let mut ids: Vec<AppId> = self.sessions.keys().copied().collect();
        ids.sort();

        // 1. Allocation requests from sessions with usable tables.
        let mut requests = Vec::new();
        for &app in &ids {
            let s = &self.sessions[&app];
            let table = s.explorer.table();
            if table.max_utility() <= 0.0 {
                continue;
            }
            let v_max = table.max_utility();
            let options: Vec<AllocOption> = s
                .explorer
                .pareto_options()
                .into_iter()
                .filter(|(_, erv, _)| !erv.is_zero())
                // Under shrunk capacity, drop options that no longer fit
                // the usable cores; an app left with no options falls
                // through to the co-allocated whole-available-machine
                // envelope below instead of failing the solve.
                .filter(|(_, erv, _)| {
                    !degraded_hw || erv.resource_vector().fits_within(&eff_capacity)
                })
                .map(|(op, erv, nfc)| AllocOption {
                    op,
                    // Priority-weighted: scaling a session's costs up
                    // amplifies the penalty of moving it off its preferred
                    // point, so λ-pressure under contention downgrades
                    // low-weight sessions first. Weight 1.0 multiplies out
                    // exactly (bit-identical to the unweighted cost).
                    cost: energy_utility_cost(nfc.utility, nfc.power, v_max) * s.priority,
                    erv,
                })
                .collect();
            if !options.is_empty() {
                requests.push(AllocRequest { app, options });
            }
        }

        let opts = SolveOpts {
            deadline: self.solve_deadline(),
            threads: self.cfg.solver_threads,
            ..SolveOpts::default()
        };
        let avail_opt = degraded_hw.then_some(&avail);
        let allocation = match allocate_avail(
            &requests,
            hw,
            avail_opt,
            self.cfg.solver,
            &mut self.warm,
            opts,
        ) {
            Ok(a) => a,
            Err(HarpError::DeadlineExceeded { .. }) => {
                drop(sp);
                return self.degraded_fallback(&ids);
            }
            Err(e) => return Err(e),
        };
        self.pending_resolve = false;
        out.solve_work = allocation.solve_work;
        let co = allocation.co_allocated;
        if sp.is_active() {
            sp.set_field("requests", requests.len());
            sp.set_field("co_allocated", co);
            sp.set_field("solve_work", allocation.solve_work);
        }

        // 2. Used cores and leftovers.
        let mut used: Vec<bool> = vec![false; hw.num_cores()];
        if !co {
            for c in allocation.choices.values() {
                for core in &c.cores {
                    used[core.0] = true;
                }
            }
        }
        let leftovers: Vec<CoreId> = (0..hw.num_cores())
            .map(CoreId)
            .filter(|c| !used[c.0] && !co && avail.is_available(*c))
            .collect();

        // 3. Exploring sessions share the leftovers evenly (round-robin per
        //    kind keeps the shares heterogeneous).
        let exploring: Vec<AppId> = ids
            .iter()
            .copied()
            .filter(|app| {
                let s = &self.sessions[app];
                !self.cfg.offline && s.explorer.stage() != Stage::Stable
            })
            .collect();
        let mut extra: HashMap<AppId, Vec<CoreId>> = HashMap::new();
        if !exploring.is_empty() {
            for (i, core) in leftovers.iter().enumerate() {
                extra
                    .entry(exploring[i % exploring.len()])
                    .or_default()
                    .push(*core);
            }
        }

        // 4. Build envelopes and activations.
        for &app in &ids {
            let choice = allocation.choices.get(&app);
            let mut envelope: Vec<CoreId> = choice.map(|c| c.cores.clone()).unwrap_or_default();
            if let Some(more) = extra.get(&app) {
                envelope.extend(more.iter().copied());
            }
            let session_co = if envelope.is_empty() {
                // Nothing at all for this app (e.g. empty table and no
                // leftovers): co-allocate it onto the whole usable machine.
                envelope = avail.available_cores();
                true
            } else {
                co
            };
            envelope.sort();
            let is_exploring = exploring.contains(&app);
            let session = self.sessions.get_mut(&app).expect("session exists");
            session.envelope = envelope.clone();
            session.co_allocated = session_co;
            session.samples_since_realloc = 0;

            let erv = if is_exploring && !session_co {
                let envelope_rv = cores_to_rv(&envelope, hw);
                match session.explorer.begin_target(&envelope_rv) {
                    Some(t) => t,
                    None => full_envelope_erv(&envelope, hw),
                }
            } else if let Some(c) = choice {
                c.erv.clone()
            } else {
                full_envelope_erv(&envelope, hw)
            };
            session.active_erv = Some(erv.clone());
            out.directives.push(directive_for(app, &erv, &envelope, hw));
        }
        Ok(out)
    }

    /// The per-round solver budget from the configuration (whichever axis
    /// exhausts first wins; both zero = unbounded).
    fn solve_deadline(&self) -> SolveDeadline {
        match (self.cfg.solve_deadline_iters, self.cfg.solve_deadline_us) {
            (0, 0) => SolveDeadline::UNBOUNDED,
            (it, 0) => SolveDeadline::iterations(it),
            (0, us) => SolveDeadline::within(std::time::Duration::from_micros(us)),
            (it, us) => {
                SolveDeadline::within(std::time::Duration::from_micros(us)).and_iterations(it)
            }
        }
    }

    /// The solver overran its deadline: keep the previous feasible
    /// allocation applied (sessions, envelopes and directives untouched),
    /// hand any application that never received an activation the whole
    /// machine co-allocated, and schedule a full re-solve for the next
    /// tick. The round is marked degraded for the frontend and the
    /// `rm.degraded_ticks` metric.
    fn degraded_fallback(&mut self, ids: &[AppId]) -> Result<RmOutput> {
        self.pending_resolve = true;
        self.degraded_ticks += 1;
        harp_obs::metrics::counter("rm.degraded_ticks").inc();
        if harp_obs::enabled() {
            harp_obs::instant(harp_obs::Subsystem::Rm, "degraded_tick").field("apps", ids.len());
        }
        // The overrun burned up to the configured iteration budget of
        // solver time; charge that fraction of the reference schedule.
        let work = if self.cfg.solve_deadline_iters > 0 {
            (self.cfg.solve_deadline_iters as f64 / REFERENCE_ITERS as f64).min(1.0)
        } else {
            1.0
        };
        let mut out = RmOutput {
            directives: Vec::new(),
            solves: 1,
            solve_work: work,
            degraded: true,
            energy: None,
        };
        let hw = &self.hw;
        for &app in ids {
            if self.last_directives.contains_key(&app) {
                // The previous activation stays applied; nothing to send.
                continue;
            }
            // A new arrival with no prior activation must not be left
            // hanging until the re-solve: the whole usable machine,
            // co-allocated.
            let envelope: Vec<CoreId> = self.availability().available_cores();
            let session = self.sessions.get_mut(&app).expect("session exists");
            session.envelope = envelope.clone();
            session.co_allocated = true;
            session.samples_since_realloc = 0;
            let erv = full_envelope_erv(&envelope, hw);
            session.active_erv = Some(erv.clone());
            out.directives.push(directive_for(app, &erv, &envelope, hw));
        }
        Ok(out)
    }

    /// Appends a record to the attached journal, compacting when due. A
    /// journal write failure detaches the journal (availability over
    /// durability) and is surfaced via the `rm.journal_errors` counter.
    fn journal_append(&mut self, rec: JournalRecord) {
        let Some(j) = self.journal.as_mut() else {
            return;
        };
        if j.append(&rec).is_err() {
            harp_obs::metrics::counter("rm.journal_errors").inc();
            self.journal = None;
            return;
        }
        self.ops_since_compact += 1;
        if self.compact_every > 0 && self.ops_since_compact >= self.compact_every {
            self.compact_now();
        }
    }

    /// Rewrites the journal as one snapshot of the durable state.
    pub fn compact_now(&mut self) {
        let snap = JournalRecord::Snapshot(self.snapshot());
        if let Some(j) = self.journal.as_mut() {
            if j.rewrite(std::slice::from_ref(&snap)).is_err() {
                harp_obs::metrics::counter("rm.journal_errors").inc();
            } else {
                harp_obs::metrics::counter("rm.journal_compactions").inc();
            }
        }
        self.ops_since_compact = 0;
    }

    /// Captures the durable state: stored profiles, live sessions with
    /// their measured points and resume tokens, and the id/tick counters.
    pub fn snapshot(&self) -> Snapshot {
        let mut profiles: Vec<(String, Vec<JournalPoint>)> = self
            .profiles
            .iter()
            .map(|(name, table)| (name.clone(), encode_table(table)))
            .collect();
        profiles.sort_by(|a, b| a.0.cmp(&b.0));
        let mut sessions: Vec<SnapshotSession> = self
            .sessions
            .iter()
            .map(|(app, s)| SnapshotSession {
                app: app.0,
                name: s.name.clone(),
                provides_utility: s.provides_utility,
                resume_token: s.resume_token,
                priority_bits: s.priority.to_bits(),
                points: encode_table(s.explorer.table()),
            })
            .collect();
        sessions.sort_by_key(|s| s.app);
        let healthy = self.faults.is_default()
            && self.migrations == 0
            && self.health.iter().all(|h| *h == CoreHealth::default());
        let faults = if healthy {
            // A healthy platform snapshots to the same bytes as before the
            // fault layer existed.
            SnapshotFaults::default()
        } else {
            SnapshotFaults {
                online: (0..self.hw.num_cores())
                    .map(|i| u64::from(self.faults.is_online(CoreId(i))))
                    .collect(),
                fails: self.health.iter().map(|h| u64::from(h.fails)).collect(),
                quarantined_until: self.health.iter().map(|h| h.quarantined_until).collect(),
                last_change_tick: self.health.iter().map(|h| h.last_change_tick).collect(),
                caps: (0..self.hw.num_kinds())
                    .map(|c| u64::from(self.faults.cap_permille(c)))
                    .collect(),
                sensor_drop_ticks: self.faults.sensor_drop_ticks(),
                faults_injected: self.faults.faults_injected(),
                migrations: self.migrations,
            }
        };
        Snapshot {
            profiles,
            sessions,
            max_app_seen: self.max_app_seen,
            ticks: self.ticks,
            faults,
        }
    }

    /// Replays one journal record through the real entry points.
    fn apply_record(&mut self, rec: &JournalRecord) -> Result<()> {
        match rec {
            JournalRecord::Register {
                app,
                name,
                provides_utility,
                resume_token,
            } => {
                self.register_resumable(AppId(*app), name, *provides_utility, *resume_token)?;
            }
            JournalRecord::SubmitPoints { app, points } => {
                let shape = self.hw.erv_shape();
                self.submit_points(AppId(*app), decode_points(&shape, points)?)?;
            }
            JournalRecord::Deregister { app } => {
                self.deregister(AppId(*app))?;
            }
            JournalRecord::Tick {
                dt_bits,
                package_energy_bits,
                apps,
            } => {
                let obs = TickObservations {
                    dt_s: f64::from_bits(*dt_bits),
                    package_energy_j: f64::from_bits(*package_energy_bits),
                    apps: apps
                        .iter()
                        .map(|a| AppObservation {
                            app: AppId(a.app),
                            utility_rate: f64::from_bits(a.utility_rate_bits),
                            cpu_time: a.cpu_time_bits.iter().map(|b| f64::from_bits(*b)).collect(),
                        })
                        .collect(),
                };
                self.tick(&obs)?;
            }
            JournalRecord::SetPriority { app, weight_bits } => {
                self.set_priority(AppId(*app), f64::from_bits(*weight_bits))?;
            }
            JournalRecord::Fault { kind, a, b } => {
                let ev = FaultEvent::decode_words(*kind, *a, *b).ok_or_else(|| {
                    HarpError::other(format!("journal fault record with unknown kind {kind}"))
                })?;
                self.inject_fault(&ev)?;
            }
            JournalRecord::EpochBump { .. } => {} // daemon-level, not RM state
            JournalRecord::Snapshot(s) => self.apply_snapshot(s)?,
        }
        Ok(())
    }

    /// Restores durable state from a snapshot through the real register /
    /// submit paths (so allocation, warm-start and exploration state are
    /// re-derived consistently).
    fn apply_snapshot(&mut self, s: &Snapshot) -> Result<()> {
        // Degraded-hardware state first, so the reallocations triggered by
        // the session re-registrations below already see the restored
        // topology and quarantine set.
        if !s.faults.is_default() {
            let n = self.hw.num_cores();
            for (i, &on) in s.faults.online.iter().enumerate().take(n) {
                self.faults.set_online(CoreId(i), on != 0);
            }
            for (i, h) in self.health.iter_mut().enumerate() {
                *h = CoreHealth {
                    fails: s.faults.fails.get(i).map_or(0, |&f| f as u32),
                    quarantined_until: s.faults.quarantined_until.get(i).copied().unwrap_or(0),
                    last_change_tick: s.faults.last_change_tick.get(i).copied().unwrap_or(0),
                };
            }
            for (c, &cap) in s.faults.caps.iter().enumerate().take(self.hw.num_kinds()) {
                self.faults.set_cap_permille(c, cap as u32);
            }
            self.faults
                .set_sensor_drop_ticks(s.faults.sensor_drop_ticks);
            self.faults.set_faults_injected(s.faults.faults_injected);
            self.migrations = s.faults.migrations;
            self.publish_fault_gauges();
        }
        let shape = self.hw.erv_shape();
        for (name, points) in &s.profiles {
            self.profiles.insert(
                name.clone(),
                table_from_points(decode_points(&shape, points)?),
            );
        }
        for sess in &s.sessions {
            self.register_resumable(
                AppId(sess.app),
                &sess.name,
                sess.provides_utility,
                sess.resume_token,
            )?;
            // Restore the weight directly (no extra allocation round): the
            // submit below — or the first post-recovery round — re-derives
            // the allocation with the restored weight in effect.
            let weight = f64::from_bits(sess.priority_bits);
            if let Some(live) = self.sessions.get_mut(&AppId(sess.app)) {
                live.priority = if weight.is_finite() && weight > 0.0 {
                    weight
                } else {
                    1.0
                };
            }
            if !sess.points.is_empty() {
                self.submit_points(AppId(sess.app), decode_points(&shape, &sess.points)?)?;
            }
        }
        self.max_app_seen = self.max_app_seen.max(s.max_app_seen);
        self.ticks = self.ticks.max(s.ticks);
        Ok(())
    }

    /// Remembers the last directive emitted per app (resume replay).
    fn note_output(&mut self, out: &RmOutput) {
        for d in &out.directives {
            self.last_directives.insert(d.app, d.clone());
        }
    }

    /// A deterministic, human-diffable digest of the full RM state. Two
    /// cores that processed the same op sequence — e.g. a live core and its
    /// journal-recovered twin — produce identical fingerprints; any state
    /// divergence (sessions, measured points, envelopes, energy accounting,
    /// solver counters) shows up as a differing line.
    pub fn state_fingerprint(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "ticks={} energy_bits={:016x} max_app={}",
            self.ticks,
            self.last_package_energy.to_bits(),
            self.max_app_seen
        );
        let _ = writeln!(
            s,
            "warm memo_hits={} certified={} full={}",
            self.warm.memo_hits(),
            self.warm.certified_exits(),
            self.warm.full_solves()
        );
        let _ = writeln!(
            s,
            "ledger total_uj={} idle_uj={} retired_uj={}",
            self.ledger.total_uj(),
            self.ledger.idle_uj(),
            self.ledger.retired_uj()
        );
        let mut apps: Vec<AppId> = self.sessions.keys().copied().collect();
        apps.sort();
        for app in apps {
            let sess = &self.sessions[&app];
            let _ = writeln!(
                s,
                "session {} name={} provides={} token={} prio={:016x} stage={:?} co={} \
                 since_realloc={}",
                app.0,
                sess.name,
                sess.provides_utility,
                sess.resume_token,
                sess.priority.to_bits(),
                self.session_stage(sess),
                sess.co_allocated,
                sess.samples_since_realloc
            );
            let _ = writeln!(
                s,
                "  envelope={:?} power_bits={:016x} energy_uj={}",
                sess.envelope.iter().map(|c| c.0).collect::<Vec<_>>(),
                self.attributor.last_power(app).to_bits(),
                self.ledger.session_uj(app)
            );
            let _ = writeln!(
                s,
                "  active_erv={:?}",
                sess.active_erv.as_ref().map(|e| e.flat())
            );
            let _ = writeln!(
                s,
                "  cpu_bits={:?}",
                self.last_cpu
                    .get(&app)
                    .map(|v| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>())
            );
            for p in encode_table(sess.explorer.table()) {
                let _ = writeln!(
                    s,
                    "  point erv={:?} u={:016x} p={:016x}",
                    p.erv_flat, p.utility_bits, p.power_bits
                );
            }
            if let Some(d) = self.last_directives.get(&app) {
                let _ = writeln!(
                    s,
                    "  directive erv={:?} cores={:?} threads={:?} par={}",
                    d.erv.flat(),
                    d.cores.iter().map(|c| c.0).collect::<Vec<_>>(),
                    d.hw_threads.iter().map(|t| t.0).collect::<Vec<_>>(),
                    d.parallelism
                );
            }
        }
        let mut names: Vec<&String> = self.profiles.keys().collect();
        names.sort();
        for name in names {
            let _ = writeln!(s, "profile {name}");
            for p in encode_table(&self.profiles[name]) {
                let _ = writeln!(
                    s,
                    "  point erv={:?} u={:016x} p={:016x}",
                    p.erv_flat, p.utility_bits, p.power_bits
                );
            }
        }
        // Degradation lines appear only once a fault has been seen, so a
        // healthy RM fingerprints to the exact pre-fault-layer string.
        let fault_active = !self.faults.is_default()
            || self.migrations != 0
            || self.health.iter().any(|h| *h != CoreHealth::default());
        if fault_active {
            let _ = writeln!(
                s,
                "faults injected={} sensor_drop={} migrations={}",
                self.faults.faults_injected(),
                self.faults.sensor_drop_ticks(),
                self.migrations
            );
            for (i, h) in self.health.iter().enumerate() {
                let online = self.faults.is_online(CoreId(i));
                if !online || *h != CoreHealth::default() {
                    let _ = writeln!(
                        s,
                        "  core {i} online={online} fails={} quarantined_until={} changed={}",
                        h.fails, h.quarantined_until, h.last_change_tick
                    );
                }
            }
            for c in 0..self.hw.num_kinds() {
                let cap = self.faults.cap_permille(c);
                if cap != CAP_NOMINAL_PERMILLE {
                    let _ = writeln!(s, "  cap {c} permille={cap}");
                }
            }
        }
        s
    }
}

/// A point in journal form.
fn encode_point((erv, nfc): &(ExtResourceVector, NonFunctional)) -> JournalPoint {
    JournalPoint {
        erv_flat: erv.flat(),
        utility_bits: nfc.utility.to_bits(),
        power_bits: nfc.power.to_bits(),
    }
}

/// The measured points of a table, in journal form.
fn encode_table(table: &OperatingPointTable) -> Vec<JournalPoint> {
    table
        .iter_measured()
        .map(|(_, p)| {
            encode_point(&(p.erv.clone(), p.nfc)) // reuse the single-point encoding
        })
        .collect()
}

/// Journal points back to typed points against the machine shape.
fn decode_points(
    shape: &ErvShape,
    points: &[JournalPoint],
) -> Result<Vec<(ExtResourceVector, NonFunctional)>> {
    points
        .iter()
        .map(|p| {
            let erv = ExtResourceVector::from_flat(shape, &p.erv_flat)?;
            Ok((
                erv,
                NonFunctional::new(f64::from_bits(p.utility_bits), f64::from_bits(p.power_bits)),
            ))
        })
        .collect()
}

/// Per-kind core counts of a concrete core list.
fn cores_to_rv(cores: &[CoreId], hw: &HardwareDescription) -> ResourceVector {
    let mut counts = vec![0u32; hw.num_kinds()];
    for &c in cores {
        if let Ok(kind) = hw.kind_of_core(c) {
            counts[kind.0] += 1;
        }
    }
    ResourceVector::new(counts)
}

/// The full-SMT extended resource vector over a concrete core list.
fn full_envelope_erv(cores: &[CoreId], hw: &HardwareDescription) -> ExtResourceVector {
    let shape = hw.erv_shape();
    let rv = cores_to_rv(cores, hw);
    ExtResourceVector::full_smt(&shape, rv.counts()).expect("envelope matches shape")
}

/// Builds the activation for `erv` using cores from the session envelope.
fn directive_for(
    app: AppId,
    erv: &ExtResourceVector,
    envelope: &[CoreId],
    hw: &HardwareDescription,
) -> Directive {
    // Pick the demanded number of cores of each kind from the envelope.
    let mut cores = Vec::new();
    for kind in 0..hw.num_kinds() {
        let needed = erv.cores_of_kind(kind) as usize;
        let of_kind = envelope
            .iter()
            .copied()
            .filter(|c| hw.kind_of_core(*c).map(|k| k.0) == Ok(kind));
        cores.extend(of_kind.take(needed));
    }
    cores.sort();
    let hw_threads = hw_threads_for(erv, &cores, hw).unwrap_or_default();
    if harp_obs::enabled() {
        // Every activation the RM emits flows through here — both
        // allocation rounds and per-app exploration retargets.
        harp_obs::instant(harp_obs::Subsystem::Rm, "directive")
            .field("app", app.0)
            .field("parallelism", erv.total_threads())
            .field("cores", cores.len());
    }
    Directive {
        app,
        erv: erv.clone(),
        parallelism: erv.total_threads(),
        cores,
        hw_threads,
    }
}

/// Stable telemetry name of an exploration stage.
fn stage_name(stage: Stage) -> &'static str {
    match stage {
        Stage::Initial => "initial",
        Stage::Refinement => "refinement",
        Stage::Stable => "stable",
    }
}

trait ExplorerExt {
    fn into_table(self) -> OperatingPointTable;
}

impl ExplorerExt for Explorer {
    fn into_table(self) -> OperatingPointTable {
        // Persist only measured points; predictions are recomputed.
        self.table()
            .iter_measured()
            .map(|(_, p)| harp_types::OperatingPoint::new(p.erv.clone(), p.nfc))
            .collect()
    }
}

// Re-exported for frontends that need to seed tables directly.
#[doc(hidden)]
pub fn table_from_points(points: Vec<(ExtResourceVector, NonFunctional)>) -> OperatingPointTable {
    points
        .into_iter()
        .map(|(erv, nfc)| harp_types::OperatingPoint::new(erv, nfc))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_platform::presets;

    fn rm() -> RmCore {
        RmCore::new(presets::raptor_lake(), RmConfig::default())
    }

    #[test]
    fn fresh_app_gets_whole_machine_envelope() {
        let mut rm = rm();
        let out = rm.register(AppId(1), "ep", false).unwrap();
        assert_eq!(out.directives.len(), 1);
        let d = &out.directives[0];
        assert_eq!(d.app, AppId(1));
        assert!(!d.cores.is_empty());
        assert_eq!(rm.stage_of(AppId(1)), Some(Stage::Initial));
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let mut rm = rm();
        rm.register(AppId(1), "ep", false).unwrap();
        assert!(rm.register(AppId(1), "ep", false).is_err());
    }

    #[test]
    fn two_exploring_apps_get_disjoint_envelopes() {
        let mut rm = rm();
        rm.register(AppId(1), "a", false).unwrap();
        let out = rm.register(AppId(2), "b", false).unwrap();
        assert_eq!(out.directives.len(), 2);
        let d1 = out.directives.iter().find(|d| d.app == AppId(1)).unwrap();
        let d2 = out.directives.iter().find(|d| d.app == AppId(2)).unwrap();
        let overlap = d1.cores.iter().any(|c| d2.cores.contains(c));
        assert!(!overlap, "exploration envelopes must not overlap");
    }

    #[test]
    fn ticks_drive_campaigns_to_completion() {
        let mut rm = rm();
        rm.register(AppId(1), "app", false).unwrap();
        let per_point = rm.config().exploration.measurements_per_point as usize;
        // Drive enough ticks for several campaigns.
        let mut directives_seen = 0;
        for i in 0..(per_point * 3 + 1) {
            let obs = TickObservations {
                dt_s: 0.05,
                package_energy_j: (i as f64 + 1.0) * 1.0,
                apps: vec![AppObservation {
                    app: AppId(1),
                    utility_rate: 1.0e9,
                    cpu_time: vec![0.05 * (i + 1) as f64, 0.0],
                }],
            };
            let out = rm.tick(&obs).unwrap();
            directives_seen += out.directives.len();
        }
        // At least two new targets were activated.
        assert!(directives_seen >= 2, "saw {directives_seen} directives");
        let table = rm.sessions[&AppId(1)].explorer.table();
        assert!(table.measured_count() >= 3);
    }

    #[test]
    fn ticks_surface_a_conserving_energy_ledger() {
        let mut rm = rm();
        rm.register(AppId(1), "a", false).unwrap();
        rm.register(AppId(2), "b", false).unwrap();
        let mut attributed = 0u64;
        for i in 0..40u64 {
            let t = (i + 1) as f64;
            let obs = TickObservations {
                dt_s: 0.05,
                package_energy_j: t * 1.37,
                apps: vec![
                    AppObservation {
                        app: AppId(1),
                        utility_rate: 1.0e9,
                        cpu_time: vec![0.05 * t, 0.0],
                    },
                    AppObservation {
                        app: AppId(2),
                        utility_rate: 2.0e9,
                        cpu_time: vec![0.0, 0.03 * t],
                    },
                ],
            };
            let out = rm.tick(&obs).unwrap();
            let energy = out.energy.expect("ticks carry the ledger");
            // Exact per-tick conservation: sessions + idle == tick total.
            let session_sum: u64 = energy.entries.iter().map(|e| e.tick_uj).sum();
            assert_eq!(energy.tick_uj, session_sum + energy.idle_tick_uj);
            assert_eq!(energy.entries.len(), 2);
            attributed += session_sum;
        }
        assert!(attributed > 0, "busy ticks attribute energy");
        assert_eq!(rm.ledger().conservation_error(), 0);
        // ~40 × 1.37 J accounted in µJ (the first tick's delta is 1.37 J).
        assert_eq!(rm.ledger().total_uj(), 54_800_000);
        // Register/deregister rounds carry no ledger tick.
        assert!(rm.register(AppId(3), "c", false).unwrap().energy.is_none());
        let before = rm.ledger().session_uj(AppId(1));
        assert!(before > 0);
        let out = rm.deregister(AppId(1)).unwrap();
        assert!(out.energy.is_none());
        assert_eq!(rm.ledger().retired_uj(), before);
        assert_eq!(rm.ledger().conservation_error(), 0);
        // The fingerprint pins the ledger state.
        let fp = rm.state_fingerprint();
        assert!(fp.contains(&format!("retired_uj={before}")), "{fp}");
        assert!(fp.contains("ledger total_uj=54800000"), "{fp}");
    }

    #[test]
    fn profile_persists_across_runs() {
        let mut rm = rm();
        rm.register(AppId(1), "app", false).unwrap();
        for i in 0..60 {
            let obs = TickObservations {
                dt_s: 0.05,
                package_energy_j: (i as f64 + 1.0) * 1.5,
                apps: vec![AppObservation {
                    app: AppId(1),
                    utility_rate: 2.0e9,
                    cpu_time: vec![0.05 * (i + 1) as f64, 0.0],
                }],
            };
            rm.tick(&obs).unwrap();
        }
        rm.deregister(AppId(1)).unwrap();
        let profile_points = rm.profile("app").unwrap().measured_count();
        assert!(profile_points >= 2);
        // A new run of the same app resumes from the stored profile.
        rm.register(AppId(7), "app", false).unwrap();
        let resumed = rm.sessions[&AppId(7)].explorer.table().measured_count();
        assert_eq!(resumed, profile_points);
    }

    #[test]
    fn offline_mode_uses_profiles_without_exploring() {
        let hw = presets::raptor_lake();
        let shape = hw.erv_shape();
        let cfg = RmConfig {
            offline: true,
            ..Default::default()
        };
        let mut rm = RmCore::new(hw, cfg);
        let points = vec![
            (
                ExtResourceVector::from_flat(&shape, &[0, 4, 0]).unwrap(),
                NonFunctional::new(10.0, 30.0),
            ),
            (
                ExtResourceVector::from_flat(&shape, &[0, 0, 8]).unwrap(),
                NonFunctional::new(8.0, 10.0),
            ),
        ];
        rm.load_profile("mg", table_from_points(points));
        let out = rm.register(AppId(1), "mg", false).unwrap();
        assert_eq!(out.directives.len(), 1);
        let d = &out.directives[0];
        // The cheap E-core point wins on energy-utility cost:
        // P: (30/(10/10))·(1/1)=30; E: (10/0.8)·(1/0.8)=15.6.
        assert_eq!(d.erv.cores_of_kind(1), 8);
        assert_eq!(rm.stage_of(AppId(1)), Some(Stage::Stable));
        // Offline mode never starts campaigns.
        let obs = TickObservations {
            dt_s: 0.05,
            package_energy_j: 1.0,
            apps: vec![AppObservation {
                app: AppId(1),
                utility_rate: 8.0,
                cpu_time: vec![0.0, 0.4],
            }],
        };
        let out = rm.tick(&obs).unwrap();
        assert!(out.directives.is_empty());
    }

    #[test]
    fn deregistration_rebalances_remaining_apps() {
        let mut rm = rm();
        rm.register(AppId(1), "a", false).unwrap();
        rm.register(AppId(2), "b", false).unwrap();
        let out = rm.deregister(AppId(1)).unwrap();
        // The survivor is re-activated with a larger envelope.
        assert_eq!(out.directives.len(), 1);
        assert_eq!(out.directives[0].app, AppId(2));
        assert_eq!(rm.managed_apps(), vec![AppId(2)]);
        // Removing the last app yields no directives.
        let out = rm.deregister(AppId(2)).unwrap();
        assert!(out.directives.is_empty());
    }

    #[test]
    fn out_of_order_lifecycle_is_rejected_without_state_damage() {
        let mut rm = rm();
        // Deregistration of an app that never registered: clean error.
        assert!(rm.deregister(AppId(1)).is_err());
        rm.register(AppId(1), "a", false).unwrap();
        rm.register(AppId(2), "b", false).unwrap();
        rm.deregister(AppId(1)).unwrap();
        // Duplicate exit: rejected, the survivor keeps its resources.
        assert!(rm.deregister(AppId(1)).is_err());
        assert_eq!(rm.managed_apps(), vec![AppId(2)]);
    }

    #[test]
    fn malformed_point_submissions_are_rejected_atomically() {
        let hw = presets::raptor_lake();
        let shape = hw.erv_shape();
        let mut rm = RmCore::new(hw, RmConfig::default());
        rm.register(AppId(1), "a", false).unwrap();
        let good = ExtResourceVector::from_flat(&shape, &[0, 4, 0]).unwrap();
        // Wrong shape (single-kind, no-SMT vector on the Raptor Lake RM).
        let alien_shape = harp_types::ErvShape::new(vec![1]);
        let alien = ExtResourceVector::from_flat(&alien_shape, &[1]).unwrap();
        let r = rm.submit_points(
            AppId(1),
            vec![
                (good.clone(), NonFunctional::new(1.0, 1.0)),
                (alien, NonFunctional::new(1.0, 1.0)),
            ],
        );
        assert!(matches!(r, Err(HarpError::ShapeMismatch { .. })));
        // Non-finite characteristics.
        let r = rm.submit_points(
            AppId(1),
            vec![(good.clone(), NonFunctional::new(f64::NAN, 1.0))],
        );
        assert!(matches!(r, Err(HarpError::Numeric { .. })));
        let r = rm.submit_points(AppId(1), vec![(good, NonFunctional::new(1.0, -3.0))]);
        assert!(matches!(r, Err(HarpError::Numeric { .. })));
        // The rejected batches left no measured points behind.
        assert_eq!(
            rm.session_table(AppId(1)).map(|t| t.measured_count()),
            Some(0)
        );
    }

    #[test]
    fn unknown_app_ticks_are_ignored() {
        let mut rm = rm();
        let obs = TickObservations {
            dt_s: 0.05,
            package_energy_j: 1.0,
            apps: vec![AppObservation {
                app: AppId(99),
                utility_rate: 1.0,
                cpu_time: vec![0.0, 0.0],
            }],
        };
        let out = rm.tick(&obs).unwrap();
        assert!(out.directives.is_empty());
    }

    #[test]
    fn submit_points_triggers_profile_driven_allocation() {
        let hw = presets::raptor_lake();
        let shape = hw.erv_shape();
        let cfg = RmConfig {
            offline: true,
            ..Default::default()
        };
        let mut rm = RmCore::new(hw, cfg);
        rm.register(AppId(1), "late-points", false).unwrap();
        let out = rm
            .submit_points(
                AppId(1),
                vec![
                    (
                        ExtResourceVector::from_flat(&shape, &[0, 6, 0]).unwrap(),
                        NonFunctional::new(5.0e10, 70.0),
                    ),
                    (
                        ExtResourceVector::from_flat(&shape, &[0, 0, 12]).unwrap(),
                        NonFunctional::new(4.5e10, 35.0),
                    ),
                ],
            )
            .unwrap();
        let d = out.directives.iter().find(|d| d.app == AppId(1)).unwrap();
        // One of the submitted points was activated (both happen to grant
        // 12 hardware threads: 6 P-cores with SMT or 12 E-cores).
        assert_eq!(d.parallelism, 12);
        let is_p_point = d.erv.cores_of_kind(0) == 6 && d.erv.cores_of_kind(1) == 0;
        let is_e_point = d.erv.cores_of_kind(0) == 0 && d.erv.cores_of_kind(1) == 12;
        assert!(is_p_point || is_e_point, "unexpected activation {}", d.erv);
        assert!(rm.submit_points(AppId(9), vec![]).is_err());
    }

    #[test]
    fn many_apps_on_a_tiny_machine_co_allocate() {
        let hw = presets::tiny_test(); // 4 cores total
        let shape = hw.erv_shape();
        let cfg = RmConfig {
            offline: true,
            ..Default::default()
        };
        let mut rm = RmCore::new(hw, cfg);
        // Six apps each demanding at least 2 big cores: no disjoint fit.
        for i in 1..=6u64 {
            let name = format!("greedy{i}");
            rm.load_profile(
                &name,
                table_from_points(vec![(
                    ExtResourceVector::from_flat(&shape, &[0, 2, 0]).unwrap(),
                    NonFunctional::new(10.0, 4.0),
                )]),
            );
            let out = rm.register(AppId(i), &name, false).unwrap();
            // Every registered app receives a (possibly overlapping) grant.
            assert_eq!(out.directives.len() as u64, i);
            for d in &out.directives {
                assert!(!d.cores.is_empty(), "{} got nothing", d.app);
            }
        }
        // Monitoring is suspended for co-allocated sessions: ticks yield
        // no directives and must not panic.
        let obs = TickObservations {
            dt_s: 0.05,
            package_energy_j: 1.0,
            apps: (1..=6)
                .map(|i| AppObservation {
                    app: AppId(i),
                    utility_rate: 1.0,
                    cpu_time: vec![0.05, 0.0],
                })
                .collect(),
        };
        let out = rm.tick(&obs).unwrap();
        assert!(out.directives.is_empty());
    }

    #[test]
    fn warm_start_persists_between_allocation_rounds() {
        let hw = presets::raptor_lake();
        let shape = hw.erv_shape();
        let cfg = RmConfig {
            offline: true,
            ..Default::default()
        };
        let mut rm = RmCore::new(hw, cfg);
        for (i, name) in ["wa", "wb", "wc"].iter().enumerate() {
            rm.load_profile(
                *name,
                table_from_points(vec![
                    (
                        ExtResourceVector::from_flat(&shape, &[0, 2, 0]).unwrap(),
                        NonFunctional::new(10.0, 20.0 + i as f64),
                    ),
                    (
                        ExtResourceVector::from_flat(&shape, &[0, 0, 4]).unwrap(),
                        NonFunctional::new(8.0, 9.0 + i as f64),
                    ),
                ]),
            );
        }
        let mut total_work = 0.0;
        for (i, name) in ["wa", "wb", "wc"].iter().enumerate() {
            let out = rm.register(AppId(i as u64 + 1), name, false).unwrap();
            assert_eq!(out.solves, 1);
            total_work += out.solve_work;
        }
        // Departures re-solve against warm state too.
        let out = rm.deregister(AppId(3)).unwrap();
        total_work += out.solve_work;
        // Four allocation rounds over a slowly changing app set: the warm
        // solver must not have paid 4 full reference schedules.
        assert!(
            total_work < 4.0,
            "warm rounds should cost less than cold ones, got {total_work}"
        );
        let w = rm.warm_start();
        assert!(
            w.memo_hits() + w.certified_exits() + w.full_solves() >= 4,
            "warm state not threaded through reallocation"
        );
    }

    #[test]
    fn journal_recovery_is_bit_identical_including_future_behavior() {
        let dir = std::env::temp_dir().join(format!("harp-core-jrnl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("recover.jrnl");
        let _ = std::fs::remove_file(&path);

        let mut live = rm();
        live.attach_journal(JournalWriter::open(&path).unwrap(), 0);
        live.register_resumable(AppId(1), "a", false, 101).unwrap();
        live.register(AppId(2), "b", true).unwrap();
        for i in 0..40 {
            let obs = TickObservations {
                dt_s: 0.05,
                package_energy_j: (i as f64 + 1.0) * 1.3,
                apps: vec![
                    AppObservation {
                        app: AppId(1),
                        utility_rate: 1.0e9 + i as f64,
                        cpu_time: vec![0.05 * (i + 1) as f64, 0.0],
                    },
                    AppObservation {
                        app: AppId(2),
                        utility_rate: 2.0e9,
                        cpu_time: vec![0.0, 0.03 * (i + 1) as f64],
                    },
                ],
            };
            live.tick(&obs).unwrap();
        }
        live.deregister(AppId(2)).unwrap();

        let outcome = crate::journal::read_journal(&path).unwrap();
        assert!(!outcome.truncated);
        let mut recovered = RmCore::recover(
            presets::raptor_lake(),
            RmConfig::default(),
            &outcome.records,
        )
        .unwrap();
        assert_eq!(recovered.state_fingerprint(), live.state_fingerprint());
        assert_eq!(recovered.resolve_resume_token(101), Some(AppId(1)));
        assert_eq!(recovered.max_app_seen(), 2);

        // Future behavior equality: both cores answer the next ops
        // identically, proving hidden state (attributor, explorer, warm
        // start) recovered too.
        let obs = TickObservations {
            dt_s: 0.05,
            package_energy_j: 60.0,
            apps: vec![AppObservation {
                app: AppId(1),
                utility_rate: 1.5e9,
                cpu_time: vec![2.1, 0.0],
            }],
        };
        let a = live.tick(&obs).unwrap();
        let b = recovered.tick(&obs).unwrap();
        assert_eq!(a.directives, b.directives);
        assert_eq!(live.state_fingerprint(), recovered.state_fingerprint());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recovery_from_corrupted_tail_drops_only_the_tail() {
        let dir = std::env::temp_dir().join(format!("harp-core-tail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tail.jrnl");
        let _ = std::fs::remove_file(&path);

        let mut live = rm();
        live.attach_journal(JournalWriter::open(&path).unwrap(), 0);
        live.register(AppId(1), "a", false).unwrap();
        live.register(AppId(2), "b", false).unwrap();
        live.detach_journal();

        // Corrupt the last byte (inside the final record body).
        let mut bytes = std::fs::read(&path).unwrap();
        *bytes.last_mut().unwrap() ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let outcome = crate::journal::read_journal(&path).unwrap();
        assert!(outcome.truncated);
        assert_eq!(outcome.records.len(), 1);
        let recovered = RmCore::recover(
            presets::raptor_lake(),
            RmConfig::default(),
            &outcome.records,
        )
        .unwrap();
        // Only the first registration survived — matching a core that never
        // saw the second.
        let mut reference = rm();
        reference.register(AppId(1), "a", false).unwrap();
        assert_eq!(recovered.state_fingerprint(), reference.state_fingerprint());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compacted_journal_restores_durable_state() {
        let dir = std::env::temp_dir().join(format!("harp-core-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.jrnl");
        let _ = std::fs::remove_file(&path);

        let hw = presets::raptor_lake();
        let shape = hw.erv_shape();
        let cfg = RmConfig {
            offline: true,
            ..Default::default()
        };
        let mut live = RmCore::new(hw, cfg.clone());
        live.attach_journal(JournalWriter::open(&path).unwrap(), 0);
        live.register_resumable(AppId(1), "snap-app", false, 77)
            .unwrap();
        live.submit_points(
            AppId(1),
            vec![
                (
                    ExtResourceVector::from_flat(&shape, &[0, 4, 0]).unwrap(),
                    NonFunctional::new(10.0, 30.0),
                ),
                (
                    ExtResourceVector::from_flat(&shape, &[0, 0, 8]).unwrap(),
                    NonFunctional::new(8.0, 10.0),
                ),
            ],
        )
        .unwrap();
        live.compact_now();

        let outcome = crate::journal::read_journal(&path).unwrap();
        assert!(!outcome.truncated);
        assert!(outcome
            .records
            .iter()
            .any(|r| matches!(r, JournalRecord::Snapshot(_))));
        let recovered = RmCore::recover(presets::raptor_lake(), cfg, &outcome.records).unwrap();
        assert_eq!(recovered.managed_apps(), vec![AppId(1)]);
        assert_eq!(recovered.resolve_resume_token(77), Some(AppId(1)));
        assert_eq!(
            recovered
                .session_table(AppId(1))
                .map(|t| t.measured_count()),
            live.session_table(AppId(1)).map(|t| t.measured_count())
        );
        // The re-derived allocation matches: same directive for the session.
        assert_eq!(
            recovered.last_directive(AppId(1)),
            live.last_directive(AppId(1))
        );
        std::fs::remove_file(&path).unwrap();
    }

    /// An offline RM whose two profiled apps compete for P cores: each
    /// app's cost-optimal point wants 6 of the 8 P cores, so the two-app
    /// instance is congested and needs subgradient work beyond the first
    /// iteration — a tight budget overruns deterministically.
    fn congested_offline_rm(solve_deadline_iters: u32) -> RmCore {
        let hw = presets::raptor_lake();
        let shape = hw.erv_shape();
        let cfg = RmConfig {
            offline: true,
            solve_deadline_iters,
            ..Default::default()
        };
        let mut rm = RmCore::new(hw, cfg);
        let points = || {
            vec![
                (
                    ExtResourceVector::from_flat(&shape, &[0, 6, 0]).unwrap(),
                    NonFunctional::new(10.0, 50.0),
                ),
                (
                    ExtResourceVector::from_flat(&shape, &[0, 0, 4]).unwrap(),
                    NonFunctional::new(4.0, 40.0),
                ),
            ]
        };
        rm.load_profile("a", table_from_points(points()));
        rm.load_profile("b", table_from_points(points()));
        rm
    }

    fn empty_obs() -> TickObservations {
        TickObservations {
            dt_s: 0.05,
            package_energy_j: 1.0,
            apps: Vec::new(),
        }
    }

    #[test]
    fn deadline_overrun_keeps_previous_allocation() {
        let mut rm = congested_offline_rm(1);
        // App 1 alone certifies within the budget and gets its 6-P-core
        // optimum applied.
        let out = rm.register(AppId(1), "a", false).unwrap();
        assert!(!out.degraded);
        let d1 = rm.last_directive(AppId(1)).unwrap().clone();
        assert_eq!(d1.erv.cores_of_kind(0), 6);

        // App 2 arrives: the congested two-app solve overruns the 1-iter
        // budget. App 1's allocation must stay applied untouched and the
        // newcomer gets the whole machine co-allocated instead of nothing.
        let out = rm.register(AppId(2), "b", false).unwrap();
        assert!(out.degraded);
        assert_eq!(rm.degraded_ticks(), 1);
        assert_eq!(rm.last_directive(AppId(1)).unwrap(), &d1);
        assert_eq!(out.directives.len(), 1);
        let d2 = &out.directives[0];
        assert_eq!(d2.app, AppId(2));
        assert_eq!(d2.cores.len(), presets::raptor_lake().num_cores());

        // Every session still holds a feasible envelope and activation.
        for app in rm.managed_apps() {
            let s = &rm.sessions[&app];
            assert!(!s.envelope.is_empty(), "{app} left without an envelope");
            assert!(s.active_erv.is_some(), "{app} left without an activation");
        }

        // The overrun is retried every tick while the congestion persists.
        let out = rm.tick(&empty_obs()).unwrap();
        assert!(out.degraded);
        assert_eq!(out.solves, 1);
        assert_eq!(rm.degraded_ticks(), 2);

        // Once the instance shrinks back to one app the re-solve succeeds
        // and the pending flag clears: the next tick is solve-free.
        let out = rm.deregister(AppId(2)).unwrap();
        assert!(!out.degraded);
        let out = rm.tick(&empty_obs()).unwrap();
        assert_eq!(out.solves, 0);
        assert!(!out.degraded);
    }

    #[test]
    fn generous_deadline_matches_unbounded_bitwise() {
        let drive = |mut rm: RmCore| {
            rm.register(AppId(1), "a", false).unwrap();
            rm.register(AppId(2), "b", false).unwrap();
            for _ in 0..5 {
                rm.tick(&empty_obs()).unwrap();
            }
            rm
        };
        let free = drive(congested_offline_rm(0));
        let budgeted = drive(congested_offline_rm(100_000));
        assert_eq!(free.state_fingerprint(), budgeted.state_fingerprint());
        assert_eq!(budgeted.degraded_ticks(), 0);
    }

    #[test]
    fn degraded_rounds_replay_bit_identically_from_journal() {
        let dir = std::env::temp_dir().join(format!("harp-core-degr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("degraded.jrnl");
        let _ = std::fs::remove_file(&path);

        let mut live = congested_offline_rm(1);
        let cfg = live.config().clone();
        live.attach_journal(JournalWriter::open(&path).unwrap(), 0);
        // Loaded profiles are not journaled ops; snapshot them so the
        // replay starts from the same stored-profile state.
        live.compact_now();
        live.register(AppId(1), "a", false).unwrap();
        live.register(AppId(2), "b", false).unwrap();
        for _ in 0..3 {
            live.tick(&empty_obs()).unwrap();
        }
        assert!(live.degraded_ticks() > 0);

        let outcome = crate::journal::read_journal(&path).unwrap();
        assert!(!outcome.truncated);
        let recovered = RmCore::recover(presets::raptor_lake(), cfg, &outcome.records).unwrap();
        // The iteration budget is deterministic, so the replay takes the
        // exact same degraded/non-degraded path as the live run.
        assert_eq!(recovered.state_fingerprint(), live.state_fingerprint());
        assert_eq!(recovered.degraded_ticks(), live.degraded_ticks());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn directive_cores_match_erv_demand() {
        let mut rm = rm();
        let out = rm.register(AppId(1), "x", false).unwrap();
        let d = &out.directives[0];
        let hw = presets::raptor_lake();
        let mut per_kind = [0u32; 2];
        for c in &d.cores {
            per_kind[hw.kind_of_core(*c).unwrap().0] += 1;
        }
        assert_eq!(per_kind[0], d.erv.cores_of_kind(0));
        assert_eq!(per_kind[1], d.erv.cores_of_kind(1));
        assert_eq!(d.hw_threads.len() as u32, d.parallelism);
    }

    #[test]
    fn set_priority_validates_inputs() {
        let mut rm = rm();
        assert!(rm.set_priority(AppId(9), 2.0).is_err()); // unknown app
        rm.register(AppId(1), "a", false).unwrap();
        assert!(rm.set_priority(AppId(1), 0.0).is_err());
        assert!(rm.set_priority(AppId(1), -1.0).is_err());
        assert!(rm.set_priority(AppId(1), f64::NAN).is_err());
        assert_eq!(rm.priority_of(AppId(1)), Some(1.0));
        rm.set_priority(AppId(1), 2.0).unwrap();
        assert_eq!(rm.priority_of(AppId(1)), Some(2.0));
    }

    #[test]
    fn set_priority_same_weight_is_a_pure_noop() {
        let mut a = rm();
        let mut b = rm();
        a.register(AppId(1), "a", false).unwrap();
        b.register(AppId(1), "a", false).unwrap();
        let out = b.set_priority(AppId(1), 1.0).unwrap();
        assert!(out.directives.is_empty());
        assert_eq!(out.solves, 0);
        // No allocation round ran, so all state (warm counters included)
        // matches a core that never called set_priority.
        assert_eq!(a.state_fingerprint(), b.state_fingerprint());
    }

    #[test]
    fn premium_app_wins_the_contended_point() {
        use harp_types::PriorityClass;
        // Two apps with identical tables competing for the P-cores. Each
        // prefers the big efficient point (6 P-cores, 2-way), but both
        // together exceed the 8 P-core capacity, so one must be downgraded
        // to the small point — the batch app, never the premium one.
        let hw = presets::raptor_lake();
        let shape = hw.erv_shape();
        let points = |rm: &mut RmCore, app: AppId| {
            rm.submit_points(
                app,
                vec![
                    (
                        ExtResourceVector::from_flat(&shape, &[0, 6, 0]).unwrap(),
                        NonFunctional::new(8.0e10, 64.0),
                    ),
                    (
                        ExtResourceVector::from_flat(&shape, &[0, 1, 0]).unwrap(),
                        NonFunctional::new(2.0e10, 24.0),
                    ),
                ],
            )
            .unwrap()
        };
        let mut rm = RmCore::new(
            hw.clone(),
            RmConfig {
                offline: true,
                ..RmConfig::default()
            },
        );
        rm.register(AppId(1), "premium", false).unwrap();
        rm.register(AppId(2), "batch", false).unwrap();
        points(&mut rm, AppId(1));
        points(&mut rm, AppId(2));
        rm.set_priority(AppId(1), PriorityClass::Premium.weight())
            .unwrap();
        let out = rm
            .set_priority(AppId(2), PriorityClass::Batch.weight())
            .unwrap();
        let threads = |app: AppId| {
            out.directives
                .iter()
                .find(|d| d.app == app)
                .map(|d| d.parallelism)
        };
        let premium = threads(AppId(1)).unwrap_or(0);
        let batch = threads(AppId(2)).unwrap_or(0);
        assert!(
            premium > batch,
            "premium got {premium} threads vs batch {batch}"
        );
    }

    #[test]
    fn priority_changes_replay_bit_identically_from_journal() {
        let dir = std::env::temp_dir().join(format!("harp-core-prio-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("priority.jrnl");
        let _ = std::fs::remove_file(&path);

        let mut live = rm();
        let cfg = live.config().clone();
        live.attach_journal(JournalWriter::open(&path).unwrap(), 0);
        live.register(AppId(1), "a", false).unwrap();
        live.register(AppId(2), "b", false).unwrap();
        live.set_priority(AppId(1), 2.0).unwrap();
        for i in 0..3 {
            let obs = TickObservations {
                dt_s: 0.05,
                package_energy_j: (i + 1) as f64,
                apps: vec![
                    AppObservation {
                        app: AppId(1),
                        utility_rate: 1.0e9,
                        cpu_time: vec![0.05 * (i + 1) as f64, 0.0],
                    },
                    AppObservation {
                        app: AppId(2),
                        utility_rate: 2.0e9,
                        cpu_time: vec![0.0, 0.05 * (i + 1) as f64],
                    },
                ],
            };
            live.tick(&obs).unwrap();
        }
        live.set_priority(AppId(2), 0.5).unwrap();

        let outcome = crate::journal::read_journal(&path).unwrap();
        assert!(!outcome.truncated);
        let recovered = RmCore::recover(presets::raptor_lake(), cfg, &outcome.records).unwrap();
        assert_eq!(recovered.state_fingerprint(), live.state_fingerprint());
        assert_eq!(recovered.priority_of(AppId(1)), Some(2.0));
        assert_eq!(recovered.priority_of(AppId(2)), Some(0.5));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn priority_survives_snapshot_compaction() {
        let dir = std::env::temp_dir().join(format!("harp-core-prio-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("priority-snap.jrnl");
        let _ = std::fs::remove_file(&path);

        let mut live = rm();
        let cfg = live.config().clone();
        live.attach_journal(JournalWriter::open(&path).unwrap(), 0);
        live.register(AppId(1), "a", false).unwrap();
        live.set_priority(AppId(1), 2.0).unwrap();
        live.compact_now();

        let outcome = crate::journal::read_journal(&path).unwrap();
        let recovered = RmCore::recover(presets::raptor_lake(), cfg, &outcome.records).unwrap();
        assert_eq!(recovered.priority_of(AppId(1)), Some(2.0));
        std::fs::remove_file(&path).unwrap();
    }

    fn tick_obs(i: u64, apps: &[(u64, f64, [f64; 2])]) -> TickObservations {
        TickObservations {
            dt_s: 0.05,
            package_energy_j: (i as f64 + 1.0) * 1.3,
            apps: apps
                .iter()
                .map(|&(app, u, cpu)| AppObservation {
                    app: AppId(app),
                    utility_rate: u,
                    cpu_time: vec![cpu[0] * (i + 1) as f64, cpu[1] * (i + 1) as f64],
                })
                .collect(),
        }
    }

    #[test]
    fn core_fail_evicts_holders_and_bans_the_core() {
        let mut rm = rm();
        rm.register(AppId(1), "a", false).unwrap();
        rm.register(AppId(2), "b", false).unwrap();
        // Every core is in some envelope (exploring apps split the whole
        // machine), so failing core 0 must evict at least one holder.
        let dead = CoreId(0);
        let out = rm
            .inject_fault(&FaultEvent::CoreFail { core: dead })
            .unwrap();
        assert!(rm.migrations() >= 1, "holder not counted as migrated");
        assert!(!rm.core_available(dead));
        assert_eq!(rm.available_core_count(), rm.hw.num_cores() - 1);
        assert!(!out.directives.is_empty());
        for d in &out.directives {
            assert!(!d.cores.contains(&dead), "directive targets a dead core");
            assert!(d.hw_threads.iter().all(|t| {
                rm.hw
                    .threads_of_core(dead)
                    .unwrap()
                    .iter()
                    .all(|dt| dt != t)
            }));
        }
        // Duplicate failure is a no-op; out-of-range cores are rejected.
        assert_eq!(rm.fault_state().faults_injected(), 1);
        rm.inject_fault(&FaultEvent::CoreFail { core: dead })
            .unwrap();
        assert_eq!(rm.fault_state().faults_injected(), 1);
        assert!(rm
            .inject_fault(&FaultEvent::CoreFail { core: CoreId(999) })
            .is_err());

        // First recovery readmits immediately (fails=1 < threshold) and the
        // core becomes grantable again.
        rm.inject_fault(&FaultEvent::CoreRecover { core: dead })
            .unwrap();
        assert!(rm.core_available(dead));
        assert!(rm.quarantined_cores().is_empty());
    }

    #[test]
    fn repeat_offender_quarantines_with_exponential_backoff() {
        let mut rm = rm();
        rm.register(AppId(1), "a", false).unwrap();
        let flaky = CoreId(3);
        // Two fail/recover cycles: the second recover hits the threshold.
        rm.inject_fault(&FaultEvent::CoreFail { core: flaky })
            .unwrap();
        rm.inject_fault(&FaultEvent::CoreRecover { core: flaky })
            .unwrap();
        assert!(rm.core_available(flaky));
        rm.inject_fault(&FaultEvent::CoreFail { core: flaky })
            .unwrap();
        rm.inject_fault(&FaultEvent::CoreRecover { core: flaky })
            .unwrap();
        assert_eq!(rm.quarantined_cores(), vec![flaky]);
        assert!(!rm.core_available(flaky), "probation must ban the core");

        // Probation expires QUARANTINE_BASE_TICKS ticks later.
        let start = rm.ticks();
        let mut readmitted_at = None;
        for i in 0..(QUARANTINE_BASE_TICKS + 2) {
            rm.tick(&tick_obs(i, &[(1, 1.0e9, [0.05, 0.0])])).unwrap();
            if readmitted_at.is_none() && rm.core_available(flaky) {
                readmitted_at = Some(rm.ticks());
            }
        }
        assert_eq!(readmitted_at, Some(start + QUARANTINE_BASE_TICKS));
        assert!(rm.quarantined_cores().is_empty());

        // A third strike doubles the probation window.
        rm.inject_fault(&FaultEvent::CoreFail { core: flaky })
            .unwrap();
        rm.inject_fault(&FaultEvent::CoreRecover { core: flaky })
            .unwrap();
        let until = rm.health[flaky.0].quarantined_until;
        assert_eq!(until, rm.ticks() + (QUARANTINE_BASE_TICKS << 1));
    }

    #[test]
    fn sensor_dropout_defers_attribution_and_conserves_energy() {
        let mut rm = rm();
        rm.register(AppId(1), "a", false).unwrap();
        rm.tick(&tick_obs(0, &[(1, 1.0e9, [0.05, 0.0])])).unwrap();
        let before = rm.ledger().total_uj();
        rm.inject_fault(&FaultEvent::SensorDrop { ticks: 3 })
            .unwrap();
        for i in 1..=3u64 {
            let out = rm.tick(&tick_obs(i, &[(1, 1.0e9, [0.05, 0.0])])).unwrap();
            // Dark ticks charge exactly zero energy.
            assert_eq!(out.energy.unwrap().tick_uj, 0);
        }
        assert_eq!(rm.ledger().total_uj(), before);
        // The first bright tick attributes the whole dark window at once.
        let out = rm.tick(&tick_obs(4, &[(1, 1.0e9, [0.05, 0.0])])).unwrap();
        assert_eq!(out.energy.unwrap().tick_uj, 4 * 1_300_000);
        assert_eq!(rm.ledger().conservation_error(), 0);
        assert_eq!(rm.ledger().total_uj(), 5 * 1_300_000);
    }

    #[test]
    fn thermal_cap_tracks_state_and_schedules_a_resolve() {
        let mut rm = rm();
        rm.register(AppId(1), "a", false).unwrap();
        rm.inject_fault(&FaultEvent::ThermalCap {
            cluster: 1,
            permille: 600,
        })
        .unwrap();
        assert_eq!(rm.fault_state().cap_permille(1), 600);
        assert!(rm
            .inject_fault(&FaultEvent::ThermalCap {
                cluster: 9,
                permille: 500
            })
            .is_err());
        // The cap forces a full re-solve on the next tick even though no
        // campaign completed.
        let out = rm.tick(&tick_obs(0, &[(1, 1.0e9, [0.05, 0.0])])).unwrap();
        assert!(out.solves >= 1);
        // Restoring nominal capacity is a state change too; a repeat is not.
        rm.inject_fault(&FaultEvent::ThermalCap {
            cluster: 1,
            permille: 1000,
        })
        .unwrap();
        let n = rm.fault_state().faults_injected();
        rm.inject_fault(&FaultEvent::ThermalCap {
            cluster: 1,
            permille: 1000,
        })
        .unwrap();
        assert_eq!(rm.fault_state().faults_injected(), n);
    }

    #[test]
    fn healthy_state_has_no_fault_fingerprint_lines() {
        let mut rm = rm();
        rm.register(AppId(1), "a", false).unwrap();
        rm.tick(&tick_obs(0, &[(1, 1.0e9, [0.05, 0.0])])).unwrap();
        let fp = rm.state_fingerprint();
        assert!(!fp.contains("faults "), "healthy fingerprint drifted: {fp}");
        assert!(rm.snapshot().faults.is_default());
    }

    #[test]
    fn fault_laced_journal_recovers_bit_identically() {
        let dir = std::env::temp_dir().join(format!("harp-core-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("faults.jrnl");
        let _ = std::fs::remove_file(&path);

        let mut live = rm();
        live.attach_journal(JournalWriter::open(&path).unwrap(), 0);
        live.register(AppId(1), "a", false).unwrap();
        live.register(AppId(2), "b", true).unwrap();
        let flaky = CoreId(2);
        for i in 0..30u64 {
            match i {
                4 => {
                    live.inject_fault(&FaultEvent::CoreFail { core: flaky })
                        .unwrap();
                }
                7 => {
                    live.inject_fault(&FaultEvent::CoreRecover { core: flaky })
                        .unwrap();
                }
                10 => {
                    live.inject_fault(&FaultEvent::CoreFail { core: flaky })
                        .unwrap();
                    live.inject_fault(&FaultEvent::ThermalCap {
                        cluster: 1,
                        permille: 700,
                    })
                    .unwrap();
                }
                12 => {
                    // Hits the quarantine threshold: probation, not service.
                    live.inject_fault(&FaultEvent::CoreRecover { core: flaky })
                        .unwrap();
                    live.inject_fault(&FaultEvent::SensorDrop { ticks: 2 })
                        .unwrap();
                }
                _ => {}
            }
            live.tick(&tick_obs(
                i,
                &[(1, 1.0e9, [0.05, 0.0]), (2, 2.0e9, [0.0, 0.03])],
            ))
            .unwrap();
        }
        assert!(live.migrations() >= 1);
        assert!(live.fault_state().faults_injected() >= 5);

        let outcome = crate::journal::read_journal(&path).unwrap();
        assert!(!outcome.truncated);
        let mut recovered = RmCore::recover(
            presets::raptor_lake(),
            RmConfig::default(),
            &outcome.records,
        )
        .unwrap();
        // Quarantine state, health counters and migrations replay exactly.
        assert_eq!(recovered.state_fingerprint(), live.state_fingerprint());
        assert_eq!(recovered.migrations(), live.migrations());
        assert_eq!(recovered.quarantined_cores(), live.quarantined_cores());
        assert_eq!(recovered.availability(), live.availability());

        // Future behavior equality across a readmission boundary.
        for i in 30..50u64 {
            let obs = tick_obs(i, &[(1, 1.0e9, [0.05, 0.0]), (2, 2.0e9, [0.0, 0.03])]);
            let a = live.tick(&obs).unwrap();
            let b = recovered.tick(&obs).unwrap();
            assert_eq!(a.directives, b.directives);
        }
        assert_eq!(recovered.state_fingerprint(), live.state_fingerprint());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshot_compaction_preserves_fault_state() {
        let dir = std::env::temp_dir().join(format!("harp-core-fsnap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fsnap.jrnl");
        let _ = std::fs::remove_file(&path);

        let mut live = rm();
        live.attach_journal(JournalWriter::open(&path).unwrap(), 0);
        live.register(AppId(1), "a", false).unwrap();
        let flaky = CoreId(5);
        live.inject_fault(&FaultEvent::CoreFail { core: flaky })
            .unwrap();
        live.inject_fault(&FaultEvent::CoreRecover { core: flaky })
            .unwrap();
        live.inject_fault(&FaultEvent::CoreFail { core: flaky })
            .unwrap();
        live.inject_fault(&FaultEvent::CoreRecover { core: flaky })
            .unwrap();
        assert_eq!(live.quarantined_cores(), vec![flaky]);
        for i in 0..3u64 {
            live.tick(&tick_obs(i, &[(1, 1.0e9, [0.05, 0.0])])).unwrap();
        }
        // Compact: the journal becomes a single snapshot record that must
        // carry the quarantine ledger.
        live.compact_now();
        let outcome = crate::journal::read_journal(&path).unwrap();
        assert_eq!(outcome.records.len(), 1);
        let recovered = RmCore::recover(
            presets::raptor_lake(),
            RmConfig::default(),
            &outcome.records,
        )
        .unwrap();
        // Snapshot recovery re-derives exploration/ledger state, so only
        // the durable fault ledger is compared (like the other snapshot
        // tests): quarantine set, health counters, caps and migrations.
        assert_eq!(recovered.fault_state(), live.fault_state());
        assert_eq!(recovered.quarantined_cores(), vec![flaky]);
        assert_eq!(recovered.migrations(), live.migrations());
        assert_eq!(recovered.availability(), live.availability());
        assert_eq!(recovered.health, live.health);
        std::fs::remove_file(&path).unwrap();
    }
}
