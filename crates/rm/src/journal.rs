//! Append-only, checksummed RM state journal.
//!
//! Every successful state-changing operation on a journal-attached
//! [`RmCore`](crate::RmCore) (register, submit-points, deregister, tick) is
//! appended as one framed record; [`RmCore::recover`](crate::RmCore::recover)
//! replays the records through the *real* entry points, so the rebuilt core
//! is bit-identical to the crashed one — including solver warm-start and
//! exploration state, because those evolve deterministically from the same
//! op sequence.
//!
//! # On-disk format
//!
//! ```text
//! header:  "HARPJRNL" (8 bytes) | version u32 LE
//! record:  body_len u32 LE | crc32(body) u32 LE | body
//! body:    record_type u8 | type-specific fields (LE; f64 as raw bits)
//! ```
//!
//! Floats are stored as `f64::to_bits` so replay sees the exact inputs the
//! live core saw. The reader stops at the first truncated or
//! checksum-damaged record and returns the valid prefix — a torn tail
//! (crash mid-append) costs at most the last record, never a panic.
//!
//! Periodic compaction rewrites the file as one [`JournalRecord::Snapshot`]
//! carrying the durable state (profiles, live sessions with their measured
//! points and resume tokens, counters). A snapshot restores durable state
//! exactly; in-flight exploration-campaign progress restarts, and the
//! allocation is re-derived deterministically on the first round after
//! recovery (see DESIGN.md §10).

use harp_types::{HarpError, Result};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Journal file magic.
pub const MAGIC: &[u8; 8] = b"HARPJRNL";
/// Journal format version.
pub const VERSION: u32 = 1;

/// Upper bound on a single record body; guards the reader against a
/// corrupted length field asking for gigabytes.
const MAX_RECORD_LEN: u32 = 64 * 1024 * 1024;

const T_REGISTER: u8 = 1;
const T_SUBMIT: u8 = 2;
const T_DEREGISTER: u8 = 3;
const T_TICK: u8 = 4;
const T_EPOCH: u8 = 5;
const T_SNAPSHOT: u8 = 6;
const T_SET_PRIORITY: u8 = 7;
const T_FAULT: u8 = 8;

/// One operating point in journal form: flattened vector plus the raw bit
/// patterns of its non-functional characteristics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalPoint {
    /// Flattened extended resource vector.
    pub erv_flat: Vec<u32>,
    /// `f64::to_bits` of the utility.
    pub utility_bits: u64,
    /// `f64::to_bits` of the power.
    pub power_bits: u64,
}

/// One per-app observation of a journaled tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalAppObs {
    /// Raw application id.
    pub app: u64,
    /// `f64::to_bits` of the utility rate.
    pub utility_rate_bits: u64,
    /// `f64::to_bits` of the cumulative per-kind CPU seconds.
    pub cpu_time_bits: Vec<u64>,
}

/// A live session captured in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotSession {
    /// Raw application id.
    pub app: u64,
    /// Application name.
    pub name: String,
    /// Whether the application provides its own utility metric.
    pub provides_utility: bool,
    /// Resume token bound to the session (0 = none).
    pub resume_token: u64,
    /// `f64::to_bits` of the session's priority weight.
    pub priority_bits: u64,
    /// The session's measured operating points at snapshot time.
    pub points: Vec<JournalPoint>,
}

/// Degraded-hardware and quarantine state captured in a snapshot. All
/// vectors are indexed by raw core id (or cluster index for `caps`);
/// empty vectors mean "nothing ever degraded" and restore to defaults.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SnapshotFaults {
    /// Per-core online bit (1 = online).
    pub online: Vec<u64>,
    /// Per-core lifetime failure count (health score input).
    pub fails: Vec<u64>,
    /// Per-core quarantine re-admission tick (0 = not quarantined).
    pub quarantined_until: Vec<u64>,
    /// Per-core tick of the last online/quarantine transition.
    pub last_change_tick: Vec<u64>,
    /// Per-cluster thermal cap in permille of nominal capacity.
    pub caps: Vec<u64>,
    /// Remaining power-sensor dropout ticks.
    pub sensor_drop_ticks: u64,
    /// Count of state-changing fault events applied.
    pub faults_injected: u64,
    /// Sessions migrated off failing cores so far.
    pub migrations: u64,
}

impl SnapshotFaults {
    /// True when the snapshot carries no degradation state at all.
    pub fn is_default(&self) -> bool {
        *self == SnapshotFaults::default()
    }
}

/// Compacted durable state replacing the journal prefix.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Stored profiles, keyed by application name (sorted).
    pub profiles: Vec<(String, Vec<JournalPoint>)>,
    /// Live sessions at snapshot time (sorted by app id).
    pub sessions: Vec<SnapshotSession>,
    /// Highest application id ever registered (daemon id allocation must
    /// not reuse ids after a restart).
    pub max_app_seen: u64,
    /// Measurement ticks processed so far.
    pub ticks: u64,
    /// Degraded-hardware and quarantine state (DESIGN.md §15).
    pub faults: SnapshotFaults,
}

/// One journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// A successful registration.
    Register {
        /// Raw application id.
        app: u64,
        /// Application name.
        name: String,
        /// Whether the application provides its own utility metric.
        provides_utility: bool,
        /// Resume token minted for the session (0 = none).
        resume_token: u64,
    },
    /// A successful (validated) point submission.
    SubmitPoints {
        /// Raw application id.
        app: u64,
        /// The submitted points.
        points: Vec<JournalPoint>,
    },
    /// A successful deregistration.
    Deregister {
        /// Raw application id.
        app: u64,
    },
    /// A processed measurement tick, with the exact observed inputs.
    Tick {
        /// `f64::to_bits` of the interval length in seconds.
        dt_bits: u64,
        /// `f64::to_bits` of the cumulative package energy in joules.
        package_energy_bits: u64,
        /// Per-application observations.
        apps: Vec<JournalAppObs>,
    },
    /// A successful priority-class change.
    SetPriority {
        /// Raw application id.
        app: u64,
        /// `f64::to_bits` of the new priority weight.
        weight_bits: u64,
    },
    /// A daemon boot (or watchdog restart) epoch bump.
    EpochBump {
        /// The new epoch.
        epoch: u64,
    },
    /// An applied hardware-degradation event, in the flat `(kind, a, b)`
    /// wire form of [`harp_types::FaultEvent::encode_words`].
    Fault {
        /// Fault kind tag (0 = core_fail, 1 = core_recover,
        /// 2 = thermal_cap, 3 = sensor_drop).
        kind: u8,
        /// First operand (core id, cluster index, or tick count).
        a: u64,
        /// Second operand (cap permille; 0 otherwise).
        b: u64,
    },
    /// Compacted durable state; replaces all earlier lifecycle records.
    Snapshot(Snapshot),
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected), table-driven.

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// IEEE CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Body encoding helpers.

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_u32s(out: &mut Vec<u8>, vs: &[u32]) {
    put_u32(out, vs.len() as u32);
    for &v in vs {
        put_u32(out, v);
    }
}

fn put_u64s(out: &mut Vec<u8>, vs: &[u64]) {
    put_u32(out, vs.len() as u32);
    for &v in vs {
        put_u64(out, v);
    }
}

fn put_point(out: &mut Vec<u8>, p: &JournalPoint) {
    put_u32s(out, &p.erv_flat);
    put_u64(out, p.utility_bits);
    put_u64(out, p.power_bits);
}

fn put_points(out: &mut Vec<u8>, ps: &[JournalPoint]) {
    put_u32(out, ps.len() as u32);
    for p in ps {
        put_point(out, p);
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(HarpError::other("journal record body truncated"));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| HarpError::other("journal record holds invalid utf-8"))
    }

    fn u32s(&mut self) -> Result<Vec<u32>> {
        let len = self.len_capped()?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(self.u32()?);
        }
        Ok(v)
    }

    fn u64s(&mut self) -> Result<Vec<u64>> {
        let len = self.len_capped()?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(self.u64()?);
        }
        Ok(v)
    }

    fn point(&mut self) -> Result<JournalPoint> {
        Ok(JournalPoint {
            erv_flat: self.u32s()?,
            utility_bits: self.u64()?,
            power_bits: self.u64()?,
        })
    }

    fn points(&mut self) -> Result<Vec<JournalPoint>> {
        let len = self.len_capped()?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(self.point()?);
        }
        Ok(v)
    }

    /// A collection length, sanity-capped by the remaining bytes so a
    /// corrupted count cannot trigger a huge allocation.
    fn len_capped(&mut self) -> Result<usize> {
        let len = self.u32()? as usize;
        if len > self.buf.len() {
            return Err(HarpError::other("journal collection length exceeds body"));
        }
        Ok(len)
    }
}

impl JournalRecord {
    /// Encodes the record body (without the length/CRC frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            JournalRecord::Register {
                app,
                name,
                provides_utility,
                resume_token,
            } => {
                out.push(T_REGISTER);
                put_u64(&mut out, *app);
                put_str(&mut out, name);
                out.push(u8::from(*provides_utility));
                put_u64(&mut out, *resume_token);
            }
            JournalRecord::SubmitPoints { app, points } => {
                out.push(T_SUBMIT);
                put_u64(&mut out, *app);
                put_points(&mut out, points);
            }
            JournalRecord::Deregister { app } => {
                out.push(T_DEREGISTER);
                put_u64(&mut out, *app);
            }
            JournalRecord::Tick {
                dt_bits,
                package_energy_bits,
                apps,
            } => {
                out.push(T_TICK);
                put_u64(&mut out, *dt_bits);
                put_u64(&mut out, *package_energy_bits);
                put_u32(&mut out, apps.len() as u32);
                for a in apps {
                    put_u64(&mut out, a.app);
                    put_u64(&mut out, a.utility_rate_bits);
                    put_u32(&mut out, a.cpu_time_bits.len() as u32);
                    for &b in &a.cpu_time_bits {
                        put_u64(&mut out, b);
                    }
                }
            }
            JournalRecord::SetPriority { app, weight_bits } => {
                out.push(T_SET_PRIORITY);
                put_u64(&mut out, *app);
                put_u64(&mut out, *weight_bits);
            }
            JournalRecord::EpochBump { epoch } => {
                out.push(T_EPOCH);
                put_u64(&mut out, *epoch);
            }
            JournalRecord::Fault { kind, a, b } => {
                out.push(T_FAULT);
                out.push(*kind);
                put_u64(&mut out, *a);
                put_u64(&mut out, *b);
            }
            JournalRecord::Snapshot(s) => {
                out.push(T_SNAPSHOT);
                put_u32(&mut out, s.profiles.len() as u32);
                for (name, points) in &s.profiles {
                    put_str(&mut out, name);
                    put_points(&mut out, points);
                }
                put_u32(&mut out, s.sessions.len() as u32);
                for sess in &s.sessions {
                    put_u64(&mut out, sess.app);
                    put_str(&mut out, &sess.name);
                    out.push(u8::from(sess.provides_utility));
                    put_u64(&mut out, sess.resume_token);
                    put_u64(&mut out, sess.priority_bits);
                    put_points(&mut out, &sess.points);
                }
                put_u64(&mut out, s.max_app_seen);
                put_u64(&mut out, s.ticks);
                put_u64s(&mut out, &s.faults.online);
                put_u64s(&mut out, &s.faults.fails);
                put_u64s(&mut out, &s.faults.quarantined_until);
                put_u64s(&mut out, &s.faults.last_change_tick);
                put_u64s(&mut out, &s.faults.caps);
                put_u64(&mut out, s.faults.sensor_drop_ticks);
                put_u64(&mut out, s.faults.faults_injected);
                put_u64(&mut out, s.faults.migrations);
            }
        }
        out
    }

    /// Decodes a record body.
    ///
    /// # Errors
    ///
    /// Returns [`HarpError::Other`] for truncated bodies or unknown record
    /// types.
    pub fn decode(body: &[u8]) -> Result<JournalRecord> {
        let mut c = Cursor { buf: body };
        let rec = match c.u8()? {
            T_REGISTER => JournalRecord::Register {
                app: c.u64()?,
                name: c.str()?,
                provides_utility: c.u8()? != 0,
                resume_token: c.u64()?,
            },
            T_SUBMIT => JournalRecord::SubmitPoints {
                app: c.u64()?,
                points: c.points()?,
            },
            T_DEREGISTER => JournalRecord::Deregister { app: c.u64()? },
            T_TICK => {
                let dt_bits = c.u64()?;
                let package_energy_bits = c.u64()?;
                let napps = c.len_capped()?;
                let mut apps = Vec::with_capacity(napps);
                for _ in 0..napps {
                    apps.push(JournalAppObs {
                        app: c.u64()?,
                        utility_rate_bits: c.u64()?,
                        cpu_time_bits: c.u64s()?,
                    });
                }
                JournalRecord::Tick {
                    dt_bits,
                    package_energy_bits,
                    apps,
                }
            }
            T_SET_PRIORITY => JournalRecord::SetPriority {
                app: c.u64()?,
                weight_bits: c.u64()?,
            },
            T_EPOCH => JournalRecord::EpochBump { epoch: c.u64()? },
            T_FAULT => JournalRecord::Fault {
                kind: c.u8()?,
                a: c.u64()?,
                b: c.u64()?,
            },
            T_SNAPSHOT => {
                let nprofiles = c.len_capped()?;
                let mut profiles = Vec::with_capacity(nprofiles);
                for _ in 0..nprofiles {
                    let name = c.str()?;
                    profiles.push((name, c.points()?));
                }
                let nsessions = c.len_capped()?;
                let mut sessions = Vec::with_capacity(nsessions);
                for _ in 0..nsessions {
                    sessions.push(SnapshotSession {
                        app: c.u64()?,
                        name: c.str()?,
                        provides_utility: c.u8()? != 0,
                        resume_token: c.u64()?,
                        priority_bits: c.u64()?,
                        points: c.points()?,
                    });
                }
                JournalRecord::Snapshot(Snapshot {
                    profiles,
                    sessions,
                    max_app_seen: c.u64()?,
                    ticks: c.u64()?,
                    faults: SnapshotFaults {
                        online: c.u64s()?,
                        fails: c.u64s()?,
                        quarantined_until: c.u64s()?,
                        last_change_tick: c.u64s()?,
                        caps: c.u64s()?,
                        sensor_drop_ticks: c.u64()?,
                        faults_injected: c.u64()?,
                        migrations: c.u64()?,
                    },
                })
            }
            other => {
                return Err(HarpError::other(format!(
                    "unknown journal record type {other}"
                )))
            }
        };
        if !c.buf.is_empty() {
            return Err(HarpError::other("journal record has trailing bytes"));
        }
        Ok(rec)
    }
}

// ---------------------------------------------------------------------------
// Writer.

/// Appending journal writer.
///
/// Records are flushed to the OS after every append, so an in-process crash
/// (panic, abrupt daemon kill) loses nothing; a machine power cut may cost
/// the unsynced tail, which the tolerant reader then drops cleanly.
#[derive(Debug)]
pub struct JournalWriter {
    path: PathBuf,
    out: BufWriter<File>,
    records_written: u64,
    last_epoch: u64,
    /// Watchdog fence: when the shared generation no longer matches this
    /// writer's, the writer has been superseded by a recovered core and
    /// silently drops appends (an orphaned wedged thread must not interleave
    /// bytes with its replacement).
    fence: Option<(Arc<AtomicU64>, u64)>,
}

impl JournalWriter {
    /// Opens (creating or appending) the journal at `path`. A fresh file
    /// gets the header; an existing file is scanned so the writer resumes
    /// after the last valid record, truncating a torn tail if present.
    pub fn open(path: impl AsRef<Path>) -> Result<JournalWriter> {
        let path = path.as_ref().to_path_buf();
        let existing = if path.exists() {
            read_journal(&path).ok() // unreadable header: start fresh
        } else {
            None
        };
        let (file, records_written, last_epoch) = match existing {
            Some(outcome) => {
                let file = OpenOptions::new().read(true).write(true).open(&path)?;
                // Drop a torn tail so new appends start on a record boundary.
                file.set_len(outcome.valid_bytes)?;
                let last_epoch = last_epoch(&outcome.records);
                (file, outcome.records.len() as u64, last_epoch)
            }
            None => {
                let mut file = OpenOptions::new()
                    .create(true)
                    .write(true)
                    .truncate(true)
                    .open(&path)?;
                file.write_all(MAGIC)?;
                file.write_all(&VERSION.to_le_bytes())?;
                file.flush()?;
                (file, 0, 0)
            }
        };
        use std::io::Seek;
        let mut file = file;
        file.seek(std::io::SeekFrom::End(0))?;
        Ok(JournalWriter {
            path,
            out: BufWriter::new(file),
            records_written,
            last_epoch,
            fence: None,
        })
    }

    /// Attaches a supersession fence (see the field docs).
    pub fn set_fence(&mut self, fence: Arc<AtomicU64>, generation: u64) {
        self.fence = Some((fence, generation));
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended by this writer (plus valid pre-existing ones).
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// The last epoch this journal carries.
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// Appends one record and flushes it.
    ///
    /// # Errors
    ///
    /// Returns [`HarpError::Io`] on write failure. A fenced-out writer
    /// silently succeeds without writing.
    pub fn append(&mut self, rec: &JournalRecord) -> Result<()> {
        if let Some((fence, generation)) = &self.fence {
            if fence.load(Ordering::SeqCst) != *generation {
                return Ok(());
            }
        }
        let body = rec.encode();
        self.out.write_all(&(body.len() as u32).to_le_bytes())?;
        self.out.write_all(&crc32(&body).to_le_bytes())?;
        self.out.write_all(&body)?;
        self.out.flush()?;
        self.records_written += 1;
        if let JournalRecord::EpochBump { epoch } = rec {
            self.last_epoch = *epoch;
        }
        Ok(())
    }

    /// Atomically replaces the journal contents with `records` (compaction):
    /// writes a sibling temp file and renames it over the journal. The
    /// epoch carried by the old journal is preserved as a leading
    /// [`JournalRecord::EpochBump`].
    ///
    /// # Errors
    ///
    /// Returns [`HarpError::Io`] on write/rename failure; the original
    /// journal is untouched in that case.
    pub fn rewrite(&mut self, records: &[JournalRecord]) -> Result<()> {
        if let Some((fence, generation)) = &self.fence {
            if fence.load(Ordering::SeqCst) != *generation {
                return Ok(());
            }
        }
        let tmp = self.path.with_extension("jrnl.tmp");
        {
            let mut f = BufWriter::new(
                OpenOptions::new()
                    .create(true)
                    .write(true)
                    .truncate(true)
                    .open(&tmp)?,
            );
            f.write_all(MAGIC)?;
            f.write_all(&VERSION.to_le_bytes())?;
            let mut write_rec = |rec: &JournalRecord| -> Result<()> {
                let body = rec.encode();
                f.write_all(&(body.len() as u32).to_le_bytes())?;
                f.write_all(&crc32(&body).to_le_bytes())?;
                f.write_all(&body)?;
                Ok(())
            };
            let mut count = 0u64;
            if self.last_epoch != 0 {
                write_rec(&JournalRecord::EpochBump {
                    epoch: self.last_epoch,
                })?;
                count += 1;
            }
            for rec in records {
                write_rec(rec)?;
                count += 1;
            }
            f.flush()?;
            self.records_written = count;
        }
        std::fs::rename(&tmp, &self.path)?;
        let mut file = OpenOptions::new().write(true).open(&self.path)?;
        use std::io::Seek;
        file.seek(std::io::SeekFrom::End(0))?;
        self.out = BufWriter::new(file);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Reader.

/// Result of scanning a journal file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadOutcome {
    /// The valid record prefix.
    pub records: Vec<JournalRecord>,
    /// True when trailing bytes were dropped (torn or corrupted tail).
    pub truncated: bool,
    /// File offset just past the last valid record (header included).
    pub valid_bytes: u64,
}

/// The last epoch carried by a record sequence (0 when none).
pub fn last_epoch(records: &[JournalRecord]) -> u64 {
    records
        .iter()
        .rev()
        .find_map(|r| match r {
            JournalRecord::EpochBump { epoch } => Some(*epoch),
            _ => None,
        })
        .unwrap_or(0)
}

/// Reads a journal file, stopping cleanly at the first invalid record.
///
/// A missing file yields an empty, non-truncated outcome (first boot).
///
/// # Errors
///
/// Returns [`HarpError::Io`] on read failure and [`HarpError::Other`] for a
/// file that is not a HARP journal at all (bad magic or version) — damage
/// *within* the record stream is never an error, only a shorter prefix.
pub fn read_journal(path: impl AsRef<Path>) -> Result<ReadOutcome> {
    let path = path.as_ref();
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(ReadOutcome {
                records: Vec::new(),
                truncated: false,
                valid_bytes: 0,
            })
        }
        Err(e) => return Err(e.into()),
    }
    read_journal_bytes(&bytes)
}

/// [`read_journal`] over an in-memory byte image.
pub fn read_journal_bytes(bytes: &[u8]) -> Result<ReadOutcome> {
    if bytes.len() < MAGIC.len() + 4 || &bytes[..MAGIC.len()] != MAGIC {
        return Err(HarpError::other("not a HARP journal (bad magic)"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(HarpError::other(format!(
            "unsupported journal version {version}"
        )));
    }
    let mut records = Vec::new();
    let mut offset = MAGIC.len() + 4;
    loop {
        let rest = &bytes[offset..];
        if rest.is_empty() {
            return Ok(ReadOutcome {
                records,
                truncated: false,
                valid_bytes: offset as u64,
            });
        }
        let valid = (|| -> Option<(JournalRecord, usize)> {
            if rest.len() < 8 {
                return None;
            }
            let len = u32::from_le_bytes(rest[0..4].try_into().unwrap());
            if len > MAX_RECORD_LEN {
                return None;
            }
            let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
            let body = rest.get(8..8 + len as usize)?;
            if crc32(body) != crc {
                return None;
            }
            let rec = JournalRecord::decode(body).ok()?;
            Some((rec, 8 + len as usize))
        })();
        match valid {
            Some((rec, consumed)) => {
                records.push(rec);
                offset += consumed;
            }
            None => {
                return Ok(ReadOutcome {
                    records,
                    truncated: true,
                    valid_bytes: offset as u64,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::EpochBump { epoch: 1 },
            JournalRecord::Register {
                app: 1,
                name: "ep".into(),
                provides_utility: false,
                resume_token: 0x1_0000_0001,
            },
            JournalRecord::SubmitPoints {
                app: 1,
                points: vec![JournalPoint {
                    erv_flat: vec![0, 4, 0],
                    utility_bits: 10.0f64.to_bits(),
                    power_bits: 30.0f64.to_bits(),
                }],
            },
            JournalRecord::Tick {
                dt_bits: 0.05f64.to_bits(),
                package_energy_bits: 1.5f64.to_bits(),
                apps: vec![JournalAppObs {
                    app: 1,
                    utility_rate_bits: 1.0e9f64.to_bits(),
                    cpu_time_bits: vec![0.05f64.to_bits(), 0.0f64.to_bits()],
                }],
            },
            JournalRecord::SetPriority {
                app: 1,
                weight_bits: 2.0f64.to_bits(),
            },
            JournalRecord::Fault {
                kind: 0,
                a: 3,
                b: 0,
            },
            JournalRecord::Fault {
                kind: 2,
                a: 1,
                b: 500,
            },
            JournalRecord::Deregister { app: 1 },
        ]
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip() {
        for rec in sample_records() {
            let body = rec.encode();
            assert_eq!(JournalRecord::decode(&body).unwrap(), rec);
        }
        let snap = JournalRecord::Snapshot(Snapshot {
            profiles: vec![(
                "ep".into(),
                vec![JournalPoint {
                    erv_flat: vec![1, 0, 0],
                    utility_bits: 2.5f64.to_bits(),
                    power_bits: 1.0f64.to_bits(),
                }],
            )],
            sessions: vec![SnapshotSession {
                app: 3,
                name: "mg".into(),
                provides_utility: true,
                resume_token: 42,
                priority_bits: 2.0f64.to_bits(),
                points: vec![],
            }],
            max_app_seen: 3,
            ticks: 17,
            faults: SnapshotFaults::default(),
        });
        assert_eq!(JournalRecord::decode(&snap.encode()).unwrap(), snap);
        let degraded = JournalRecord::Snapshot(Snapshot {
            max_app_seen: 3,
            ticks: 17,
            faults: SnapshotFaults {
                online: vec![1, 0, 1, 1],
                fails: vec![0, 3, 0, 0],
                quarantined_until: vec![0, 25, 0, 0],
                last_change_tick: vec![0, 17, 0, 0],
                caps: vec![1000, 600],
                sensor_drop_ticks: 2,
                faults_injected: 5,
                migrations: 4,
            },
            ..Default::default()
        });
        assert_eq!(JournalRecord::decode(&degraded.encode()).unwrap(), degraded);
    }

    #[test]
    fn file_round_trip_and_reopen_appends() {
        let dir = std::env::temp_dir().join(format!("harp-jrnl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.jrnl");
        let _ = std::fs::remove_file(&path);
        let records = sample_records();
        {
            let mut w = JournalWriter::open(&path).unwrap();
            for r in &records[..3] {
                w.append(r).unwrap();
            }
            assert_eq!(w.last_epoch(), 1);
        }
        {
            // Reopen resumes after the existing records.
            let mut w = JournalWriter::open(&path).unwrap();
            assert_eq!(w.records_written(), 3);
            for r in &records[3..] {
                w.append(r).unwrap();
            }
        }
        let outcome = read_journal(&path).unwrap();
        assert!(!outcome.truncated);
        assert_eq!(outcome.records, records);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let records = sample_records();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        for r in &records {
            let body = r.encode();
            bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&crc32(&body).to_le_bytes());
            bytes.extend_from_slice(&body);
        }
        let full = read_journal_bytes(&bytes).unwrap();
        assert_eq!(full.records.len(), records.len());
        // Cut the file mid-way through the last record.
        let cut = bytes.len() - 3;
        let torn = read_journal_bytes(&bytes[..cut]).unwrap();
        assert!(torn.truncated);
        assert_eq!(torn.records, records[..records.len() - 1]);
    }

    #[test]
    fn corrupted_byte_stops_at_last_valid_record() {
        let records = sample_records();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        let mut third_record_start = 0;
        for (i, r) in records.iter().enumerate() {
            if i == 2 {
                third_record_start = bytes.len();
            }
            let body = r.encode();
            bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&crc32(&body).to_le_bytes());
            bytes.extend_from_slice(&body);
        }
        // Flip a byte inside the third record's body.
        bytes[third_record_start + 10] ^= 0xFF;
        let outcome = read_journal_bytes(&bytes).unwrap();
        assert!(outcome.truncated);
        assert_eq!(outcome.records, records[..2]);
    }

    #[test]
    fn non_journal_file_is_an_error() {
        assert!(read_journal_bytes(b"definitely not a journal").is_err());
        assert!(read_journal_bytes(b"").is_err());
    }

    #[test]
    fn fenced_out_writer_drops_appends() {
        let dir = std::env::temp_dir().join(format!("harp-jrnl-fence-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fence.jrnl");
        let _ = std::fs::remove_file(&path);
        let fence = Arc::new(AtomicU64::new(1));
        let mut w = JournalWriter::open(&path).unwrap();
        w.set_fence(fence.clone(), 1);
        w.append(&JournalRecord::EpochBump { epoch: 1 }).unwrap();
        fence.store(2, Ordering::SeqCst);
        w.append(&JournalRecord::Deregister { app: 9 }).unwrap();
        let outcome = read_journal(&path).unwrap();
        assert_eq!(outcome.records, vec![JournalRecord::EpochBump { epoch: 1 }]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rewrite_compacts_and_preserves_epoch() {
        let dir = std::env::temp_dir().join(format!("harp-jrnl-rw-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rewrite.jrnl");
        let _ = std::fs::remove_file(&path);
        let mut w = JournalWriter::open(&path).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        let snap = JournalRecord::Snapshot(Snapshot {
            max_app_seen: 1,
            ticks: 1,
            ..Default::default()
        });
        w.rewrite(std::slice::from_ref(&snap)).unwrap();
        // Appends after a rewrite keep working.
        w.append(&JournalRecord::Register {
            app: 2,
            name: "post".into(),
            provides_utility: false,
            resume_token: 0,
        })
        .unwrap();
        let outcome = read_journal(&path).unwrap();
        assert!(!outcome.truncated);
        assert_eq!(outcome.records.len(), 3);
        assert_eq!(outcome.records[0], JournalRecord::EpochBump { epoch: 1 });
        assert_eq!(outcome.records[1], snap);
        assert_eq!(last_epoch(&outcome.records), 1);
        std::fs::remove_file(&path).unwrap();
    }
}
