//! Crash-recovery invariants of the RM state journal.
//!
//! Any random trace of register / submit / tick / deregister operations,
//! journaled while it runs, must recover into a core whose canonical
//! state fingerprint is *bit-identical* to the live core's — including
//! profile tables, warm-start state hashes, resume tokens and directive
//! history. A journal with a torn or corrupted tail must decode to a
//! prefix of the original records and still recover cleanly.

use harp_platform::presets;
use harp_rm::journal::{read_journal, read_journal_bytes, JournalRecord};
use harp_rm::{AppObservation, JournalWriter, RmConfig, RmCore, TickObservations};
use harp_types::{AppId, CoreId, ExtResourceVector, FaultEvent, NonFunctional};
use proptest::prelude::*;
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const OP_REGISTER: u8 = 0;
const OP_SUBMIT: u8 = 1;
const OP_TICK: u8 = 2;
const OP_DEREGISTER: u8 = 3;
const OP_SET_PRIORITY: u8 = 4;
const OP_FAULT: u8 = 5;

static NEXT_JOURNAL: AtomicU64 = AtomicU64::new(0);

fn temp_journal(tag: &str) -> PathBuf {
    let n = NEXT_JOURNAL.fetch_add(1, Ordering::SeqCst);
    let path = std::env::temp_dir().join(format!(
        "harp-prop-journal-{}-{n}-{tag}.bin",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// Replays a random operation trace into a journaled core and returns the
/// live core (journal detached, file flushed) plus the journal path.
fn run_ops(ops: &[(u8, u64)], path: &PathBuf) -> RmCore {
    let hw = presets::raptor_lake();
    let shape = hw.erv_shape();
    let mut rm = RmCore::new(hw, RmConfig::default());
    rm.attach_journal(JournalWriter::open(path).unwrap(), 10_000);
    let mut live: HashSet<u64> = HashSet::new();
    let mut energy = 0.0f64;
    let mut cpu = 0.0f64;
    for &(op, app) in ops {
        match op {
            OP_REGISTER => {
                if rm
                    .register(AppId(app), &format!("app-{app}"), false)
                    .is_ok()
                {
                    live.insert(app);
                }
            }
            OP_SUBMIT => {
                let points = vec![
                    (
                        ExtResourceVector::from_flat(&shape, &[0, 4, 0]).unwrap(),
                        NonFunctional::new(3.0e10, 40.0 + app as f64),
                    ),
                    (
                        ExtResourceVector::from_flat(&shape, &[0, 0, 8]).unwrap(),
                        NonFunctional::new(2.5e10, 15.0 + app as f64),
                    ),
                ];
                let _ = rm.submit_points(AppId(app), points);
            }
            OP_DEREGISTER => {
                if rm.deregister(AppId(app)).is_ok() {
                    live.remove(&app);
                }
            }
            OP_TICK => {
                energy += 1.25 + app as f64 * 0.1;
                cpu += 0.05;
                let apps: Vec<AppObservation> = live
                    .iter()
                    .map(|&a| AppObservation {
                        app: AppId(a),
                        utility_rate: 1.0e9 * (1.0 + a as f64),
                        cpu_time: vec![cpu, cpu * 0.5],
                    })
                    .collect();
                rm.tick(&TickObservations {
                    dt_s: 0.05,
                    package_energy_j: energy,
                    apps,
                })
                .expect("tick succeeds");
            }
            OP_SET_PRIORITY => {
                let _ = rm.set_priority(AppId(app), 1.0 + app as f64);
            }
            OP_FAULT => {
                // Deterministic fault mix keyed on the op value, covering
                // all four kinds (P-core ids stay in 0..8).
                let ev = match app % 4 {
                    0 => FaultEvent::CoreFail {
                        core: CoreId((app as usize * 3) % 8),
                    },
                    1 => FaultEvent::CoreRecover {
                        core: CoreId((app as usize * 3) % 8),
                    },
                    2 => FaultEvent::ThermalCap {
                        cluster: (app % 2) as u32,
                        permille: 400 + (app as u32 * 97) % 600,
                    },
                    _ => FaultEvent::SensorDrop { ticks: 1 + app % 3 },
                };
                let _ = rm.inject_fault(&ev);
            }
            _ => unreachable!(),
        }
    }
    rm.detach_journal();
    rm
}

fn recover_from(path: &PathBuf) -> RmCore {
    let outcome = read_journal(path).expect("journal readable");
    assert!(!outcome.truncated, "undamaged journal reported truncated");
    RmCore::recover(
        presets::raptor_lake(),
        RmConfig::default(),
        &outcome.records,
    )
    .expect("recovery succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Journal round trip: recovery is bit-identical for any op trace.
    #[test]
    fn journaled_traces_recover_bit_identically(
        ops in proptest::collection::vec((0u8..=5, 1u64..=5), 1..32)
    ) {
        let path = temp_journal("rt");
        let live = run_ops(&ops, &path);
        let recovered = recover_from(&path);
        prop_assert_eq!(live.state_fingerprint(), recovered.state_fingerprint());
        let _ = std::fs::remove_file(&path);
    }

    /// Tearing the file at any byte offset still yields a decodable
    /// prefix of the original records, and that prefix still recovers.
    #[test]
    fn torn_tails_decode_to_a_recoverable_prefix(
        ops in proptest::collection::vec((0u8..=5, 1u64..=5), 1..24),
        cut_frac in 0.0f64..1.0
    ) {
        let path = temp_journal("torn");
        let _live = run_ops(&ops, &path);
        let bytes = std::fs::read(&path).unwrap();
        let full = read_journal_bytes(&bytes).unwrap();
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        match read_journal_bytes(&bytes[..cut]) {
            Err(_) => {
                // Only a destroyed header (magic + version) is an error.
                prop_assert!(cut < 12, "readable header rejected at cut {cut}");
            }
            Ok(torn) => {
                prop_assert!(torn.records.len() <= full.records.len());
                // The surviving records are exactly a prefix of the full set.
                for (a, b) in torn.records.iter().zip(full.records.iter()) {
                    prop_assert_eq!(a.encode(), b.encode());
                }
                // A mid-record tear is flagged; a record boundary is not.
                prop_assert_eq!(torn.truncated, (torn.valid_bytes as usize) < cut);
                // Whatever survived must recover without error.
                let recovered = RmCore::recover(
                    presets::raptor_lake(), RmConfig::default(), &torn.records);
                prop_assert!(recovered.is_ok());
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Flipping one byte anywhere never panics the reader, and the records
    /// it does return are a prefix of the originals (CRC catches the rest).
    #[test]
    fn corrupted_byte_never_breaks_the_reader(
        ops in proptest::collection::vec((0u8..=5, 1u64..=5), 1..16),
        frac in 0.0f64..1.0,
        xor in 1u8..=255
    ) {
        let path = temp_journal("corrupt");
        let _live = run_ops(&ops, &path);
        let mut bytes = std::fs::read(&path).unwrap();
        let full = read_journal_bytes(&bytes).unwrap();
        let idx = ((bytes.len() - 1) as f64 * frac) as usize;
        bytes[idx] ^= xor;
        // A corrupted header may make the whole file unreadable (that is
        // an Err, not a panic); a corrupted body is caught by the CRC and
        // yields the surviving prefix.
        if let Ok(outcome) = read_journal_bytes(&bytes) {
            for (a, b) in outcome.records.iter().zip(full.records.iter()) {
                if a.encode() != b.encode() {
                    // The flipped byte may leave a record decodable but
                    // different only if the CRC also collides — with CRC32
                    // over a single byte flip that is impossible.
                    return Err(TestCaseError::fail("CRC missed a single-byte flip"));
                }
            }
            let recovered = RmCore::recover(
                presets::raptor_lake(), RmConfig::default(), &outcome.records);
            prop_assert!(recovered.is_ok());
        }
        let _ = std::fs::remove_file(&path);
    }
}

/// The acceptance trace from ISSUE 5: a 32-tick run with churn recovers
/// bit-identically, and still does after its tail is corrupted — losing
/// only the torn suffix.
#[test]
fn thirty_two_tick_chaos_trace_recovers_bit_identically() {
    let mut ops = vec![
        (OP_REGISTER, 1),
        (OP_SUBMIT, 1),
        (OP_REGISTER, 2),
        (OP_SUBMIT, 2),
    ];
    for i in 0..32u64 {
        ops.push((OP_TICK, i % 3));
        if i == 10 {
            ops.push((OP_REGISTER, 3));
            ops.push((OP_SUBMIT, 3));
        }
        if i == 20 {
            ops.push((OP_DEREGISTER, 2));
        }
    }
    let path = temp_journal("chaos32");
    let live = run_ops(&ops, &path);
    let recovered = recover_from(&path);
    assert_eq!(
        live.state_fingerprint(),
        recovered.state_fingerprint(),
        "recovered core diverges from the live one"
    );

    // Corrupt the last 7 bytes: the reader must flag truncation, drop at
    // most the torn record, and recovery must still work on the prefix.
    let mut bytes = std::fs::read(&path).unwrap();
    let full_records = read_journal_bytes(&bytes).unwrap().records.len();
    let n = bytes.len();
    for b in &mut bytes[n - 7..] {
        *b ^= 0x5a;
    }
    let outcome = read_journal_bytes(&bytes).unwrap();
    assert!(outcome.truncated, "corrupted tail not flagged");
    assert!(outcome.records.len() >= full_records - 1);
    let prefix_core = RmCore::recover(
        presets::raptor_lake(),
        RmConfig::default(),
        &outcome.records,
    )
    .expect("prefix recovery succeeds");
    let replayed = RmCore::recover(
        presets::raptor_lake(),
        RmConfig::default(),
        &outcome.records,
    )
    .unwrap();
    assert_eq!(
        prefix_core.state_fingerprint(),
        replayed.state_fingerprint()
    );
    let _ = std::fs::remove_file(&path);
}

/// A tail cut landing *exactly* on a record boundary — in particular
/// right after a `SetPriority` record and right after a fault record —
/// must not be flagged as truncation, and the prefix must recover to
/// exactly the state those records describe. One byte less is a torn
/// record: flagged, and exactly one record is dropped.
#[test]
fn boundary_cuts_after_priority_and_fault_records_recover_exactly() {
    let ops = vec![
        (OP_REGISTER, 1),
        (OP_SUBMIT, 1),
        (OP_TICK, 1),
        (OP_SET_PRIORITY, 1),
        (OP_FAULT, 4), // app % 4 == 0: CoreFail of core (4*3)%8 = 4
        (OP_TICK, 1),
    ];
    let path = temp_journal("boundary");
    let _live = run_ops(&ops, &path);
    let bytes = std::fs::read(&path).unwrap();
    let full = read_journal_bytes(&bytes).unwrap();
    assert!(!full.truncated);

    // Probe every cut point; clean boundaries are the cuts the reader
    // accepts without a truncation flag.
    let boundaries: Vec<usize> = (0..=bytes.len())
        .filter(|&cut| read_journal_bytes(&bytes[..cut]).is_ok_and(|o| !o.truncated))
        .collect();

    let mut prio_cut = None;
    let mut fault_cut = None;
    for &cut in &boundaries {
        let torn = read_journal_bytes(&bytes[..cut]).unwrap();
        match torn.records.last() {
            Some(JournalRecord::SetPriority { .. }) => prio_cut = Some(cut),
            Some(JournalRecord::Fault { .. }) => fault_cut = Some(cut),
            _ => {}
        }
        // Every boundary prefix recovers bit-identically to replaying the
        // same record prefix of the undamaged journal.
        let a = RmCore::recover(presets::raptor_lake(), RmConfig::default(), &torn.records)
            .expect("boundary prefix recovers");
        let b = RmCore::recover(
            presets::raptor_lake(),
            RmConfig::default(),
            &full.records[..torn.records.len()],
        )
        .unwrap();
        assert_eq!(a.state_fingerprint(), b.state_fingerprint());
    }
    let prio_cut = prio_cut.expect("a boundary lands exactly after the SetPriority record");
    let fault_cut = fault_cut.expect("a boundary lands exactly after the fault record");

    // The fault-boundary prefix restores the degraded hardware state.
    let recs = read_journal_bytes(&bytes[..fault_cut]).unwrap().records;
    let degraded = RmCore::recover(presets::raptor_lake(), RmConfig::default(), &recs).unwrap();
    assert!(
        !degraded.core_available(CoreId(4)),
        "recovered prefix must remember the failed core"
    );
    // The priority-boundary prefix predates the fault: core still usable.
    let recs = read_journal_bytes(&bytes[..prio_cut]).unwrap().records;
    let healthy = RmCore::recover(presets::raptor_lake(), RmConfig::default(), &recs).unwrap();
    assert!(healthy.core_available(CoreId(4)));

    // One byte short of each boundary is a torn record: flagged, and the
    // reader drops exactly the record the boundary completed.
    for cut in [prio_cut, fault_cut] {
        let torn = read_journal_bytes(&bytes[..cut - 1]).unwrap();
        assert!(torn.truncated, "cut {} not flagged as torn", cut - 1);
        let clean = read_journal_bytes(&bytes[..cut]).unwrap();
        assert_eq!(torn.records.len() + 1, clean.records.len());
    }
    let _ = std::fs::remove_file(&path);
}
