//! Lifecycle invariants of [`RmCore`] under random operation interleavings.
//!
//! A random trace of register / submit / tick / deregister operations —
//! including duplicate registrations, deregistration of unknown apps and
//! skewed tick observations — must never panic, never leave a departed
//! application holding cores, and keep per-kind core allocation within
//! machine capacity whenever grants are disjoint (overlapping grants are
//! the explicit co-allocation fallback of paper §4.2.2).

use harp_platform::presets;
use harp_rm::{AppObservation, Directive, RmConfig, RmCore, TickObservations};
use harp_types::{AppId, ExtResourceVector, NonFunctional};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// One decoded trace operation: `(selector, app)` pairs from the strategy.
const OP_REGISTER: u8 = 0;
const OP_SUBMIT: u8 = 1;
const OP_TICK: u8 = 2;
const OP_DEREGISTER: u8 = 3;
const OP_SUBMIT_UNKNOWN: u8 = 4;
const OP_TICK_SKEWED: u8 = 5;

fn check_directives(
    directives: &[Directive],
    live: &HashSet<u64>,
    latest: &mut HashMap<u64, Directive>,
) -> Result<(), TestCaseError> {
    let hw = presets::raptor_lake();
    for d in directives {
        prop_assert!(
            live.contains(&d.app.raw()),
            "directive for departed app {}",
            d.app
        );
        // Cores are valid, unique, and match the vector's per-kind demand.
        let mut seen = HashSet::new();
        let mut per_kind = vec![0u32; hw.num_kinds()];
        for c in &d.cores {
            prop_assert!(c.0 < hw.num_cores(), "core id {} out of range", c.0);
            prop_assert!(seen.insert(c.0), "core {} granted twice to {}", c.0, d.app);
            per_kind[hw.kind_of_core(*c).unwrap().0] += 1;
        }
        for (kind, &granted) in per_kind.iter().enumerate() {
            prop_assert_eq!(granted, d.erv.cores_of_kind(kind));
        }
        prop_assert_eq!(d.hw_threads.len() as u32, d.parallelism);
        latest.insert(d.app.raw(), d.clone());
    }
    // Departed apps must not linger in the latest-grant view.
    latest.retain(|app, _| live.contains(app));
    // Capacity: when all live grants are disjoint, per-kind totals must fit.
    let mut all_cores = Vec::new();
    for d in latest.values() {
        all_cores.extend(d.cores.iter().map(|c| c.0));
    }
    let disjoint = {
        let unique: HashSet<_> = all_cores.iter().copied().collect();
        unique.len() == all_cores.len()
    };
    if disjoint {
        let capacity = hw.capacity();
        let mut per_kind = vec![0u32; hw.num_kinds()];
        for d in latest.values() {
            for (kind, total) in per_kind.iter_mut().enumerate() {
                *total += d.erv.cores_of_kind(kind);
            }
        }
        for (kind, &used) in per_kind.iter().enumerate() {
            prop_assert!(
                used <= capacity.count(harp_types::CoreKind(kind)),
                "kind {} oversubscribed without co-allocation: {} granted",
                kind,
                used
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_lifecycle_traces_hold_invariants(
        ops in proptest::collection::vec((0u8..=5, 1u64..=6), 1..40)
    ) {
        let hw = presets::raptor_lake();
        let shape = hw.erv_shape();
        let mut rm = RmCore::new(hw, RmConfig::default());
        let mut live: HashSet<u64> = HashSet::new();
        let mut latest: HashMap<u64, Directive> = HashMap::new();
        let mut cpu: HashMap<u64, Vec<f64>> = HashMap::new();
        let mut energy = 0.0f64;
        let mut solves = 0u32;
        let mut solve_work = 0.0f64;

        for (step, &(op, app)) in ops.iter().enumerate() {
            let out = match op {
                OP_REGISTER => {
                    let r = rm.register(AppId(app), &format!("app-{app}"), false);
                    if live.contains(&app) {
                        prop_assert!(r.is_err(), "step {step}: duplicate register accepted");
                        continue;
                    }
                    live.insert(app);
                    cpu.entry(app).or_insert_with(|| vec![0.0, 0.0]);
                    r.expect("fresh registration succeeds")
                }
                OP_SUBMIT => {
                    let points = vec![
                        (
                            ExtResourceVector::from_flat(&shape, &[0, 4, 0]).unwrap(),
                            NonFunctional::new(3.0e10, 40.0 + app as f64),
                        ),
                        (
                            ExtResourceVector::from_flat(&shape, &[0, 0, 8]).unwrap(),
                            NonFunctional::new(2.5e10, 15.0 + app as f64),
                        ),
                    ];
                    let r = rm.submit_points(AppId(app), points);
                    if !live.contains(&app) {
                        prop_assert!(r.is_err(), "step {step}: submit to unknown app accepted");
                        continue;
                    }
                    r.expect("submission to live app succeeds")
                }
                OP_DEREGISTER => {
                    let r = rm.deregister(AppId(app));
                    if !live.contains(&app) {
                        prop_assert!(r.is_err(), "step {step}: unknown deregistration accepted");
                        continue;
                    }
                    live.remove(&app);
                    r.expect("deregistration of live app succeeds")
                }
                OP_SUBMIT_UNKNOWN => {
                    prop_assert!(rm.submit_points(AppId(app + 1000), vec![]).is_err());
                    continue;
                }
                OP_TICK | OP_TICK_SKEWED => {
                    let dt = 0.05;
                    if op == OP_TICK {
                        energy += 1.0 + app as f64 * 0.1;
                    } else {
                        // Skew: the energy counter goes backwards (RAPL
                        // wrap / reset) — must clamp, not corrupt.
                        energy = (energy - 5.0).max(0.0);
                    }
                    let apps: Vec<AppObservation> = live
                        .iter()
                        .map(|&a| {
                            let c = cpu.get_mut(&a).expect("cpu tracked");
                            c[0] += dt;
                            AppObservation {
                                app: AppId(a),
                                utility_rate: 1.0e9 * (1.0 + a as f64),
                                cpu_time: c.clone(),
                            }
                        })
                        .collect();
                    rm.tick(&TickObservations { dt_s: dt, package_energy_j: energy, apps })
                        .expect("tick succeeds")
                }
                _ => unreachable!(),
            };
            solves += out.solves;
            solve_work += out.solve_work;
            check_directives(&out.directives, &live, &mut latest)?;
            // The RM's own view matches the mirror.
            let managed: HashSet<u64> = rm.managed_apps().iter().map(|a| a.raw()).collect();
            prop_assert_eq!(&managed, &live, "step {}: live-set mismatch", step);
        }
        // Warm-started rounds never cost more than full reference solves.
        prop_assert!(
            solve_work <= solves as f64 + 1e-9,
            "warm solve work {solve_work} exceeds {solves} full solves"
        );
    }
}
