//! Degraded-hardware state: core hotplug, thermal capacity caps, and
//! power-sensor dropout (DESIGN.md §15).
//!
//! [`FaultState`] tracks what the *hardware* currently is — which cores
//! are online, how hard each cluster is thermally capped, and whether the
//! package power sensor is reading. It is deliberately policy-free: the
//! quarantine state machine (who is *allowed* back) lives in `harp-rm`,
//! which combines hardware state and policy into a [`CoreAvailability`]
//! mask handed to the allocator.
//!
//! A thermal cap of `p` permille scales a cluster's effective IPS by
//! `p/1000` and shifts its power model to the correspondingly reduced
//! effective frequency — a throttled core both computes less and draws
//! less, matching DVFS-style clamping rather than duty cycling.

use crate::desc::HardwareDescription;
use harp_types::{CoreId, CoreKind, FaultEvent, ResourceVector, Result};

/// Nominal (healthy) thermal capacity in permille.
pub const CAP_NOMINAL_PERMILLE: u32 = 1000;

/// Current degradation of one physical platform.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultState {
    /// Per physical core: is it online (index = `CoreId.0`)?
    online: Vec<bool>,
    /// Per cluster: effective capacity in permille of nominal.
    cap_permille: Vec<u32>,
    /// Measurement ticks the power sensor stays dark for.
    sensor_drop_ticks: u64,
    /// Count of state-changing fault events applied so far.
    faults_injected: u64,
}

impl FaultState {
    /// A fully healthy platform: every core online, no caps, sensor live.
    pub fn new(hw: &HardwareDescription) -> Self {
        FaultState {
            online: vec![true; hw.num_cores()],
            cap_permille: vec![CAP_NOMINAL_PERMILLE; hw.clusters.len()],
            sensor_drop_ticks: 0,
            faults_injected: 0,
        }
    }

    /// True when nothing has ever degraded: all cores online, nominal
    /// caps, sensor live, and no fault applied.
    pub fn is_default(&self) -> bool {
        self.faults_injected == 0
            && self.sensor_drop_ticks == 0
            && self.online.iter().all(|&on| on)
            && self.cap_permille.iter().all(|&c| c == CAP_NOMINAL_PERMILLE)
    }

    /// Applies a fault event to the hardware state. Returns `true` when
    /// the state actually changed (and counts it); out-of-range targets
    /// and no-op transitions (failing an offline core, recovering an
    /// online one, re-asserting the current cap) return `false`.
    pub fn apply(&mut self, ev: &FaultEvent) -> bool {
        let changed = match *ev {
            FaultEvent::CoreFail { core } => self.set_online(core, false),
            FaultEvent::CoreRecover { core } => self.set_online(core, true),
            FaultEvent::ThermalCap { cluster, permille } => {
                self.set_cap_permille(cluster as usize, permille)
            }
            FaultEvent::SensorDrop { ticks } => {
                if ticks == 0 {
                    false
                } else {
                    self.sensor_drop_ticks = self.sensor_drop_ticks.max(ticks);
                    true
                }
            }
        };
        if changed {
            self.faults_injected += 1;
        }
        changed
    }

    /// Sets a core's online bit; returns `true` when it flipped.
    pub fn set_online(&mut self, core: CoreId, on: bool) -> bool {
        match self.online.get_mut(core.0) {
            Some(slot) if *slot != on => {
                *slot = on;
                true
            }
            _ => false,
        }
    }

    /// Is `core` online? Out-of-range cores are reported offline.
    pub fn is_online(&self, core: CoreId) -> bool {
        self.online.get(core.0).copied().unwrap_or(false)
    }

    /// Whether `core` names a real core of the platform this state was
    /// built for.
    pub fn core_in_range(&self, core: CoreId) -> bool {
        core.0 < self.online.len()
    }

    /// All currently offline cores, in core-id order.
    pub fn offline_cores(&self) -> Vec<CoreId> {
        self.online
            .iter()
            .enumerate()
            .filter(|(_, &on)| !on)
            .map(|(i, _)| CoreId(i))
            .collect()
    }

    /// Number of online cores.
    pub fn online_count(&self) -> usize {
        self.online.iter().filter(|&&on| on).count()
    }

    /// Sets a cluster's thermal cap, clamped to `1..=1000`; returns
    /// `true` when the effective cap changed.
    pub fn set_cap_permille(&mut self, cluster: usize, permille: u32) -> bool {
        let clamped = permille.clamp(1, CAP_NOMINAL_PERMILLE);
        match self.cap_permille.get_mut(cluster) {
            Some(slot) if *slot != clamped => {
                *slot = clamped;
                true
            }
            _ => false,
        }
    }

    /// The thermal cap of `cluster` in permille (nominal for unknown
    /// clusters, so callers can iterate defensively).
    pub fn cap_permille(&self, cluster: usize) -> u32 {
        self.cap_permille
            .get(cluster)
            .copied()
            .unwrap_or(CAP_NOMINAL_PERMILLE)
    }

    /// Remaining ticks of power-sensor dropout.
    pub fn sensor_drop_ticks(&self) -> u64 {
        self.sensor_drop_ticks
    }

    /// Forces the sensor-drop counter (journal/snapshot restore).
    pub fn set_sensor_drop_ticks(&mut self, ticks: u64) {
        self.sensor_drop_ticks = ticks;
    }

    /// Consumes one measurement tick; returns `true` when the sensor was
    /// dark for it (the reading must be discarded, not trusted).
    pub fn consume_sensor_tick(&mut self) -> bool {
        if self.sensor_drop_ticks > 0 {
            self.sensor_drop_ticks -= 1;
            true
        } else {
            false
        }
    }

    /// Count of state-changing fault events applied.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected
    }

    /// Forces the fault counter (journal/snapshot restore).
    pub fn set_faults_injected(&mut self, n: u64) {
        self.faults_injected = n;
    }

    /// Effective sustained rate of one hardware thread on `core` when
    /// `busy_siblings` threads of that core are active: zero if the core
    /// is offline, otherwise the cluster's nominal rate scaled by the
    /// thermal cap.
    pub fn thread_rate(
        &self,
        hw: &HardwareDescription,
        core: CoreId,
        freq_mhz: f64,
        busy_siblings: u32,
    ) -> Result<f64> {
        if !self.is_online(core) {
            return Ok(0.0);
        }
        let kind = hw.kind_of_core(core)?;
        let cluster = hw.cluster(kind)?;
        let cap = f64::from(self.cap_permille(kind.0)) / f64::from(CAP_NOMINAL_PERMILLE);
        Ok(cluster.thread_rate(freq_mhz, busy_siblings) * cap)
    }

    /// Effective power draw of `core` with `busy` active threads: zero
    /// if offline, otherwise the cluster's power model evaluated at the
    /// thermally clamped effective frequency (a throttled core runs as
    /// if DVFS had pinned it lower).
    pub fn core_power(
        &self,
        hw: &HardwareDescription,
        core: CoreId,
        freq_mhz: f64,
        busy: u32,
    ) -> Result<f64> {
        if !self.is_online(core) {
            return Ok(0.0);
        }
        let kind = hw.kind_of_core(core)?;
        let cluster = hw.cluster(kind)?;
        let cap = f64::from(self.cap_permille(kind.0)) / f64::from(CAP_NOMINAL_PERMILLE);
        Ok(cluster.core_power(freq_mhz * cap, busy))
    }
}

/// The set of cores the allocator may place work on: hardware-online
/// cores minus whatever policy (quarantine) holds out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreAvailability {
    available: Vec<bool>,
}

impl CoreAvailability {
    /// Every core of `hw` available.
    pub fn full(hw: &HardwareDescription) -> Self {
        CoreAvailability {
            available: vec![true; hw.num_cores()],
        }
    }

    /// Removes `core` from the usable set.
    pub fn ban(&mut self, core: CoreId) {
        if let Some(slot) = self.available.get_mut(core.0) {
            *slot = false;
        }
    }

    /// Is `core` usable? Out-of-range cores are not.
    pub fn is_available(&self, core: CoreId) -> bool {
        self.available.get(core.0).copied().unwrap_or(false)
    }

    /// True when no core is banned — the healthy fast path, on which the
    /// allocator must behave bit-identically to the pre-fault code.
    pub fn is_full(&self) -> bool {
        self.available.iter().all(|&a| a)
    }

    /// Number of usable cores.
    pub fn available_count(&self) -> usize {
        self.available.iter().filter(|&&a| a).count()
    }

    /// Effective MMKP capacity: usable cores per kind (the shrunk `R`
    /// of Eq. 1b under degradation).
    pub fn capacity(&self, hw: &HardwareDescription) -> ResourceVector {
        let mut counts = vec![0u32; hw.clusters.len()];
        for i in 0..hw.num_cores() {
            if self.is_available(CoreId(i)) {
                if let Ok(kind) = hw.kind_of_core(CoreId(i)) {
                    counts[kind.0] += 1;
                }
            }
        }
        ResourceVector::new(counts)
    }

    /// The usable cores of `kind`, in core-id order.
    ///
    /// # Errors
    ///
    /// Returns [`harp_types::HarpError::NotFound`] when `kind` is not a
    /// kind of `hw`.
    pub fn cores_of_kind(&self, hw: &HardwareDescription, kind: CoreKind) -> Result<Vec<CoreId>> {
        Ok(hw
            .cores_of_kind(kind)?
            .into_iter()
            .filter(|c| self.is_available(*c))
            .collect())
    }

    /// All usable cores, in core-id order.
    pub fn available_cores(&self) -> Vec<CoreId> {
        self.available
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| CoreId(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw() -> HardwareDescription {
        HardwareDescription::raptor_lake()
    }

    #[test]
    fn healthy_state_is_default_and_faults_count() {
        let hw = hw();
        let mut fs = FaultState::new(&hw);
        assert!(fs.is_default());
        assert!(fs.apply(&FaultEvent::CoreFail { core: CoreId(2) }));
        assert!(
            !fs.apply(&FaultEvent::CoreFail { core: CoreId(2) }),
            "no-op refail"
        );
        assert!(!fs.is_default());
        assert_eq!(fs.faults_injected(), 1);
        assert_eq!(fs.offline_cores(), vec![CoreId(2)]);
        assert!(fs.apply(&FaultEvent::CoreRecover { core: CoreId(2) }));
        assert_eq!(fs.online_count(), hw.num_cores());
        // Counter keeps history: recovered hardware is not "never faulted".
        assert!(!fs.is_default());
    }

    #[test]
    fn out_of_range_targets_are_rejected() {
        let hw = hw();
        let mut fs = FaultState::new(&hw);
        let bogus = CoreId(hw.num_cores() + 5);
        assert!(!fs.apply(&FaultEvent::CoreFail { core: bogus }));
        assert!(!fs.apply(&FaultEvent::ThermalCap {
            cluster: 99,
            permille: 500
        }));
        assert!(fs.is_default());
    }

    #[test]
    fn thermal_cap_scales_rate_and_shifts_power() {
        let hw = hw();
        let mut fs = FaultState::new(&hw);
        let core = CoreId(0);
        let kind = hw.kind_of_core(core).unwrap();
        let cluster = hw.cluster(kind).unwrap();
        let f = cluster.max_freq_mhz;
        let nominal_rate = fs.thread_rate(&hw, core, f, 1).unwrap();
        let nominal_power = fs.core_power(&hw, core, f, 1).unwrap();
        assert!(fs.apply(&FaultEvent::ThermalCap {
            cluster: kind.0 as u32,
            permille: 500
        }));
        let capped_rate = fs.thread_rate(&hw, core, f, 1).unwrap();
        let capped_power = fs.core_power(&hw, core, f, 1).unwrap();
        assert!((capped_rate - nominal_rate * 0.5).abs() < 1e-9);
        assert!(
            capped_power < nominal_power,
            "throttling must also reduce power ({capped_power} >= {nominal_power})"
        );
        // Offline dominates the cap.
        assert!(fs.apply(&FaultEvent::CoreFail { core }));
        assert_eq!(fs.thread_rate(&hw, core, f, 1).unwrap(), 0.0);
        assert_eq!(fs.core_power(&hw, core, f, 1).unwrap(), 0.0);
    }

    #[test]
    fn sensor_drop_accumulates_by_max_and_drains() {
        let hw = hw();
        let mut fs = FaultState::new(&hw);
        assert!(fs.apply(&FaultEvent::SensorDrop { ticks: 2 }));
        assert!(fs.apply(&FaultEvent::SensorDrop { ticks: 5 }));
        assert_eq!(fs.sensor_drop_ticks(), 5);
        let mut dark = 0;
        for _ in 0..8 {
            if fs.consume_sensor_tick() {
                dark += 1;
            }
        }
        assert_eq!(dark, 5);
        assert_eq!(fs.sensor_drop_ticks(), 0);
    }

    #[test]
    fn availability_masks_capacity_and_kind_lists() {
        let hw = hw();
        let mut avail = CoreAvailability::full(&hw);
        assert!(avail.is_full());
        assert_eq!(avail.capacity(&hw), hw.capacity());
        // Ban one P-core (0..8) and one E-core (8..24).
        avail.ban(CoreId(3));
        avail.ban(CoreId(10));
        assert!(!avail.is_full());
        assert_eq!(avail.available_count(), hw.num_cores() - 2);
        assert_eq!(
            avail.capacity(&hw).counts(),
            &[hw.capacity().counts()[0] - 1, hw.capacity().counts()[1] - 1]
        );
        let p_cores = avail.cores_of_kind(&hw, CoreKind(0)).unwrap();
        assert!(!p_cores.contains(&CoreId(3)));
        assert_eq!(p_cores.len() as u32, hw.capacity().counts()[0] - 1);
        assert!(!avail.is_available(CoreId(hw.num_cores() + 1)));
    }
}
