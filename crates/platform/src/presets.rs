//! Calibrated hardware descriptions of the paper's two evaluation systems.
//!
//! The absolute parameter values are *calibrated estimates*, not
//! measurements: they reproduce the published relationships that drive
//! HARP's decisions — single-thread performance ratios between core kinds,
//! SMT scaling, and the large efficiency advantage of the small cores — on
//! the frequency caps the paper uses (§6.1: 4.6 GHz P / 3.8 GHz E on the
//! Intel system; 1.8 GHz big / 1.2 GHz LITTLE on the Odroid).

use crate::desc::{ClusterDesc, HardwareDescription, PerfParams, PowerParams};

/// Intel Raptor Lake Core i9-13900K: 8 P-cores with 2-way SMT (kind 0) and
/// 16 E-cores (kind 1).
///
/// Calibration notes:
/// * P-core single-thread rate ≈ 1.8× an E-core (typical Raptor Cove vs
///   Gracemont at the capped frequencies).
/// * A second P-core SMT sibling yields ≈ +30 % core throughput
///   (`smt_rate_factor = 0.65`).
/// * An active E-core draws roughly 5–6× less power than an active P-core,
///   making E-cores ≈ 2.5–3× more efficient in work/J.
pub fn raptor_lake() -> HardwareDescription {
    HardwareDescription {
        name: "Intel Raptor Lake Core i9-13900K".to_string(),
        clusters: vec![
            ClusterDesc {
                kind_name: "P-core".to_string(),
                cores: 8,
                smt_width: 2,
                min_freq_mhz: 800.0,
                max_freq_mhz: 4600.0,
                perf: PerfParams {
                    ips_per_thread: 9.2e9,
                    smt_rate_factor: 0.65,
                },
                power: PowerParams {
                    core_idle_w: 0.70,
                    core_active_w: 8.0,
                    smt_active_extra: 0.22,
                    cluster_static_w: 3.0,
                },
            },
            ClusterDesc {
                kind_name: "E-core".to_string(),
                cores: 16,
                smt_width: 1,
                min_freq_mhz: 800.0,
                max_freq_mhz: 3800.0,
                perf: PerfParams {
                    ips_per_thread: 5.1e9,
                    smt_rate_factor: 1.0,
                },
                power: PowerParams {
                    core_idle_w: 0.20,
                    core_active_w: 2.0,
                    smt_active_extra: 0.0,
                    cluster_static_w: 2.5,
                },
            },
        ],
        package_static_w: 14.0,
        // Aggregate DRAM bandwidth expressed as sustainable work-unit rate
        // for fully memory-bound code: roughly the rate of 10 E-cores
        // (DDR5 keeps class-C NPB codes scaling well past a handful of
        // threads; only the most bandwidth-hungry kernels saturate).
        mem_bandwidth: 50.0e9,
    }
}

/// Odroid XU3-E (Samsung Exynos 5422): 4 Cortex-A15 *big* cores (kind 0) and
/// 4 Cortex-A7 *LITTLE* cores (kind 1), no SMT.
///
/// Calibration notes:
/// * A15 at 1.8 GHz ≈ 2.8× the throughput of an A7 at 1.2 GHz.
/// * A15 cores draw ≈ 6× the power of A7 cores, making the LITTLE cluster
///   ≈ 2× more efficient — the published big.LITTLE trade-off.
pub fn odroid_xu3() -> HardwareDescription {
    HardwareDescription {
        name: "Odroid XU3-E (Exynos 5422)".to_string(),
        clusters: vec![
            ClusterDesc {
                kind_name: "A15 (big)".to_string(),
                cores: 4,
                smt_width: 1,
                min_freq_mhz: 200.0,
                max_freq_mhz: 1800.0,
                perf: PerfParams {
                    ips_per_thread: 2.7e9,
                    smt_rate_factor: 1.0,
                },
                power: PowerParams {
                    core_idle_w: 0.08,
                    core_active_w: 1.45,
                    smt_active_extra: 0.0,
                    cluster_static_w: 0.35,
                },
            },
            ClusterDesc {
                kind_name: "A7 (LITTLE)".to_string(),
                cores: 4,
                smt_width: 1,
                min_freq_mhz: 200.0,
                max_freq_mhz: 1200.0,
                perf: PerfParams {
                    ips_per_thread: 0.95e9,
                    smt_rate_factor: 1.0,
                },
                power: PowerParams {
                    core_idle_w: 0.02,
                    core_active_w: 0.24,
                    smt_active_extra: 0.0,
                    cluster_static_w: 0.12,
                },
            },
        ],
        package_static_w: 0.9,
        // LPDDR3 bandwidth: roughly the demand of 3 A15 cores of fully
        // memory-bound code.
        mem_bandwidth: 8.0e9,
    }
}

/// A deliberately tiny two-kind machine for tests: 2 big SMT cores and
/// 2 little cores. Small enough to enumerate every configuration by hand.
pub fn tiny_test() -> HardwareDescription {
    HardwareDescription {
        name: "tiny-test".to_string(),
        clusters: vec![
            ClusterDesc {
                kind_name: "big".to_string(),
                cores: 2,
                smt_width: 2,
                min_freq_mhz: 1000.0,
                max_freq_mhz: 2000.0,
                perf: PerfParams {
                    ips_per_thread: 2.0e9,
                    smt_rate_factor: 0.6,
                },
                power: PowerParams {
                    core_idle_w: 0.1,
                    core_active_w: 2.0,
                    smt_active_extra: 0.2,
                    cluster_static_w: 0.2,
                },
            },
            ClusterDesc {
                kind_name: "little".to_string(),
                cores: 2,
                smt_width: 1,
                min_freq_mhz: 1000.0,
                max_freq_mhz: 1500.0,
                perf: PerfParams {
                    ips_per_thread: 1.0e9,
                    smt_rate_factor: 1.0,
                },
                power: PowerParams {
                    core_idle_w: 0.05,
                    core_active_w: 0.5,
                    smt_active_extra: 0.0,
                    cluster_static_w: 0.1,
                },
            },
        ],
        package_static_w: 0.5,
        mem_bandwidth: 4.0e9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        raptor_lake().validate().unwrap();
        odroid_xu3().validate().unwrap();
        tiny_test().validate().unwrap();
    }

    #[test]
    fn odroid_big_little_ratios() {
        let hw = odroid_xu3();
        let big = &hw.clusters[0];
        let little = &hw.clusters[1];
        let perf_ratio =
            big.thread_rate(big.max_freq_mhz, 1) / little.thread_rate(little.max_freq_mhz, 1);
        assert!(
            perf_ratio > 2.0 && perf_ratio < 4.0,
            "perf ratio {perf_ratio}"
        );
        let eff_big = big.thread_rate(big.max_freq_mhz, 1) / big.core_power(big.max_freq_mhz, 1);
        let eff_little =
            little.thread_rate(little.max_freq_mhz, 1) / little.core_power(little.max_freq_mhz, 1);
        assert!(eff_little > 1.5 * eff_big);
    }

    #[test]
    fn tiny_has_manageable_config_space() {
        use harp_types::ExtResourceVector;
        let hw = tiny_test();
        let all = ExtResourceVector::enumerate(&hw.erv_shape(), &hw.capacity()).unwrap();
        // big: histograms over 2 slots with sum<=2 -> 6; little: 3. Total 18.
        assert_eq!(all.len(), 18);
    }
}
