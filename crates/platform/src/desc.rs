//! The hardware description data model.

use harp_types::{CoreId, CoreKind, ErvShape, HarpError, HwThreadId, ResourceVector, Result};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Performance parameters of one core kind.
///
/// Rates are expressed in abstract *work units per second* — for generic
/// applications one work unit corresponds to one retired instruction, so the
/// rate is directly an IPS figure (what `perf` reports in the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfParams {
    /// Work units per second of a single hardware thread running alone on
    /// the core at maximum frequency.
    pub ips_per_thread: f64,
    /// Per-sibling rate factor when both SMT siblings of a core are busy
    /// (e.g. `0.65`: each sibling runs at 65 %, the core totals 130 %).
    /// Irrelevant (use `1.0`) for single-threaded cores.
    pub smt_rate_factor: f64,
}

/// Power parameters of one core kind.
///
/// The per-core power model integrated by the simulator is
///
/// ```text
/// P(core) = idle_w                                   (no busy thread)
/// P(core) = idle_w + active_w · (f/f_max)³ · s(a)    (a ≥ 1 busy threads)
/// s(a)    = 1 + smt_active_extra · (a − 1)
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerParams {
    /// Power of an idle core in watts (clock-gated but not power-gated).
    pub core_idle_w: f64,
    /// Additional power of a busy core at maximum frequency, single busy
    /// hardware thread, in watts.
    pub core_active_w: f64,
    /// Relative extra active power per additional busy SMT sibling
    /// (e.g. `0.25`: the second sibling adds 25 % active power).
    pub smt_active_extra: f64,
    /// Static (frequency-independent) power of the whole cluster in watts
    /// (interconnect, shared cache).
    pub cluster_static_w: f64,
}

/// One homogeneous cluster of cores (one *core kind*).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterDesc {
    /// Human-readable kind name ("P-core", "E-core", "A15", "A7").
    pub kind_name: String,
    /// Number of physical cores in the cluster.
    pub cores: u32,
    /// Hardware threads per core (1 = no SMT).
    pub smt_width: usize,
    /// Minimum operating frequency in MHz.
    pub min_freq_mhz: f64,
    /// Maximum operating frequency in MHz. The paper caps this below the
    /// turbo limit to avoid thermal throttling (§6.1); the presets encode the
    /// capped values.
    pub max_freq_mhz: f64,
    /// Performance parameters.
    pub perf: PerfParams,
    /// Power parameters.
    pub power: PowerParams,
}

impl ClusterDesc {
    /// Total hardware threads in the cluster.
    pub fn hw_threads(&self) -> u32 {
        self.cores * self.smt_width as u32
    }

    /// Per-thread execution rate (work units/s) at frequency `freq_mhz` with
    /// `busy_siblings` busy hardware threads on the core (including the
    /// thread itself).
    pub fn thread_rate(&self, freq_mhz: f64, busy_siblings: u32) -> f64 {
        let f = (freq_mhz / self.max_freq_mhz).clamp(0.0, 1.0);
        let smt = if busy_siblings > 1 {
            self.perf.smt_rate_factor
        } else {
            1.0
        };
        self.perf.ips_per_thread * f * smt
    }

    /// Power of one core in watts at frequency `freq_mhz` with `busy`
    /// busy hardware threads.
    pub fn core_power(&self, freq_mhz: f64, busy: u32) -> f64 {
        if busy == 0 {
            return self.power.core_idle_w;
        }
        let f = (freq_mhz / self.max_freq_mhz).clamp(0.0, 1.0);
        let smt_scale = 1.0 + self.power.smt_active_extra * (busy.saturating_sub(1)) as f64;
        self.power.core_idle_w + self.power.core_active_w * f.powi(3) * smt_scale
    }
}

/// A complete machine description: the input the HARP RM receives instead of
/// probing hardware (paper Fig. 2, item (1)).
///
/// Core and hardware-thread numbering is *cluster-major*: cluster 0 owns
/// cores `0..c0` and cluster 1 owns cores `c0..c0+c1`; each core's hardware
/// threads are consecutive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareDescription {
    /// Machine name (for reports).
    pub name: String,
    /// Per-kind clusters; the index in this vector is the [`CoreKind`].
    pub clusters: Vec<ClusterDesc>,
    /// Package-level static power in watts (memory controller, fabric, I/O)
    /// — drawn whenever the machine is on.
    pub package_static_w: f64,
    /// Aggregate memory bandwidth expressed as the total work-unit rate the
    /// memory system can sustain for fully memory-bound code (work units/s).
    pub mem_bandwidth: f64,
}

impl HardwareDescription {
    /// Shorthand for the Intel Raptor Lake preset (see [`presets`](crate::presets)).
    pub fn raptor_lake() -> Self {
        crate::presets::raptor_lake()
    }

    /// Shorthand for the Odroid XU3-E preset (see [`presets`](crate::presets)).
    pub fn odroid_xu3() -> Self {
        crate::presets::odroid_xu3()
    }

    /// Number of core kinds.
    pub fn num_kinds(&self) -> usize {
        self.clusters.len()
    }

    /// The cluster description of `kind`.
    ///
    /// # Errors
    ///
    /// Returns [`HarpError::UnknownCoreKind`] if `kind` is out of range.
    pub fn cluster(&self, kind: CoreKind) -> Result<&ClusterDesc> {
        self.clusters.get(kind.0).ok_or(HarpError::UnknownCoreKind {
            kind: kind.0,
            num_kinds: self.clusters.len(),
        })
    }

    /// The extended-resource-vector shape of this platform (per-kind SMT
    /// widths).
    pub fn erv_shape(&self) -> ErvShape {
        ErvShape::new(self.clusters.iter().map(|c| c.smt_width).collect())
    }

    /// Platform capacity: cores per kind (the `R` of Eq. 1b).
    pub fn capacity(&self) -> ResourceVector {
        self.clusters.iter().map(|c| c.cores).collect()
    }

    /// Total number of physical cores.
    pub fn num_cores(&self) -> usize {
        self.clusters.iter().map(|c| c.cores as usize).sum()
    }

    /// Total number of hardware threads.
    pub fn total_hw_threads(&self) -> usize {
        self.clusters.iter().map(|c| c.hw_threads() as usize).sum()
    }

    /// The core kind of physical core `core`.
    ///
    /// # Errors
    ///
    /// Returns [`HarpError::NotFound`] if the core id is out of range.
    pub fn kind_of_core(&self, core: CoreId) -> Result<CoreKind> {
        let mut base = 0usize;
        for (k, c) in self.clusters.iter().enumerate() {
            if core.0 < base + c.cores as usize {
                return Ok(CoreKind(k));
            }
            base += c.cores as usize;
        }
        Err(HarpError::not_found(format!("{core}")))
    }

    /// The physical core that hardware thread `thread` belongs to.
    ///
    /// # Errors
    ///
    /// Returns [`HarpError::NotFound`] if the thread id is out of range.
    pub fn core_of_thread(&self, thread: HwThreadId) -> Result<CoreId> {
        let mut thread_base = 0usize;
        let mut core_base = 0usize;
        for c in &self.clusters {
            let cluster_threads = c.hw_threads() as usize;
            if thread.0 < thread_base + cluster_threads {
                let within = thread.0 - thread_base;
                return Ok(CoreId(core_base + within / c.smt_width));
            }
            thread_base += cluster_threads;
            core_base += c.cores as usize;
        }
        Err(HarpError::not_found(format!("{thread}")))
    }

    /// The hardware-thread ids of physical core `core`.
    ///
    /// # Errors
    ///
    /// Returns [`HarpError::NotFound`] if the core id is out of range.
    pub fn threads_of_core(&self, core: CoreId) -> Result<Vec<HwThreadId>> {
        let mut thread_base = 0usize;
        let mut core_base = 0usize;
        for c in &self.clusters {
            if core.0 < core_base + c.cores as usize {
                let within = core.0 - core_base;
                let start = thread_base + within * c.smt_width;
                return Ok((start..start + c.smt_width).map(HwThreadId).collect());
            }
            thread_base += c.hw_threads() as usize;
            core_base += c.cores as usize;
        }
        Err(HarpError::not_found(format!("{core}")))
    }

    /// The core ids belonging to `kind`, in ascending order.
    ///
    /// # Errors
    ///
    /// Returns [`HarpError::UnknownCoreKind`] if `kind` is out of range.
    pub fn cores_of_kind(&self, kind: CoreKind) -> Result<Vec<CoreId>> {
        self.cluster(kind)?;
        let mut base = 0usize;
        for c in &self.clusters[..kind.0] {
            base += c.cores as usize;
        }
        let n = self.clusters[kind.0].cores as usize;
        Ok((base..base + n).map(CoreId).collect())
    }

    /// Checks internal consistency (positive rates/powers/frequencies,
    /// nonzero clusters).
    ///
    /// # Errors
    ///
    /// Returns [`HarpError::Description`] describing the first violation.
    pub fn validate(&self) -> Result<()> {
        // "Not strictly positive", with NaN counted as invalid.
        let not_pos = |x: f64| x.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater);
        if self.clusters.is_empty() {
            return Err(HarpError::Description {
                detail: "hardware description needs at least one cluster".into(),
            });
        }
        for (k, c) in self.clusters.iter().enumerate() {
            let ctx = format!("cluster {k} ({})", c.kind_name);
            if c.cores == 0 {
                return Err(HarpError::Description {
                    detail: format!("{ctx}: zero cores"),
                });
            }
            if c.smt_width == 0 {
                return Err(HarpError::Description {
                    detail: format!("{ctx}: zero SMT width"),
                });
            }
            if not_pos(c.max_freq_mhz) || c.min_freq_mhz > c.max_freq_mhz || c.min_freq_mhz < 0.0 {
                return Err(HarpError::Description {
                    detail: format!("{ctx}: invalid frequency range"),
                });
            }
            if not_pos(c.perf.ips_per_thread)
                || not_pos(c.perf.smt_rate_factor)
                || c.perf.smt_rate_factor > 1.0
            {
                return Err(HarpError::Description {
                    detail: format!("{ctx}: invalid performance parameters"),
                });
            }
            if c.power.core_idle_w < 0.0
                || not_pos(c.power.core_active_w)
                || c.power.smt_active_extra < 0.0
                || c.power.cluster_static_w < 0.0
            {
                return Err(HarpError::Description {
                    detail: format!("{ctx}: invalid power parameters"),
                });
            }
        }
        if self.package_static_w < 0.0 || not_pos(self.mem_bandwidth) {
            return Err(HarpError::Description {
                detail: "invalid package power or memory bandwidth".into(),
            });
        }
        Ok(())
    }

    /// Serializes the description to pretty JSON (the on-disk format of
    /// `/etc/harp/hardware.json`).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("hardware description serializes")
    }

    /// Parses a description from JSON and validates it.
    ///
    /// # Errors
    ///
    /// Returns [`HarpError::Description`] on malformed JSON or failed
    /// validation.
    pub fn from_json(json: &str) -> Result<Self> {
        let hw: HardwareDescription =
            serde_json::from_str(json).map_err(|e| HarpError::Description {
                detail: format!("malformed hardware description: {e}"),
            })?;
        hw.validate()?;
        Ok(hw)
    }

    /// Loads a description file from disk.
    ///
    /// # Errors
    ///
    /// Returns [`HarpError::Io`] if the file cannot be read and
    /// [`HarpError::Description`] if its content is invalid.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text)
    }

    /// Stores the description to disk as JSON.
    ///
    /// # Errors
    ///
    /// Returns [`HarpError::Io`] if the file cannot be written.
    pub fn store(&self, path: impl AsRef<Path>) -> Result<()> {
        std::fs::write(path, self.to_json())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn raptor_lake_topology() {
        let hw = presets::raptor_lake();
        hw.validate().unwrap();
        assert_eq!(hw.num_kinds(), 2);
        assert_eq!(hw.num_cores(), 24);
        assert_eq!(hw.total_hw_threads(), 32);
        assert_eq!(hw.capacity(), ResourceVector::new(vec![8, 16]));
        assert_eq!(hw.erv_shape(), ErvShape::new(vec![2, 1]));
        // Core 0..8 are P-cores, 8..24 E-cores.
        assert_eq!(hw.kind_of_core(CoreId(0)).unwrap(), CoreKind(0));
        assert_eq!(hw.kind_of_core(CoreId(7)).unwrap(), CoreKind(0));
        assert_eq!(hw.kind_of_core(CoreId(8)).unwrap(), CoreKind(1));
        assert_eq!(hw.kind_of_core(CoreId(23)).unwrap(), CoreKind(1));
        assert!(hw.kind_of_core(CoreId(24)).is_err());
        // Threads 0..16 belong to P-cores pairwise; 16..32 to E-cores.
        assert_eq!(hw.core_of_thread(HwThreadId(0)).unwrap(), CoreId(0));
        assert_eq!(hw.core_of_thread(HwThreadId(1)).unwrap(), CoreId(0));
        assert_eq!(hw.core_of_thread(HwThreadId(15)).unwrap(), CoreId(7));
        assert_eq!(hw.core_of_thread(HwThreadId(16)).unwrap(), CoreId(8));
        assert_eq!(hw.core_of_thread(HwThreadId(31)).unwrap(), CoreId(23));
        assert!(hw.core_of_thread(HwThreadId(32)).is_err());
        assert_eq!(
            hw.threads_of_core(CoreId(0)).unwrap(),
            vec![HwThreadId(0), HwThreadId(1)]
        );
        assert_eq!(hw.threads_of_core(CoreId(8)).unwrap(), vec![HwThreadId(16)]);
        assert_eq!(
            hw.cores_of_kind(CoreKind(1)).unwrap().first(),
            Some(&CoreId(8))
        );
    }

    #[test]
    fn odroid_topology() {
        let hw = presets::odroid_xu3();
        hw.validate().unwrap();
        assert_eq!(hw.num_cores(), 8);
        assert_eq!(hw.total_hw_threads(), 8);
        assert_eq!(hw.capacity(), ResourceVector::new(vec![4, 4]));
        assert_eq!(hw.erv_shape(), ErvShape::new(vec![1, 1]));
    }

    #[test]
    fn p_cores_faster_e_cores_more_efficient() {
        let hw = presets::raptor_lake();
        let p = &hw.clusters[0];
        let e = &hw.clusters[1];
        let p_rate = p.thread_rate(p.max_freq_mhz, 1);
        let e_rate = e.thread_rate(e.max_freq_mhz, 1);
        assert!(p_rate > 1.4 * e_rate, "P-cores must be clearly faster");
        let p_eff = p_rate / p.core_power(p.max_freq_mhz, 1);
        let e_eff = e_rate / e.core_power(e.max_freq_mhz, 1);
        assert!(
            e_eff > 1.5 * p_eff,
            "E-cores must be clearly more energy efficient: {e_eff} vs {p_eff}"
        );
    }

    #[test]
    fn smt_increases_core_throughput_but_not_per_thread() {
        let hw = presets::raptor_lake();
        let p = &hw.clusters[0];
        let alone = p.thread_rate(p.max_freq_mhz, 1);
        let shared = p.thread_rate(p.max_freq_mhz, 2);
        assert!(shared < alone);
        assert!(2.0 * shared > alone, "two siblings beat one thread");
    }

    #[test]
    fn power_model_monotonic_in_freq_and_busy() {
        let hw = presets::raptor_lake();
        let p = &hw.clusters[0];
        assert_eq!(p.core_power(p.max_freq_mhz, 0), p.power.core_idle_w);
        let half = p.core_power(p.max_freq_mhz / 2.0, 1);
        let full = p.core_power(p.max_freq_mhz, 1);
        let full_smt = p.core_power(p.max_freq_mhz, 2);
        assert!(half < full);
        assert!(full < full_smt);
        // Cubic scaling: half frequency ≈ 1/8 dynamic power.
        let dyn_half = half - p.power.core_idle_w;
        let dyn_full = full - p.power.core_idle_w;
        assert!((dyn_half / dyn_full - 0.125).abs() < 1e-9);
    }

    #[test]
    fn json_round_trip() {
        let hw = presets::raptor_lake();
        let json = hw.to_json();
        let back = HardwareDescription::from_json(&json).unwrap();
        assert_eq!(hw, back);
    }

    #[test]
    fn from_json_rejects_invalid() {
        assert!(HardwareDescription::from_json("not json").is_err());
        let mut hw = presets::raptor_lake();
        hw.clusters[0].cores = 0;
        let json = serde_json::to_string(&hw).unwrap();
        assert!(matches!(
            HardwareDescription::from_json(&json),
            Err(HarpError::Description { .. })
        ));
    }

    #[test]
    fn load_store_round_trip() {
        let hw = presets::odroid_xu3();
        let dir = std::env::temp_dir().join(format!("harp-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hw.json");
        hw.store(&path).unwrap();
        let back = HardwareDescription::load(&path).unwrap();
        assert_eq!(hw, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        let base = presets::raptor_lake();
        let mut a = base.clone();
        a.clusters.clear();
        assert!(a.validate().is_err());
        let mut b = base.clone();
        b.clusters[0].perf.smt_rate_factor = 1.5;
        assert!(b.validate().is_err());
        let mut c = base.clone();
        c.clusters[1].min_freq_mhz = 1e9;
        assert!(c.validate().is_err());
        let mut d = base.clone();
        d.mem_bandwidth = 0.0;
        assert!(d.validate().is_err());
        let mut e = base;
        e.clusters[0].power.core_active_w = 0.0;
        assert!(e.validate().is_err());
    }
}
