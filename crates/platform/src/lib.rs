//! Hardware descriptions for heterogeneous processors.
//!
//! The HARP RM deliberately contains no hard-coded hardware knowledge: the
//! platform is supplied at runtime through a *hardware description file*
//! (paper §4, item (1); §4.3 "configuration data … is stored in a directory
//! such as /etc/harp"). This crate defines that description:
//!
//! * [`HardwareDescription`] — clusters of identical cores, their SMT widths,
//!   frequency ranges, and the performance/power parameters that the machine
//!   simulator (`harp-sim`) and the energy-attribution logic (`harp-energy`)
//!   consume.
//! * [`Governor`] — models of the Linux frequency-scaling governors used in
//!   the paper's evaluation (`performance`, `powersave`, `schedutil`).
//! * [`FaultState`]/[`CoreAvailability`] — the degraded-hardware layer:
//!   per-core hotplug, per-cluster thermal capacity caps, power-sensor
//!   dropout, and the allocator-facing usable-core mask (DESIGN.md §15).
//! * [`presets`] — calibrated descriptions of the paper's two evaluation
//!   systems: the Intel Raptor Lake Core i9-13900K and the Odroid XU3-E
//!   (Samsung Exynos 5422 big.LITTLE).
//!
//! # Example
//!
//! ```
//! use harp_platform::HardwareDescription;
//!
//! let hw = HardwareDescription::raptor_lake();
//! assert_eq!(hw.num_kinds(), 2);
//! assert_eq!(hw.capacity().counts(), &[8, 16]);
//! assert_eq!(hw.total_hw_threads(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod desc;
mod fault;
mod governor;
pub mod presets;

pub use desc::{ClusterDesc, HardwareDescription, PerfParams, PowerParams};
pub use fault::{CoreAvailability, FaultState, CAP_NOMINAL_PERMILLE};
pub use governor::Governor;
