//! Models of the Linux frequency-scaling governors used in the evaluation
//! (paper §6.1 and §6.3.3).
//!
//! The paper runs the default governor (`powersave` with HWP on Intel,
//! `schedutil` on the Odroid) and repeats the Intel experiments under
//! `performance` to study the interaction between DVFS and HARP. The models
//! here capture the governors' steady-state frequency choice as a function
//! of cluster utilization; they are evaluated per cluster at every
//! simulation step.

use crate::desc::ClusterDesc;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A frequency-scaling governor model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Governor {
    /// Always run at the maximum allowed frequency. Disables the processor's
    /// energy-saving ramping (paper §6.3.3).
    Performance,
    /// Intel HWP-style default: scales frequency with utilization but ramps
    /// conservatively below saturation (sub-linear in utilization).
    Powersave,
    /// The mainline `schedutil` governor: `f = 1.25 · util · f_max`,
    /// clamped to the cluster's frequency range.
    #[default]
    Schedutil,
}

impl Governor {
    /// Steady-state frequency (MHz) the governor selects for a cluster given
    /// the fraction of its hardware threads that are busy (`0.0..=1.0`).
    ///
    /// Real DVFS governors track *per-CPU* utilization and raise the shared
    /// frequency domain to satisfy its busiest CPU, so a cluster with any
    /// fully-busy hardware thread runs at (or near) the cap: `schedutil`
    /// jumps straight to the maximum, while HWP-`powersave` biases a few
    /// percent below the cap for lightly-occupied clusters — the small
    /// difference the paper observes in §6.3.3.
    ///
    /// # Example
    ///
    /// ```
    /// use harp_platform::{Governor, HardwareDescription};
    /// let hw = HardwareDescription::raptor_lake();
    /// let p = &hw.clusters[0];
    /// assert_eq!(Governor::Performance.frequency(p, 0.0), p.max_freq_mhz);
    /// assert!(Governor::Powersave.frequency(p, 0.1) < p.max_freq_mhz);
    /// // Saturated clusters run at the cap under every governor.
    /// assert!(Governor::Schedutil.frequency(p, 1.0) >= p.max_freq_mhz * 0.99);
    /// ```
    pub fn frequency(&self, cluster: &ClusterDesc, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        let (lo, hi) = (cluster.min_freq_mhz, cluster.max_freq_mhz);
        match self {
            Governor::Performance => hi,
            Governor::Powersave => {
                if u == 0.0 {
                    lo
                } else {
                    // Energy-biased HWP: 90 % of the range for a single busy
                    // CPU, ramping to the cap as the cluster fills up.
                    lo + (hi - lo) * (0.90 + 0.10 * u)
                }
            }
            Governor::Schedutil => {
                if u == 0.0 {
                    lo
                } else {
                    hi
                }
            }
        }
    }

    /// The platform-default governor the paper uses for each system
    /// (§6.1): `powersave` on Intel machines, `schedutil` on Arm boards.
    pub fn platform_default(machine_name: &str) -> Governor {
        if machine_name.to_ascii_lowercase().contains("intel") {
            Governor::Powersave
        } else {
            Governor::Schedutil
        }
    }
}

impl fmt::Display for Governor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Governor::Performance => "performance",
            Governor::Powersave => "powersave",
            Governor::Schedutil => "schedutil",
        };
        f.write_str(name)
    }
}

impl FromStr for Governor {
    type Err = harp_types::HarpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "performance" => Ok(Governor::Performance),
            "powersave" => Ok(Governor::Powersave),
            "schedutil" => Ok(Governor::Schedutil),
            other => Err(harp_types::HarpError::Description {
                detail: format!("unknown governor '{other}'"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn performance_ignores_utilization() {
        let hw = presets::raptor_lake();
        let c = &hw.clusters[0];
        for u in [0.0, 0.3, 1.0] {
            assert_eq!(Governor::Performance.frequency(c, u), c.max_freq_mhz);
        }
    }

    #[test]
    fn scaling_governors_are_monotonic() {
        let hw = presets::raptor_lake();
        let c = &hw.clusters[1];
        for g in [Governor::Powersave, Governor::Schedutil] {
            let mut last = 0.0;
            for i in 0..=10 {
                let f = g.frequency(c, i as f64 / 10.0);
                assert!(f >= last, "{g} not monotonic at {i}");
                assert!(f >= c.min_freq_mhz && f <= c.max_freq_mhz);
                last = f;
            }
            // Saturated load -> full frequency.
            assert!((g.frequency(c, 1.0) - c.max_freq_mhz).abs() < 1.0);
        }
    }

    #[test]
    fn busy_cpus_drive_the_domain_to_the_cap() {
        let hw = presets::odroid_xu3();
        let c = &hw.clusters[0];
        // Any busy CPU raises the shared frequency domain to the cap under
        // schedutil (per-CPU utilization semantics).
        assert_eq!(Governor::Schedutil.frequency(c, 1.0 / 4.0), c.max_freq_mhz);
        assert_eq!(Governor::Schedutil.frequency(c, 0.0), c.min_freq_mhz);
        // Powersave stays a few percent below the cap for light occupancy.
        let f = Governor::Powersave.frequency(c, 1.0 / 4.0);
        assert!(f < c.max_freq_mhz && f > 0.85 * c.max_freq_mhz);
    }

    #[test]
    fn utilization_is_clamped() {
        let hw = presets::raptor_lake();
        let c = &hw.clusters[0];
        assert_eq!(
            Governor::Schedutil.frequency(c, 7.0),
            Governor::Schedutil.frequency(c, 1.0)
        );
        assert_eq!(
            Governor::Powersave.frequency(c, -3.0),
            Governor::Powersave.frequency(c, 0.0)
        );
    }

    #[test]
    fn display_and_parse_round_trip() {
        for g in [
            Governor::Performance,
            Governor::Powersave,
            Governor::Schedutil,
        ] {
            let s = g.to_string();
            assert_eq!(s.parse::<Governor>().unwrap(), g);
        }
        assert!("ondemand".parse::<Governor>().is_err());
    }

    #[test]
    fn platform_defaults_match_paper() {
        assert_eq!(
            Governor::platform_default("Intel Raptor Lake Core i9-13900K"),
            Governor::Powersave
        );
        assert_eq!(
            Governor::platform_default("Odroid XU3-E (Exynos 5422)"),
            Governor::Schedutil
        );
    }
}
