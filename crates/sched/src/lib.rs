//! Resource managers driving the simulated machine: the paper's baselines
//! and the HARP RM adapter.
//!
//! * [`CfsManager`] — the Linux CFS baseline (§6.3): no affinity, default
//!   thread counts, fair spreading and time-sharing. This is the *1.0×*
//!   reference of Fig. 6.
//! * [`EasManager`] — the Linux Energy-Aware Scheduler baseline on
//!   big.LITTLE (§6.4): PELT-style utilization tracking; low-utilization
//!   applications are steered to the LITTLE cluster, high-utilization ones
//!   follow capacity. The *1.0×* reference of Fig. 7.
//! * [`ItdManager`] — the Intel-Thread-Director-based allocator (§6.1,
//!   after Saez et al.): hardware thread classification by instruction mix,
//!   classes mapped to preferred core types.
//! * [`HarpSimManager`] — drives the full HARP RM (`harp-rm`) inside the
//!   simulator: registration on arrival, 50 ms measurement ticks,
//!   operating-point activations applied through affinity and team size,
//!   and RM communication costs charged to the applications.
//!
//! # Example
//!
//! ```
//! use harp_platform::HardwareDescription;
//! use harp_sched::{CfsManager, HarpSimManager, HarpManagerConfig};
//! use harp_sim::{LaunchOpts, SimConfig, Simulation};
//! use harp_workload::{benchmark, Platform};
//!
//! let hw = HardwareDescription::raptor_lake();
//! let mut sim = Simulation::new(hw.clone(), SimConfig::default());
//! let spec = benchmark(Platform::RaptorLake, "ep").unwrap();
//! sim.add_arrival(0, spec, LaunchOpts::all_hw_threads());
//! let report = sim.run(&mut CfsManager::new()).unwrap();
//! assert_eq!(report.apps.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod eas;
mod harp;
mod itd;

pub use eas::EasManager;
pub use harp::{HarpManagerConfig, HarpSimManager};
pub use itd::ItdManager;

use harp_sim::{Manager, MgrEvent, SimState};

/// The Linux CFS baseline: work-conserving fair scheduling with no
/// heterogeneity awareness and no application adaptation — exactly the
/// simulator's default placement, so this manager never intervenes.
#[derive(Debug, Clone, Copy, Default)]
pub struct CfsManager;

impl CfsManager {
    /// Creates the baseline manager.
    pub fn new() -> Self {
        CfsManager
    }
}

impl Manager for CfsManager {
    fn on_event(&mut self, _st: &mut SimState, _ev: MgrEvent) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_sim::{AppSpec, LaunchOpts, SimConfig, Simulation};
    use harp_workload::Platform;

    #[test]
    fn cfs_runs_workloads_unmodified() {
        let hw = Platform::RaptorLake.hardware();
        let spec = AppSpec::builder("x", 2).total_work(1.0e10).build().unwrap();
        let mut sim = Simulation::new(hw, SimConfig::default());
        sim.add_arrival(0, spec, LaunchOpts::all_hw_threads());
        let r = sim.run(&mut CfsManager::new()).unwrap();
        assert_eq!(r.apps.len(), 1);
    }
}
