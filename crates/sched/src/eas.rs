//! The Linux Energy-Aware Scheduler (EAS) baseline for big.LITTLE systems
//! (paper §3.1/§6.4).
//!
//! EAS tracks per-task CPU demand via PELT and, using a CPU energy model,
//! places tasks on the most energy-efficient core that still satisfies
//! their capacity demand: low-demand tasks go to LITTLE cores, high-demand
//! tasks to big cores, and the load balancer spreads when a cluster
//! saturates.
//!
//! This model reproduces that decision structure at application
//! granularity: per application it tracks a PELT-style EMA of per-thread
//! utilization (runnable CPU time / wall time / threads) and steers
//! applications whose per-thread utilization fits a LITTLE core's relative
//! capacity to the LITTLE cluster. Everything else keeps the full machine
//! mask, which — combined with the simulator's fill-idle-cores-first
//! placement, big cluster first — matches EAS's capacity-driven spill
//! behaviour for busy workloads.

use harp_sim::{Affinity, Manager, MgrEvent, SimState, MILLISECOND};
use harp_types::{AppId, HwThreadId};
use std::collections::HashMap;

const TICK: u64 = 20 * MILLISECOND; // PELT-ish update cadence
const TIMER_ID: u64 = 0xEA5;

/// Placement-relevant topology facts, derived once from the machine
/// description instead of re-deriving (and cloning the description) every
/// tick — the topology is immutable for the lifetime of a simulation.
#[derive(Debug)]
struct Topology {
    little_threads: Vec<HwThreadId>,
    little_capacity: f64,
    n_threads: usize,
}

impl Topology {
    fn of(hw: &harp_platform::HardwareDescription) -> Self {
        // Relative capacity of the LITTLE cluster (last kind) vs big.
        let big_rate = hw.clusters[0].perf.ips_per_thread;
        let little_rate = hw.clusters.last().unwrap().perf.ips_per_thread;
        let n_threads = hw.total_hw_threads();
        let little_threads = (0..n_threads)
            .map(HwThreadId)
            .filter(|t| {
                hw.core_of_thread(*t)
                    .and_then(|c| hw.kind_of_core(c))
                    .map(|k| k.0 == hw.num_kinds() - 1)
                    .unwrap_or(false)
            })
            .collect();
        Topology {
            little_threads,
            little_capacity: (little_rate / big_rate).clamp(0.0, 1.0),
            n_threads,
        }
    }
}

/// EAS baseline manager (see module docs).
#[derive(Debug)]
pub struct EasManager {
    /// PELT-style EMA of per-thread utilization per app.
    util: HashMap<AppId, f64>,
    last_cpu: HashMap<AppId, f64>,
    last_tick_ns: u64,
    timer_armed: bool,
    topo: Option<Topology>,
}

impl EasManager {
    /// Creates the EAS baseline.
    pub fn new() -> Self {
        EasManager {
            util: HashMap::new(),
            last_cpu: HashMap::new(),
            last_tick_ns: 0,
            timer_armed: false,
            topo: None,
        }
    }

    fn update_and_place(&mut self, st: &mut SimState) {
        let now = st.now();
        let dt = (now - self.last_tick_ns) as f64 / 1e9;
        self.last_tick_ns = now;
        if dt <= 0.0 {
            return;
        }
        if self.topo.is_none() {
            self.topo = Some(Topology::of(st.hw()));
        }
        let topo = self.topo.as_ref().expect("topology derived above");
        let little_capacity = topo.little_capacity;
        let n_threads = topo.n_threads;
        let little_threads = &topo.little_threads;

        // Copy the cached id view: the placement loop mutates the state.
        for app in st.app_ids().to_vec() {
            let cpu: f64 = st.app_cpu_time(app).iter().sum();
            let prev = self.last_cpu.get(&app).copied().unwrap_or(cpu);
            self.last_cpu.insert(app, cpu);
            // Per-running-thread utilization (PELT is per task, so a fully
            // busy serial master still reads as util ≈ 1.0; dividing by the
            // team size would wrongly classify serial phases as idle).
            let busy_threads = ((cpu - prev) / dt).max(0.0);
            let sample = (busy_threads / busy_threads.ceil().max(1.0)).clamp(0.0, 1.0);
            let util = self.util.entry(app).or_insert(sample);
            // PELT half-life ≈ 32 ms: alpha for a 20 ms tick ≈ 0.35.
            *util = 0.35 * sample + 0.65 * *util;
            if *util < 0.8 * little_capacity {
                // Fits comfortably on LITTLE: energy-optimal placement.
                let mask = Affinity::from_threads(little_threads.iter().copied());
                let _ = st.set_app_affinity(app, mask);
            } else {
                // Needs capacity: allow the whole machine (big first).
                let _ = st.set_app_affinity(app, Affinity::all(n_threads));
            }
        }
    }
}

impl Default for EasManager {
    fn default() -> Self {
        EasManager::new()
    }
}

impl Manager for EasManager {
    fn on_event(&mut self, st: &mut SimState, ev: MgrEvent) {
        match ev {
            MgrEvent::AppStarted { .. } if !self.timer_armed => {
                self.timer_armed = true;
                self.last_tick_ns = st.now();
                st.set_timer(st.now() + TICK, TIMER_ID);
            }
            MgrEvent::Timer { id } if id == TIMER_ID => {
                self.update_and_place(st);
                if st.app_ids().is_empty() {
                    self.timer_armed = false;
                } else {
                    st.set_timer(st.now() + TICK, TIMER_ID);
                }
            }
            MgrEvent::AppExited { app } => {
                self.util.remove(&app);
                self.last_cpu.remove(&app);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_platform::presets;
    use harp_sim::{AppSpec, LaunchOpts, SimConfig, Simulation};

    #[test]
    fn eas_completes_odroid_workloads() {
        let spec = AppSpec::builder("a", 2).total_work(5.0e9).build().unwrap();
        let mut sim = Simulation::new(presets::odroid_xu3(), SimConfig::default());
        sim.add_arrival(0, spec, LaunchOpts::all_hw_threads());
        let r = sim.run(&mut EasManager::new()).unwrap();
        assert_eq!(r.apps.len(), 1);
    }

    #[test]
    fn busy_apps_keep_the_full_machine() {
        // A fully-busy data-parallel app must not be confined to LITTLE.
        let spec = AppSpec::builder("busy", 2)
            .total_work(2.0e10)
            .build()
            .unwrap();
        let mut cfs_sim = Simulation::new(presets::odroid_xu3(), SimConfig::default());
        cfs_sim.add_arrival(0, spec.clone(), LaunchOpts::all_hw_threads());
        let cfs = cfs_sim.run(&mut crate::CfsManager::new()).unwrap();
        let mut eas_sim = Simulation::new(presets::odroid_xu3(), SimConfig::default());
        eas_sim.add_arrival(0, spec, LaunchOpts::all_hw_threads());
        let eas = eas_sim.run(&mut EasManager::new()).unwrap();
        // EAS should be within a few percent of CFS for saturated apps.
        let ratio = eas.makespan_ns as f64 / cfs.makespan_ns as f64;
        assert!(
            (0.9..1.15).contains(&ratio),
            "EAS/CFS makespan ratio {ratio}"
        );
    }
}
