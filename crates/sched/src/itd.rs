//! The Intel-Thread-Director-based allocator baseline (paper §6.1).
//!
//! Intel Thread Director is a hardware unit that classifies each running
//! thread by its instruction mix and reports per-class performance and
//! energy-efficiency scores for each core type. The paper extends a Linux
//! ITD patch set to expose these classifications to user space and, inspired
//! by Saez et al. (PMCSched), implements an allocator that uses them to
//! place application threads on core types.
//!
//! The model here mirrors that allocator's observable behaviour:
//!
//! * threads are classified from the instruction mix — memory-bound mixes
//!   gain little from P-cores (their class scores P ≈ E), compute-dense
//!   mixes gain a lot (P ≫ E);
//! * each application's threads are steered to the core type its class
//!   prefers, the P-cores being handed out first-come-first-served;
//! * with a single application the machine is big enough that the
//!   classification barely matters (paper: ≈ 1.02×), while with multiple
//!   applications the class-driven pinning crowds the preferred clusters
//!   (paper: 0.84× — *worse* than CFS).

use harp_sim::{Affinity, Manager, MgrEvent, SimState};
use harp_types::{AppId, HwThreadId};
use std::collections::HashMap;

/// Thread classes as exposed by the ITD hardware (simplified to the two
/// classes that drive placement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ThreadClass {
    /// High IPC gain on P-cores: the allocator reserves P capacity.
    PerformanceSensitive,
    /// Memory-bound / low P-core gain: efficient on E-cores.
    EfficiencyFriendly,
}

fn classify(st: &SimState, app: AppId) -> ThreadClass {
    // The hardware classifier observes the instruction mix; in the
    // simulator the spec's memory intensity is that observable.
    let spec = st.app_spec(app).expect("classifying a live app");
    if spec.mem_intensity >= 0.5 {
        ThreadClass::EfficiencyFriendly
    } else {
        ThreadClass::PerformanceSensitive
    }
}

/// Cluster membership, derived once from the machine description instead
/// of re-deriving (and cloning the description) on every app arrival.
#[derive(Debug)]
struct Clusters {
    n_threads: usize,
    p_threads: Vec<HwThreadId>,
    e_threads: Vec<HwThreadId>,
}

impl Clusters {
    fn of(hw: &harp_platform::HardwareDescription) -> Self {
        let n = hw.total_hw_threads();
        let p_threads: Vec<HwThreadId> = (0..n)
            .map(HwThreadId)
            .filter(|t| {
                hw.core_of_thread(*t)
                    .and_then(|c| hw.kind_of_core(c))
                    .map(|k| k.0 == 0)
                    .unwrap_or(false)
            })
            .collect();
        let e_threads = (0..n)
            .map(HwThreadId)
            .filter(|t| !p_threads.contains(t))
            .collect();
        Clusters {
            n_threads: n,
            p_threads,
            e_threads,
        }
    }
}

/// ITD-based allocator baseline (see module docs).
#[derive(Debug, Default)]
pub struct ItdManager {
    classes: HashMap<AppId, ThreadClass>,
    clusters: Option<Clusters>,
}

impl ItdManager {
    /// Creates the ITD baseline.
    pub fn new() -> Self {
        ItdManager::default()
    }

    fn replace_all(&mut self, st: &mut SimState) {
        if self.clusters.is_none() {
            self.clusters = Some(Clusters::of(st.hw()));
        }
        let clusters = self.clusters.as_ref().expect("clusters derived above");
        // Copy the cached id view: the placement loops mutate the state.
        let apps = st.app_ids().to_vec();
        if apps.len() <= 1 {
            // Single application: ITD hints barely alter placement on an
            // otherwise idle machine — leave the default spread.
            for app in apps {
                let _ = st.set_app_affinity(app, Affinity::all(clusters.n_threads));
            }
            return;
        }
        // Multi-application: steer each app to its class's preferred
        // cluster.
        for app in apps {
            let class = *self.classes.entry(app).or_insert_with(|| classify(st, app));
            let mask = match class {
                ThreadClass::PerformanceSensitive => {
                    Affinity::from_threads(clusters.p_threads.iter().copied())
                }
                ThreadClass::EfficiencyFriendly => {
                    Affinity::from_threads(clusters.e_threads.iter().copied())
                }
            };
            let _ = st.set_app_affinity(app, mask);
        }
    }
}

impl Manager for ItdManager {
    fn on_event(&mut self, st: &mut SimState, ev: MgrEvent) {
        match ev {
            MgrEvent::AppStarted { app, .. } => {
                let class = classify(st, app);
                self.classes.insert(app, class);
                self.replace_all(st);
            }
            MgrEvent::AppExited { app } => {
                self.classes.remove(&app);
                self.replace_all(st);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_platform::presets;
    use harp_sim::{LaunchOpts, SimConfig, Simulation};
    use harp_workload::{benchmark, Platform};

    #[test]
    fn classification_follows_memory_intensity() {
        let hw = presets::raptor_lake();
        let mut sim = Simulation::new(hw, SimConfig::default());
        sim.add_arrival(
            0,
            benchmark(Platform::RaptorLake, "ep").unwrap(),
            LaunchOpts::all_hw_threads(),
        );
        sim.add_arrival(
            0,
            benchmark(Platform::RaptorLake, "mg").unwrap(),
            LaunchOpts::all_hw_threads(),
        );
        let mut mgr = ItdManager::new();
        sim.run(&mut mgr).unwrap();
        // Both apps completed under class-driven pinning.
    }

    #[test]
    fn single_app_close_to_cfs() {
        let run = |mgr: &mut dyn harp_sim::Manager| {
            let mut sim = Simulation::new(presets::raptor_lake(), SimConfig::default());
            sim.add_arrival(
                0,
                benchmark(Platform::RaptorLake, "ft").unwrap(),
                LaunchOpts::all_hw_threads(),
            );
            sim.run(mgr).unwrap().makespan_ns as f64
        };
        let cfs = run(&mut crate::CfsManager::new());
        let itd = run(&mut ItdManager::new());
        let ratio = itd / cfs;
        assert!(
            (0.9..1.1).contains(&ratio),
            "single-app ITD/CFS ratio {ratio} (paper: ≈1.0)"
        );
    }

    #[test]
    fn multi_app_pinning_can_hurt() {
        // Two P-preferring apps crowd the P cluster under ITD.
        let run = |mgr: &mut dyn harp_sim::Manager| {
            let mut sim = Simulation::new(presets::raptor_lake(), SimConfig::default());
            for name in ["ep", "pi"] {
                sim.add_arrival(
                    0,
                    benchmark(Platform::RaptorLake, name).unwrap(),
                    LaunchOpts::all_hw_threads(),
                );
            }
            sim.run(mgr).unwrap().makespan_ns as f64
        };
        let cfs = run(&mut crate::CfsManager::new());
        let itd = run(&mut ItdManager::new());
        assert!(
            itd > cfs * 0.98,
            "crowded ITD ({itd}) should not beat CFS ({cfs}) here"
        );
    }
}
