//! The HARP RM driving the simulated machine.
//!
//! This is the evaluation frontend of `harp-rm`: it registers arriving
//! applications, samples perf/energy counters every 50 ms (the paper's
//! measurement interval), feeds the RM, and applies the returned
//! operating-point activations through the simulator's actuation
//! primitives — affinity masks (all variants) and team sizes (unless
//! application adaptation is disabled, the *HARP (No Scaling)* variant).
//! RM communication costs are charged to the applications so the §6.6
//! overhead study measures something real.

use harp_rm::{
    AppObservation, Directive, LedgerTick, RmConfig, RmCore, RmOutput, TickObservations,
};
use harp_sim::{Affinity, Manager, MgrEvent, SimState};
use harp_types::AppId;
use std::collections::HashMap;

const TIMER_ID: u64 = 0x4A52;

/// Configuration of the simulator frontend.
#[derive(Debug, Clone)]
pub struct HarpManagerConfig {
    /// RM configuration (solver, exploration, offline mode, costs).
    pub rm: RmConfig,
    /// Apply team-size adaptations (`false` = *HARP (No Scaling)*, §6.3).
    pub scaling: bool,
    /// Apply any actuation at all (`false` = the §6.6 overhead study:
    /// monitoring, exploration bookkeeping and communication run, but
    /// applications stay unmanaged).
    pub actuation: bool,
}

impl Default for HarpManagerConfig {
    fn default() -> Self {
        HarpManagerConfig {
            rm: RmConfig::default(),
            scaling: true,
            actuation: true,
        }
    }
}

/// HARP inside the simulator (see module docs).
pub struct HarpSimManager {
    cfg: HarpManagerConfig,
    rm: Option<RmCore>,
    provides_utility: HashMap<AppId, bool>,
    last_tick_ns: u64,
    timer_armed: bool,
    last_energy: Option<LedgerTick>,
}

impl std::fmt::Debug for HarpSimManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HarpSimManager")
            .field("scaling", &self.cfg.scaling)
            .field("actuation", &self.cfg.actuation)
            .finish()
    }
}

impl HarpSimManager {
    /// Creates the frontend; the RM core is instantiated lazily on the
    /// first event (it needs the machine description).
    pub fn new(cfg: HarpManagerConfig) -> Self {
        HarpSimManager {
            cfg,
            rm: None,
            provides_utility: HashMap::new(),
            last_tick_ns: 0,
            timer_armed: false,
            last_energy: None,
        }
    }

    /// With default configuration (online exploration, full adaptation).
    pub fn online() -> Self {
        HarpSimManager::new(HarpManagerConfig::default())
    }

    /// Offline variant: allocation from preinstalled profiles only.
    pub fn offline() -> Self {
        let mut cfg = HarpManagerConfig::default();
        cfg.rm.offline = true;
        HarpSimManager::new(cfg)
    }

    /// Access to the RM core (e.g. to preload profiles before running, or
    /// to inspect learned tables afterwards). `None` before the first
    /// event unless [`Self::init_rm`] was called.
    pub fn rm(&mut self) -> Option<&mut RmCore> {
        self.rm.as_mut()
    }

    /// Eagerly instantiates the RM for a machine (needed to preload
    /// profiles before the simulation starts).
    pub fn init_rm(&mut self, hw: harp_platform::HardwareDescription) -> &mut RmCore {
        self.rm
            .get_or_insert_with(|| RmCore::new(hw, self.cfg.rm.clone()))
    }

    fn ensure_rm(&mut self, st: &SimState) -> &mut RmCore {
        let cfg = self.cfg.rm.clone();
        self.rm
            .get_or_insert_with(|| RmCore::new(st.hw().clone(), cfg))
    }

    /// The energy ledger tick of the most recent RM tick: modeled package
    /// energy apportioned over the live sessions (µJ, conserving — the
    /// entries plus the idle share sum exactly to the tick total).
    pub fn last_energy(&self) -> Option<&LedgerTick> {
        self.last_energy.as_ref()
    }

    fn apply(&mut self, st: &mut SimState, out: RmOutput) {
        if let Some(tick) = out.energy {
            debug_assert_eq!(
                tick.tick_uj,
                tick.idle_tick_uj + tick.entries.iter().map(|e| e.tick_uj).sum::<u64>(),
                "ledger tick does not conserve"
            );
            self.last_energy = Some(tick);
        }
        let message_cost = self.cfg.rm.message_cost_ns;
        let solve_cost = self.cfg.rm.solve_cost_ns;
        let napps = out.directives.len().max(1) as u64;
        // `solve_work` scales the modeled solve cost by the actual solver
        // effort (fraction of the reference iteration schedule) — warm
        // rounds answered from the memo or a duality-gap certificate charge
        // a fraction of a full solve. Iteration counts are deterministic,
        // so this keeps runs bit-reproducible (unlike wall time).
        let solve_charge = (solve_cost as f64 * out.solve_work) as u64 / napps;
        for d in &out.directives {
            // Communication + (spread) solve cost land on the application's
            // critical path, managed or not.
            st.charge_overhead(d.app, message_cost + solve_charge);
            if !self.cfg.actuation {
                continue;
            }
            self.apply_directive(st, d);
        }
    }

    fn apply_directive(&self, st: &mut SimState, d: &Directive) {
        if d.hw_threads.is_empty() {
            return;
        }
        let mask = Affinity::from_threads(d.hw_threads.iter().copied());
        let _ = st.set_app_affinity(d.app, mask);
        if self.cfg.scaling {
            let _ = st.set_team_size(d.app, d.parallelism.max(1));
        }
    }

    fn tick(&mut self, st: &mut SimState) {
        let now = st.now();
        let dt_s = (now - self.last_tick_ns) as f64 / 1e9;
        self.last_tick_ns = now;
        if dt_s <= 0.0 {
            return;
        }
        let mut sp = harp_obs::span(harp_obs::Subsystem::Sched, "tick");
        let mut apps = Vec::new();
        // Copy the cached id view: sampling and overhead charging mutate
        // the state.
        for app in st.app_ids().to_vec() {
            if !self.provides_utility.contains_key(&app) {
                continue; // not registered (arrived between timer and tick)
            }
            let own_metric = self.provides_utility[&app];
            let sample = if own_metric {
                st.sample_app_utility(app)
            } else {
                st.sample_app_work(app)
            };
            let utility_rate = sample
                .map(|(dw, dns)| {
                    if dns > 0 {
                        dw / (dns as f64 / 1e9)
                    } else {
                        0.0
                    }
                })
                .unwrap_or(0.0);
            // Sampling perf counters costs a message round trip.
            st.charge_overhead(app, self.cfg.rm.message_cost_ns / 2);
            apps.push(AppObservation {
                app,
                utility_rate,
                cpu_time: st.app_cpu_time(app),
            });
        }
        let obs = TickObservations {
            dt_s,
            package_energy_j: st.package_energy(),
            apps,
        };
        if sp.is_active() {
            sp.set_field("apps", obs.apps.len());
            sp.set_field("dt_ms", dt_s * 1e3);
        }
        let rm = self.ensure_rm(st);
        if let Ok(out) = rm.tick(&obs) {
            self.apply(st, out);
        }
    }

    fn interval(&self) -> u64 {
        self.cfg.rm.exploration.measurement_interval_ns
    }
}

impl Manager for HarpSimManager {
    fn on_event(&mut self, st: &mut SimState, ev: MgrEvent) {
        match ev {
            MgrEvent::AppStarted { app, ref name } => {
                if harp_obs::enabled() {
                    harp_obs::instant(harp_obs::Subsystem::Sched, "app_started")
                        .field("app", app.0)
                        .field("name", name.clone());
                }
                let (provides, weight) = st
                    .app_spec(app)
                    .map(|s| (s.provides_utility, s.priority.weight()))
                    .unwrap_or((false, 1.0));
                self.provides_utility.insert(app, provides);
                let name = name.clone();
                let rm = self.ensure_rm(st);
                if let Ok(out) = rm.register(app, &name, provides) {
                    self.apply(st, out);
                }
                if weight != 1.0 {
                    let rm = self.ensure_rm(st);
                    if let Ok(out) = rm.set_priority(app, weight) {
                        self.apply(st, out);
                    }
                }
                if !self.timer_armed {
                    self.timer_armed = true;
                    self.last_tick_ns = st.now();
                    st.set_timer(st.now() + self.interval(), TIMER_ID);
                }
            }
            MgrEvent::AppExited { app } => {
                if harp_obs::enabled() {
                    harp_obs::instant(harp_obs::Subsystem::Sched, "app_exited").field("app", app.0);
                }
                self.provides_utility.remove(&app);
                if let Some(rm) = self.rm.as_mut() {
                    if let Ok(out) = rm.deregister(app) {
                        self.apply(st, out);
                    }
                }
            }
            MgrEvent::Timer { id } if id == TIMER_ID => {
                self.tick(st);
                if st.app_ids().is_empty() {
                    self.timer_armed = false;
                } else {
                    st.set_timer(st.now() + self.interval(), TIMER_ID);
                }
            }
            MgrEvent::PriorityChanged { app, class } => {
                if let Some(rm) = self.rm.as_mut() {
                    if let Ok(out) = rm.set_priority(app, class.weight()) {
                        self.apply(st, out);
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CfsManager;
    use harp_platform::presets;
    use harp_sim::{LaunchOpts, SimConfig, Simulation};
    use harp_workload::{benchmark, Platform};

    fn run_with(mgr: &mut dyn Manager, names: &[&str]) -> harp_sim::RunReport {
        let mut sim = Simulation::new(presets::raptor_lake(), SimConfig::default());
        for n in names {
            sim.add_arrival(
                0,
                benchmark(Platform::RaptorLake, n).unwrap(),
                LaunchOpts::all_hw_threads(),
            );
        }
        sim.run(mgr).unwrap()
    }

    #[test]
    fn harp_manages_single_app_to_completion() {
        let mut mgr = HarpSimManager::online();
        let r = run_with(&mut mgr, &["mg"]);
        assert_eq!(r.apps.len(), 1);
        // The RM learned operating points along the way.
        let rm = mgr.rm().unwrap();
        let profile = rm.profile("mg").expect("profile persisted on exit");
        assert!(profile.measured_count() >= 2);
    }

    #[test]
    fn harp_surfaces_a_conserving_energy_ledger_tick() {
        let mut mgr = HarpSimManager::online();
        run_with(&mut mgr, &["mg"]);
        let tick = mgr.last_energy().expect("RM ticks populate the ledger");
        assert!(tick.tick_uj > 0, "modeled energy must be nonzero");
        let attributed: u64 = tick.entries.iter().map(|e| e.tick_uj).sum();
        assert_eq!(tick.tick_uj, tick.idle_tick_uj + attributed);
        // The lifetime ledger conserves too: per-session totals plus idle
        // plus retired shares sum exactly to everything ever charged.
        assert_eq!(mgr.rm().unwrap().ledger().conservation_error(), 0);
    }

    #[test]
    fn harp_saves_energy_on_memory_bound_app() {
        let mut cfs = CfsManager::new();
        let base = run_with(&mut cfs, &["mg"]);
        // Warm-up: learn operating points across restarted executions
        // (the paper evaluates HARP with *stable* points, §6.3).
        let mut warm = HarpSimManager::online();
        let horizon = 60 * harp_sim::SECOND;
        let mut sim = Simulation::new(
            presets::raptor_lake(),
            SimConfig {
                horizon_ns: Some(horizon),
                ..SimConfig::default()
            },
        );
        sim.add_arrival(
            0,
            benchmark(Platform::RaptorLake, "mg").unwrap(),
            LaunchOpts::all_hw_threads().restart_until(horizon),
        );
        sim.run(&mut warm).unwrap();
        let profiles = warm.rm().unwrap().snapshot_profiles();
        // Measured run with the learned profiles.
        let mut mgr = HarpSimManager::online();
        let rm = mgr.init_rm(presets::raptor_lake());
        for (name, table) in profiles {
            rm.load_profile(name, table);
        }
        let managed = run_with(&mut mgr, &["mg"]);
        assert!(
            managed.total_energy_j < base.total_energy_j,
            "HARP {}J vs CFS {}J",
            managed.total_energy_j,
            base.total_energy_j
        );
    }

    #[test]
    fn no_scaling_variant_is_worse_than_full_harp() {
        let mut full = HarpSimManager::online();
        let with_scaling = run_with(&mut full, &["cg", "ft"]);
        let cfg = HarpManagerConfig {
            scaling: false,
            ..Default::default()
        };
        let mut noscale = HarpSimManager::new(cfg);
        let without = run_with(&mut noscale, &["cg", "ft"]);
        assert!(
            without.makespan_ns >= with_scaling.makespan_ns,
            "no-scaling {} vs full {}",
            without.makespan_ns,
            with_scaling.makespan_ns
        );
    }

    #[test]
    fn overhead_mode_changes_little_but_costs_something() {
        let mut cfs = CfsManager::new();
        let base = run_with(&mut cfs, &["ep"]);
        let cfg = HarpManagerConfig {
            actuation: false,
            ..Default::default()
        };
        let mut overhead_mgr = HarpSimManager::new(cfg);
        let taxed = run_with(&mut overhead_mgr, &["ep"]);
        let ratio = taxed.makespan_ns as f64 / base.makespan_ns as f64;
        assert!(
            (1.0..1.08).contains(&ratio),
            "overhead-only run cost {ratio}x (paper: <1% single-app)"
        );
    }

    #[test]
    fn offline_profiles_are_used() {
        use harp_types::{ExtResourceVector, NonFunctional};
        let hw = presets::raptor_lake();
        let shape = hw.erv_shape();
        let mut mgr = HarpSimManager::offline();
        let rm = mgr.init_rm(hw.clone());
        rm.load_profile(
            "mg",
            harp_rm::table_from_points(vec![
                (
                    ExtResourceVector::from_flat(&shape, &[0, 8, 16]).unwrap(),
                    NonFunctional::new(5.0e10, 90.0),
                ),
                (
                    ExtResourceVector::from_flat(&shape, &[0, 0, 6]).unwrap(),
                    NonFunctional::new(4.0e10, 18.0),
                ),
            ]),
        );
        let r = run_with(&mut mgr, &["mg"]);
        assert_eq!(r.apps.len(), 1);
        // The cheap 6-E-core point should have been activated: energy far
        // below the CFS baseline.
        let mut cfs = CfsManager::new();
        let base = run_with(&mut cfs, &["mg"]);
        assert!(r.total_energy_j < base.total_energy_j);
    }
}
