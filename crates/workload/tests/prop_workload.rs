//! Property tests for the workload generators.
//!
//! Two families: (1) fuzzing `random_spec`/`random_scenario` over
//! degenerate platform shapes (zero kinds, zero apps, single-thread
//! machines) — every output must validate, never panic; (2) the trace
//! generator's determinism contract — the same seed yields a byte-identical
//! canonical trace regardless of environment (solver thread counts of the
//! consuming RM included, exercised in `harp-testkit`) and of repetition.

use harp_workload::generator::{random_scenario, random_spec};
use harp_workload::{generate_trace, Platform, Trace, TraceGenConfig, TraceShape};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Degenerate-input fuzz: 0 kinds must fall back to a single-kind spec,
    // and any spec that comes out must validate.
    #[test]
    fn random_spec_survives_degenerate_platforms(
        seed in any::<u64>(),
        num_kinds in 0usize..5
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let s = random_spec(&mut rng, "fuzz", num_kinds);
        s.validate().unwrap();
        prop_assert_eq!(s.kind_efficiency.len(), num_kinds.max(1));
        prop_assert!(s.total_work() > 0.0);
    }

    #[test]
    fn random_scenario_survives_degenerate_sizes(
        seed in any::<u64>(),
        n_apps in 0usize..8
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for platform in [Platform::RaptorLake, Platform::Odroid] {
            let sc = random_scenario(&mut rng, platform, n_apps);
            prop_assert_eq!(sc.len(), n_apps);
            prop_assert!(!sc.name.is_empty(), "even an empty mix is named");
            for a in &sc.apps {
                a.validate().unwrap();
            }
        }
    }

    // Seed determinism: repeated generation is byte-identical, different
    // seeds (virtually always) differ.
    #[test]
    fn trace_generation_is_seed_deterministic(
        seed in any::<u64>(),
        arrivals in 1u32..400
    ) {
        for shape in [
            TraceShape::Diurnal,
            TraceShape::FlashCrowd,
            TraceShape::HeavyTailChurn,
        ] {
            let cfg = TraceGenConfig { seed, arrivals, shape, ..TraceGenConfig::default() };
            let a = generate_trace("t", &cfg).to_canonical_text();
            let b = generate_trace("t", &cfg).to_canonical_text();
            prop_assert_eq!(&a, &b, "same seed, same bytes");
            let other = TraceGenConfig { seed: seed.wrapping_add(1), ..cfg };
            let c = generate_trace("t", &other).to_canonical_text();
            prop_assert!(a != c, "different seed produced identical trace");
        }
    }

    // Parser round-trip holds for arbitrary generated traces, not just the
    // hand-written samples.
    #[test]
    fn generated_traces_round_trip_through_text(
        seed in any::<u64>(),
        arrivals in 1u32..200,
        churn in 0u32..1000,
        reprio in 0u32..1000
    ) {
        let cfg = TraceGenConfig {
            seed,
            arrivals,
            churn_permille: churn,
            reprioritize_permille: reprio,
            shape: TraceShape::HeavyTailChurn,
            ..TraceGenConfig::default()
        };
        let t = generate_trace("rt", &cfg);
        let back = Trace::parse(&t.to_canonical_text()).unwrap();
        prop_assert_eq!(back, t);
    }
}

/// The determinism the satellite task pins down: `HARP_SOLVER_THREADS` (or
/// any solver parallelism in the consuming RM) has no channel into trace
/// bytes — generation never consults the environment. This test sets the
/// variable to each value and regenerates; the canonical text must not
/// move. (Full replay determinism across solver threads is covered in
/// `harp-testkit`.)
#[test]
fn trace_bytes_ignore_solver_thread_env() {
    let cfg = TraceGenConfig {
        seed: 99,
        arrivals: 300,
        shape: TraceShape::FlashCrowd,
        ..TraceGenConfig::default()
    };
    let baseline = generate_trace("env", &cfg).to_canonical_text();
    for threads in ["1", "2", "8"] {
        std::env::set_var("HARP_SOLVER_THREADS", threads);
        let t = generate_trace("env", &cfg).to_canonical_text();
        assert_eq!(t, baseline, "solver_threads={threads} changed trace bytes");
    }
    std::env::remove_var("HARP_SOLVER_THREADS");
}
