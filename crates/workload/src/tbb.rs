//! Intel TBB benchmark models (paper §6.2: `binpack`, `fractal`,
//! `parallel-preorder`, `pi`, `primes`, `seismic` from the official TBB
//! repository).
//!
//! TBB programs work-steal, so all models use dynamic load balancing.
//! `binpack`'s defining trait (paper §6.3.1) is that all workers contend on
//! one shared input queue: beyond a handful of threads the convoy *reduces*
//! aggregate throughput, which is why HARP's scaled-down configuration is
//! ≈ 7× faster than the 32-thread baseline.

use harp_sim::{AppSpec, ContentionModel};

/// The TBB benchmarks used in the evaluation, in presentation order.
pub const TBB_NAMES: [&str; 6] = [
    "binpack",
    "fractal",
    "parallel_preorder",
    "pi",
    "primes",
    "seismic",
];

/// Looks up a TBB benchmark model by name.
pub fn benchmark(name: &str) -> Option<AppSpec> {
    let spec = match name {
        // Shared-queue bin packing: convoy contention dominates.
        "binpack" => AppSpec::builder(name, 2)
            .total_work(2.0e10)
            .serial_fraction(0.005)
            .iterations(100)
            .mem_intensity(0.10)
            .smt_efficiency(0.9)
            .contention(ContentionModel {
                linear: 0.05,
                quadratic: 0.09,
            })
            .dynamic_balance(true)
            .build(),
        // Escape-time fractal rendering: pure compute, steals well.
        "fractal" => AppSpec::builder(name, 2)
            .total_work(8.0e11)
            .serial_fraction(0.005)
            .iterations(150)
            .mem_intensity(0.05)
            .smt_efficiency(1.05)
            .dynamic_balance(true)
            .build(),
        // Parallel tree traversal: pointer chasing, some sync.
        "parallel_preorder" => AppSpec::builder(name, 2)
            .total_work(4.0e11)
            .serial_fraction(0.01)
            .iterations(120)
            .mem_intensity(0.35)
            .smt_efficiency(0.9)
            .contention(ContentionModel {
                linear: 0.02,
                quadratic: 0.0,
            })
            .kind_efficiency(vec![1.0, 0.9])
            .ips_inflation(vec![1.0, 1.0])
            .dynamic_balance(true)
            .build(),
        // Monte-Carlo π: perfectly parallel reduction.
        "pi" => AppSpec::builder(name, 2)
            .total_work(7.0e11)
            .serial_fraction(0.002)
            .iterations(100)
            .mem_intensity(0.02)
            .smt_efficiency(1.1)
            .dynamic_balance(true)
            .build(),
        // Sieve of primes: compute with light sharing; short-running, so
        // HARP's startup overhead is visible on it (§6.3.1).
        "primes" => AppSpec::builder(name, 2)
            .total_work(3.0e11)
            .serial_fraction(0.01)
            .iterations(60)
            .mem_intensity(0.15)
            .smt_efficiency(1.0)
            .contention(ContentionModel {
                linear: 0.01,
                quadratic: 0.0,
            })
            .dynamic_balance(true)
            .build(),
        // Seismic wave simulation: stencil over a grid, bandwidth-hungry.
        "seismic" => AppSpec::builder(name, 2)
            .total_work(6.0e11)
            .serial_fraction(0.01)
            .iterations(180)
            .mem_intensity(0.55)
            .smt_efficiency(0.9)
            .dynamic_balance(true)
            .build(),
        _ => return None,
    };
    Some(spec.expect("tbb specs are valid"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_platform::presets;
    use harp_sim::{LaunchOpts, NullManager, SimConfig, Simulation};

    #[test]
    fn all_names_resolve() {
        for n in TBB_NAMES {
            let s = benchmark(n).unwrap();
            assert_eq!(s.name, n);
            assert!(s.dynamic_balance, "{n} must work-steal");
        }
        assert!(benchmark("unknown").is_none());
    }

    #[test]
    fn binpack_convoy_makes_small_teams_much_faster() {
        let run = |team: u32| {
            let mut sim = Simulation::new(presets::raptor_lake(), SimConfig::default());
            sim.add_arrival(
                0,
                benchmark("binpack").unwrap(),
                LaunchOpts::fixed_team(team),
            );
            sim.run(&mut NullManager).unwrap().makespan_ns as f64
        };
        let t32 = run(32);
        let t4 = run(4);
        let speedup = t32 / t4;
        assert!(
            (3.0..15.0).contains(&speedup),
            "binpack 32->4 speedup {speedup}, paper reports ≈6.9x over CFS"
        );
    }

    #[test]
    fn pi_scales_nearly_linearly() {
        let run = |team: u32| {
            let mut sim = Simulation::new(presets::raptor_lake(), SimConfig::default());
            sim.add_arrival(0, benchmark("pi").unwrap(), LaunchOpts::fixed_team(team));
            sim.run(&mut NullManager).unwrap().makespan_ns as f64
        };
        let eff = run(2) / run(16) / 8.0;
        assert!(eff > 0.7, "pi 2->16 parallel efficiency {eff}");
    }

    #[test]
    fn primes_is_short_running() {
        let mut sim = Simulation::new(presets::raptor_lake(), SimConfig::default());
        sim.add_arrival(
            0,
            benchmark("primes").unwrap(),
            LaunchOpts::all_hw_threads(),
        );
        let r = sim.run(&mut NullManager).unwrap();
        assert!(r.makespan_s() < 6.0, "primes took {}s", r.makespan_s());
    }
}
