//! TensorFlow Lite image-recognition models with the HARP-enabled wrapper
//! (paper §6.2: VGG and AlexNet).
//!
//! The paper's TensorFlow wrapper demonstrates two libharp capabilities:
//! dynamic parallelism scaling through an application-provided adaptivity
//! knob, and an *application-specific utility metric* (inference throughput)
//! that reflects true progress better than IPS (§4.2.1). Both models
//! therefore set `provides_utility`.

use harp_sim::{AppSpec, ContentionModel};

/// The TensorFlow models used in the evaluation.
pub const TF_NAMES: [&str; 2] = ["vgg", "alexnet"];

/// Looks up a TensorFlow model by name.
pub fn benchmark(name: &str) -> Option<AppSpec> {
    let spec = match name {
        // VGG-16: large dense convolutions; compute-heavy, long-running.
        "vgg" => AppSpec::builder(name, 2)
            .total_work(9.0e11)
            .serial_fraction(0.01)
            .iterations(250)
            .mem_intensity(0.30)
            .smt_efficiency(0.95)
            .contention(ContentionModel {
                linear: 0.015,
                quadratic: 0.0,
            })
            .kind_efficiency(vec![1.0, 0.92])
            .ips_inflation(vec![1.05, 1.15])
            .dynamic_balance(true)
            .provides_utility(true)
            .build(),
        // AlexNet: smaller network, more memory-relative work per FLOP.
        "alexnet" => AppSpec::builder(name, 2)
            .total_work(4.0e11)
            .serial_fraction(0.015)
            .iterations(200)
            .mem_intensity(0.40)
            .smt_efficiency(0.9)
            .contention(ContentionModel {
                linear: 0.02,
                quadratic: 0.0,
            })
            .kind_efficiency(vec![1.0, 0.9])
            .ips_inflation(vec![1.05, 1.15])
            .dynamic_balance(true)
            .provides_utility(true)
            .build(),
        _ => return None,
    };
    Some(spec.expect("tensorflow specs are valid"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_platform::presets;
    use harp_sim::{LaunchOpts, NullManager, SimConfig, Simulation};

    #[test]
    fn models_resolve_and_provide_utility() {
        for n in TF_NAMES {
            let s = benchmark(n).unwrap();
            assert!(s.provides_utility, "{n}");
            assert!(s.dynamic_balance, "{n}");
        }
        assert!(benchmark("resnet").is_none());
    }

    #[test]
    fn vgg_is_heavier_than_alexnet() {
        let run = |name: &str| {
            let mut sim = Simulation::new(presets::raptor_lake(), SimConfig::default());
            sim.add_arrival(0, benchmark(name).unwrap(), LaunchOpts::all_hw_threads());
            sim.run(&mut NullManager).unwrap().makespan_ns
        };
        assert!(run("vgg") > run("alexnet"));
    }
}
