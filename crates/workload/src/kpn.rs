//! Kahn-Process-Network applications for the Odroid (paper §6.2):
//! `mandelbrot` (Mandelbrot-set rendering) and `lms` (Leighton–Micali
//! hash-based signatures, RFC 8554).
//!
//! Each application exists in two variants, exactly as evaluated:
//!
//! * the **static** variant has a fixed process-network topology — the
//!   parallel regions have a hard-wired width that HARP can only *place*,
//!   not resize (modelled as fixed-width phases);
//! * the **adaptive** variant uses implicit data-parallelism in KPNs
//!   (Khasanov et al., PARMA-DITAM '18): region widths follow the team size
//!   and work is distributed dynamically across heterogeneous cores — the
//!   custom libharp extension drives them through fine-grained operating
//!   points.

use harp_sim::{AppSpec, ContentionModel, PhaseSpec, PhaseWidth};

/// The KPN application variants used in the evaluation.
pub const KPN_NAMES: [&str; 4] = ["mandelbrot", "mandelbrot-static", "lms", "lms-static"];

/// Looks up a KPN application variant by name.
pub fn benchmark(name: &str) -> Option<AppSpec> {
    let spec = match name {
        // Adaptive Mandelbrot: a source, a scalable compute region and a
        // sink; the compute region follows the team size and balances rows
        // dynamically (rows near the set boundary are far more expensive).
        "mandelbrot" => AppSpec::builder(name, 2)
            .phases(vec![
                PhaseSpec {
                    work: 1.0e9, // setup / parameter distribution
                    iterations: 1,
                    width: PhaseWidth::Serial,
                },
                PhaseSpec {
                    work: 7.6e10,
                    iterations: 120,
                    width: PhaseWidth::Team,
                },
                PhaseSpec {
                    work: 1.5e9, // image assembly
                    iterations: 1,
                    width: PhaseWidth::Serial,
                },
            ])
            .mem_intensity(0.05)
            .kind_efficiency(vec![1.0, 0.95])
            .ips_inflation(vec![1.0, 1.0])
            .dynamic_balance(true)
            .provides_utility(true)
            .build(),
        // Static Mandelbrot: eight worker processes with a fixed row
        // partition — stragglers on LITTLE cores stall the barrier.
        "mandelbrot-static" => AppSpec::builder(name, 2)
            .phases(vec![
                PhaseSpec {
                    work: 1.0e9,
                    iterations: 1,
                    width: PhaseWidth::Serial,
                },
                PhaseSpec {
                    work: 7.6e10,
                    iterations: 120,
                    width: PhaseWidth::Fixed(8),
                },
                PhaseSpec {
                    work: 1.5e9,
                    iterations: 1,
                    width: PhaseWidth::Serial,
                },
            ])
            .mem_intensity(0.05)
            .kind_efficiency(vec![1.0, 0.95])
            .ips_inflation(vec![1.0, 1.0])
            .dynamic_balance(false)
            .build(),
        // Adaptive LMS signing: hash-tree generation is the scalable
        // region; chaining between signatures is sequential.
        "lms" => AppSpec::builder(name, 2)
            .phases(vec![
                PhaseSpec {
                    work: 2.0e9,
                    iterations: 4,
                    width: PhaseWidth::Serial,
                },
                PhaseSpec {
                    work: 5.2e10,
                    iterations: 160,
                    width: PhaseWidth::Team,
                },
            ])
            .mem_intensity(0.10)
            .contention(ContentionModel {
                linear: 0.01,
                quadratic: 0.0,
            })
            .kind_efficiency(vec![1.0, 0.9])
            .ips_inflation(vec![1.0, 1.0])
            .dynamic_balance(true)
            .provides_utility(true)
            .build(),
        // Static LMS: a six-process pipeline with fixed stage widths.
        "lms-static" => AppSpec::builder(name, 2)
            .phases(vec![
                PhaseSpec {
                    work: 2.0e9,
                    iterations: 4,
                    width: PhaseWidth::Serial,
                },
                PhaseSpec {
                    work: 5.2e10,
                    iterations: 160,
                    width: PhaseWidth::Fixed(6),
                },
            ])
            .mem_intensity(0.10)
            .contention(ContentionModel {
                linear: 0.01,
                quadratic: 0.0,
            })
            .kind_efficiency(vec![1.0, 0.9])
            .ips_inflation(vec![1.0, 1.0])
            .dynamic_balance(false)
            .build(),
        _ => return None,
    };
    Some(spec.expect("kpn specs are valid"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_platform::presets;
    use harp_sim::{LaunchOpts, NullManager, SimConfig, Simulation};

    #[test]
    fn variants_resolve_with_expected_adaptivity() {
        let adaptive = benchmark("mandelbrot").unwrap();
        assert!(adaptive.dynamic_balance);
        assert!(adaptive.max_fixed_width().is_none());
        let fixed = benchmark("mandelbrot-static").unwrap();
        assert!(!fixed.dynamic_balance);
        assert_eq!(fixed.max_fixed_width(), Some(8));
        assert!(benchmark("lms").is_some());
        assert!(benchmark("lms-static").is_some());
        assert!(benchmark("kpn-foo").is_none());
    }

    #[test]
    fn adaptive_variant_beats_static_on_big_little() {
        // On the full machine the adaptive variant balances across the
        // heterogeneous clusters while the static one straggles.
        let run = |name: &str| {
            let mut sim = Simulation::new(presets::odroid_xu3(), SimConfig::default());
            sim.add_arrival(0, benchmark(name).unwrap(), LaunchOpts::all_hw_threads());
            sim.run(&mut NullManager).unwrap()
        };
        let adaptive = run("mandelbrot");
        let fixed = run("mandelbrot-static");
        assert!(
            adaptive.makespan_ns <= fixed.makespan_ns,
            "adaptive {} vs static {}",
            adaptive.makespan_ns,
            fixed.makespan_ns
        );
    }

    #[test]
    fn kpn_apps_complete_on_odroid() {
        for n in KPN_NAMES {
            let mut sim = Simulation::new(presets::odroid_xu3(), SimConfig::default());
            sim.add_arrival(0, benchmark(n).unwrap(), LaunchOpts::all_hw_threads());
            let r = sim.run(&mut NullManager).unwrap();
            assert_eq!(r.apps.len(), 1, "{n}");
            assert!(
                (1.0..120.0).contains(&r.makespan_s()),
                "{n}: {}s",
                r.makespan_s()
            );
        }
    }
}
