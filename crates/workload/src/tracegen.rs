//! Seeded workload-trace generation.
//!
//! Produces [`Trace`]s with the temporal structure production RMs face:
//! diurnal load curves, flash crowds, heavy-tailed job sizes, app churn and
//! multi-tenant priority mixes — at 10k+ arrivals per simulated window. The
//! generator is deliberately **integer-only**: arrival apportionment uses
//! largest-remainder rounding over integer bucket weights, the diurnal
//! curve is Bhaskara's integer sine approximation, and heavy-tailed work
//! sizes come from a geometric draw in log space (counting trailing zeros
//! of a raw 64-bit word). No floating-point operation touches any emitted
//! value, so the same seed yields a byte-identical canonical trace on
//! every platform, at any optimization level, regardless of how many
//! solver threads the consuming RM runs.

use crate::trace::{Template, Trace, TraceEvent};
use harp_sim::SimTime;
use harp_types::{FaultEvent, PriorityClass};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The temporal shape of a generated trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceShape {
    /// A day-like sinusoidal load curve: arrival density and machine-wide
    /// load phase swing between trough and peak over the window.
    Diurnal,
    /// A low base arrival rate with a few sudden spikes that concentrate a
    /// large share of all arrivals in short bursts.
    FlashCrowd,
    /// Uniform arrival times, but heavily skewed job sizes and aggressive
    /// early departures (app churn).
    HeavyTailChurn,
}

impl TraceShape {
    /// Canonical token (used in headline-trace names and reports).
    pub fn as_str(self) -> &'static str {
        match self {
            TraceShape::Diurnal => "diurnal",
            TraceShape::FlashCrowd => "flash-crowd",
            TraceShape::HeavyTailChurn => "heavy-tail-churn",
        }
    }
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct TraceGenConfig {
    /// RNG seed; the sole source of variation between same-shape traces.
    pub seed: u64,
    /// Simulated window the trace spans (ns).
    pub window_ns: SimTime,
    /// Number of arrival events to emit.
    pub arrivals: u32,
    /// Shape of the arrival process.
    pub shape: TraceShape,
    /// Per-mille of arrivals that depart early (app churn).
    pub churn_permille: u32,
    /// Per-mille of arrivals that change priority class mid-life.
    pub reprioritize_permille: u32,
    /// Explicit hardware-degradation schedule: `(at_ns, event)` pairs
    /// emitted verbatim (clamped to the window). Any entry upgrades the
    /// generated trace to format v2; an empty schedule keeps the output
    /// byte-identical to the pre-fault generator.
    pub faults: Vec<(SimTime, FaultEvent)>,
}

impl Default for TraceGenConfig {
    fn default() -> Self {
        TraceGenConfig {
            seed: 1,
            window_ns: 60 * harp_sim::SECOND,
            arrivals: 1000,
            shape: TraceShape::Diurnal,
            churn_permille: 250,
            reprioritize_permille: 50,
            faults: Vec::new(),
        }
    }
}

/// Number of time buckets the window is divided into for arrival
/// apportionment (96 ≅ 15-minute buckets of a simulated day).
const BUCKETS: usize = 96;

/// Bhaskara I's integer sine approximation, scaled to per-mille:
/// `sin_milli(deg) ≈ 1000·sin(deg°)` for `deg ∈ [0, 360)`, exact at 0/90/180
/// and within 2 ‰ elsewhere — entirely in `i64` arithmetic.
fn sin_milli(deg: u32) -> i64 {
    let deg = (deg % 360) as i64;
    let (theta, sign) = if deg <= 180 {
        (deg, 1)
    } else {
        (deg - 180, -1)
    };
    let num = 4 * 1000 * 4 * theta * (180 - theta);
    let den = 40500 - theta * (180 - theta);
    sign * num / (4 * den)
}

/// Per-bucket integer arrival weights for a shape (values are relative;
/// only ratios matter for apportionment).
fn bucket_weights(shape: TraceShape, rng: &mut ChaCha8Rng) -> Vec<u64> {
    match shape {
        TraceShape::Diurnal => (0..BUCKETS)
            .map(|b| {
                let deg = (b as u32 * 360) / BUCKETS as u32;
                // 1000 ± 700: trough-to-peak ratio ≈ 5.7×.
                (1000 + 700 * sin_milli(deg) / 1000) as u64
            })
            .collect(),
        TraceShape::FlashCrowd => {
            let mut w = vec![200u64; BUCKETS];
            // Three spikes, each a burst bucket plus a decaying shoulder.
            for _ in 0..3 {
                let b = rng.random_range(0..BUCKETS as u64) as usize;
                w[b] += 8000;
                w[(b + 1) % BUCKETS] += 3000;
                w[(b + 2) % BUCKETS] += 1000;
            }
            w
        }
        TraceShape::HeavyTailChurn => vec![1000u64; BUCKETS],
    }
}

/// Largest-remainder apportionment of `total` arrivals across buckets
/// proportionally to integer `weights` (ties broken by lower bucket index,
/// so the result is a pure function of its inputs).
fn apportion(total: u32, weights: &[u64]) -> Vec<u32> {
    let sum: u64 = weights.iter().sum::<u64>().max(1);
    let mut counts: Vec<u32> = Vec::with_capacity(weights.len());
    let mut rems: Vec<(u64, usize)> = Vec::with_capacity(weights.len());
    let mut assigned: u32 = 0;
    for (i, &w) in weights.iter().enumerate() {
        let exact = total as u64 * w;
        let floor = (exact / sum) as u32;
        counts.push(floor);
        assigned += floor;
        rems.push((exact % sum, i));
    }
    // Hand the leftover arrivals to the largest remainders, wrapping
    // round-robin in the degenerate all-zero-weight case (where the
    // leftover exceeds the bucket count).
    rems.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut left = total - assigned;
    let mut i = 0usize;
    while left > 0 && !rems.is_empty() {
        counts[rems[i % rems.len()].1] += 1;
        left -= 1;
        i += 1;
    }
    counts
}

/// Heavy-tailed work size: `base · 2^Z` where `Z` is geometric (counting
/// trailing zeros of a raw word, capped), plus uniform jitter below one
/// octave — a discrete Pareto-like distribution in pure integer math.
fn heavy_tail_work(rng: &mut ChaCha8Rng, base: u64, cap: u32) -> u64 {
    let z = rng.next_u64().trailing_zeros().min(cap);
    let w = base << z;
    w + rng.random_range(0..w)
}

/// Draws a priority class from the tenant mix (15 % batch, 80 % standard,
/// 5 % premium).
fn draw_class(rng: &mut ChaCha8Rng) -> PriorityClass {
    match rng.random_range(0..1000u64) {
        0..=149 => PriorityClass::Batch,
        150..=949 => PriorityClass::Standard,
        _ => PriorityClass::Premium,
    }
}

/// Generates a seeded trace. The result is validated, normalized, and a
/// pure function of `(name, cfg)`.
pub fn generate_trace(name: &str, cfg: &TraceGenConfig) -> Trace {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let window = cfg.window_ns.max(BUCKETS as u64);
    let mut trace = if cfg.faults.is_empty() {
        Trace::new(name, cfg.seed, window)
    } else {
        Trace::new_v2(name, cfg.seed, window)
    };
    for &(at, ev) in &cfg.faults {
        trace.events.push(TraceEvent::Fault {
            at: at.min(window),
            ev,
        });
    }
    let weights = bucket_weights(cfg.shape, &mut rng);
    let counts = apportion(cfg.arrivals, &weights);
    let bucket_len = window / BUCKETS as u64;

    // Machine-wide load phase tracks the arrival curve for the diurnal
    // shape: one shift per bucket boundary where the level changes.
    if cfg.shape == TraceShape::Diurnal {
        let mut last = 1000u64;
        for (b, &w) in weights.iter().enumerate() {
            let permille = w.clamp(300, 2000);
            if permille != last {
                trace.events.push(TraceEvent::Load {
                    at: b as u64 * bucket_len,
                    permille: permille as u32,
                });
                last = permille;
            }
        }
    }

    let (work_base, work_cap) = match cfg.shape {
        // Heavier tail for the heavy-tail shape: up to base·2^10.
        TraceShape::HeavyTailChurn => (500_000_000u64, 10u32),
        _ => (1_000_000_000u64, 5u32),
    };

    let mut key: u64 = 0;
    for (b, &n) in counts.iter().enumerate() {
        let start = b as u64 * bucket_len;
        for _ in 0..n {
            key += 1;
            let at = start + rng.random_range(0..bucket_len.max(1));
            let class = draw_class(&mut rng);
            let template = Template::ALL[rng.random_range(0..Template::ALL.len() as u64) as usize];
            let work = heavy_tail_work(&mut rng, work_base, work_cap);
            trace.events.push(TraceEvent::Arrive {
                at,
                key,
                class,
                template,
                work,
            });
            if rng.random_range(0..1000u64) < cfg.churn_permille as u64 {
                let lifetime = rng.random_range(window / 64..window / 4);
                let depart_at = (at + lifetime).min(window);
                trace.events.push(TraceEvent::Depart { at: depart_at, key });
            }
            if rng.random_range(0..1000u64) < cfg.reprioritize_permille as u64 {
                let delay = rng.random_range(1..window / 8);
                let to = match class {
                    // Rotate to a different class so the event is never a
                    // no-op on replay.
                    PriorityClass::Batch => PriorityClass::Standard,
                    PriorityClass::Standard => PriorityClass::Premium,
                    PriorityClass::Premium => PriorityClass::Batch,
                };
                trace.events.push(TraceEvent::Priority {
                    at: (at + delay).min(window),
                    key,
                    class: to,
                });
            }
        }
    }
    trace.normalize();
    trace
        .validate()
        .expect("generated trace is valid by construction");
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_sine_hits_landmarks() {
        assert_eq!(sin_milli(0), 0);
        assert_eq!(sin_milli(180), 0);
        assert!((sin_milli(90) - 1000).abs() <= 2, "{}", sin_milli(90));
        assert!((sin_milli(270) + 1000).abs() <= 2, "{}", sin_milli(270));
        assert!(sin_milli(30) > 480 && sin_milli(30) < 520);
        for d in 0..720 {
            assert!(sin_milli(d).abs() <= 1002);
        }
    }

    #[test]
    fn apportionment_is_exact_and_proportional() {
        let counts = apportion(1000, &[1, 1, 2]);
        assert_eq!(counts.iter().sum::<u32>(), 1000);
        assert_eq!(counts[2], 500);
        // Degenerate: all-zero weights still assign every arrival.
        let z = apportion(7, &[0, 0, 0]);
        assert_eq!(z.iter().sum::<u32>(), 7);
    }

    #[test]
    fn all_shapes_generate_valid_traces() {
        for shape in [
            TraceShape::Diurnal,
            TraceShape::FlashCrowd,
            TraceShape::HeavyTailChurn,
        ] {
            let cfg = TraceGenConfig {
                shape,
                arrivals: 500,
                seed: 11,
                ..TraceGenConfig::default()
            };
            let t = generate_trace(shape.as_str(), &cfg);
            t.validate().unwrap();
            assert_eq!(t.arrivals(), 500);
            // Round-trips through the canonical text form.
            let back = Trace::parse(&t.to_canonical_text()).unwrap();
            assert_eq!(back, t);
        }
    }

    #[test]
    fn diurnal_trace_has_load_shifts_and_flash_crowd_bursts() {
        let diurnal = generate_trace(
            "d",
            &TraceGenConfig {
                shape: TraceShape::Diurnal,
                arrivals: 2000,
                ..TraceGenConfig::default()
            },
        );
        assert!(
            diurnal
                .events
                .iter()
                .filter(|e| matches!(e, TraceEvent::Load { .. }))
                .count()
                > 10,
            "diurnal curve emits load shifts"
        );

        let crowd = generate_trace(
            "f",
            &TraceGenConfig {
                shape: TraceShape::FlashCrowd,
                arrivals: 2000,
                ..TraceGenConfig::default()
            },
        );
        // Some bucket holds a burst far above the uniform share.
        let bucket_len = crowd.window_ns / BUCKETS as u64;
        let mut per_bucket = vec![0u32; BUCKETS];
        for e in &crowd.events {
            if let TraceEvent::Arrive { at, .. } = e {
                per_bucket[((at / bucket_len) as usize).min(BUCKETS - 1)] += 1;
            }
        }
        let max = *per_bucket.iter().max().unwrap();
        assert!(max > 200, "spike bucket holds {max} of 2000 arrivals");
    }

    #[test]
    fn churn_shape_emits_departures_and_priority_events() {
        let t = generate_trace(
            "c",
            &TraceGenConfig {
                shape: TraceShape::HeavyTailChurn,
                arrivals: 1000,
                churn_permille: 400,
                reprioritize_permille: 100,
                ..TraceGenConfig::default()
            },
        );
        let departs = t
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Depart { .. }))
            .count();
        let prios = t
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Priority { .. }))
            .count();
        assert!(departs > 250, "{departs} departures");
        assert!(prios > 40, "{prios} priority changes");
    }

    #[test]
    fn work_sizes_are_heavy_tailed() {
        let t = generate_trace(
            "h",
            &TraceGenConfig {
                shape: TraceShape::HeavyTailChurn,
                arrivals: 4000,
                ..TraceGenConfig::default()
            },
        );
        let works: Vec<u64> = t
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Arrive { work, .. } => Some(*work),
                _ => None,
            })
            .collect();
        let max = *works.iter().max().unwrap();
        let min = *works.iter().min().unwrap();
        assert!(max / min >= 256, "spread {min}..{max}");
        // The median is far below the mean: the tail carries the mass.
        let mut sorted = works.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let mean = works.iter().sum::<u64>() / works.len() as u64;
        assert!(mean > median, "mean {mean} vs median {median}");
    }

    #[test]
    fn fault_schedule_upgrades_to_v2_and_round_trips() {
        use harp_types::CoreId;
        let cfg = TraceGenConfig {
            arrivals: 200,
            faults: vec![
                (5_000_000_000, FaultEvent::CoreFail { core: CoreId(9) }),
                (
                    9_000_000_000,
                    FaultEvent::ThermalCap {
                        cluster: 0,
                        permille: 700,
                    },
                ),
                // Beyond the window: clamped, not dropped.
                (u64::MAX, FaultEvent::SensorDrop { ticks: 3 }),
            ],
            ..TraceGenConfig::default()
        };
        let t = generate_trace("degraded", &cfg);
        assert_eq!(t.version, 2);
        assert_eq!(t.faults(), 3);
        t.validate().unwrap();
        let back = Trace::parse(&t.to_canonical_text()).unwrap();
        assert_eq!(back, t);
        // The same config without faults generates the same v1 bytes as
        // before the fault field existed (modulo the arrivals themselves).
        let clean = generate_trace(
            "degraded",
            &TraceGenConfig {
                faults: Vec::new(),
                ..cfg.clone()
            },
        );
        assert_eq!(clean.version, 1);
        let mut stripped = t.clone();
        stripped
            .events
            .retain(|e| !matches!(e, TraceEvent::Fault { .. }));
        stripped.version = 1;
        assert_eq!(stripped.to_canonical_text(), clean.to_canonical_text());
    }

    #[test]
    fn ten_thousand_arrivals_generate_quickly_and_validate() {
        let cfg = TraceGenConfig {
            arrivals: 10_000,
            shape: TraceShape::FlashCrowd,
            ..TraceGenConfig::default()
        };
        let t = generate_trace("big", &cfg);
        assert_eq!(t.arrivals(), 10_000);
        t.validate().unwrap();
    }
}
