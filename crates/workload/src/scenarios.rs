//! The single- and multi-application scenarios of the evaluation
//! (Figs. 6–8).
//!
//! The paper's figures enumerate one scenario per x-axis group: every
//! benchmark alone, plus mixes of two to five concurrent applications. The
//! exact multi-application mixes are chosen here to be representative of
//! the paper's (compute + memory mixes, short + long mixes, framework
//! mixes); the per-experiment index in `DESIGN.md` documents this.

use crate::{benchmark, Platform};
use harp_sim::AppSpec;

/// A named workload scenario: a set of applications started together.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Display name, e.g. `"cg+ep+ft"`.
    pub name: String,
    /// The applications launched at time zero.
    pub apps: Vec<AppSpec>,
}

impl Scenario {
    /// Builds a scenario from benchmark names of the given platform.
    ///
    /// # Panics
    ///
    /// Panics if any name is unknown on the platform (scenario tables are
    /// static data; a typo should fail loudly).
    pub fn of(platform: Platform, names: &[&str]) -> Self {
        let apps = names
            .iter()
            .map(|n| {
                benchmark(platform, n)
                    .unwrap_or_else(|| panic!("unknown benchmark '{n}' on {platform}"))
            })
            .collect();
        Scenario {
            name: names.join("+"),
            apps,
        }
    }

    /// Number of concurrent applications.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// Whether the scenario is empty (never true for the built-in tables).
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// Whether this is a multi-application scenario.
    pub fn is_multi(&self) -> bool {
        self.apps.len() > 1
    }
}

/// Single-application scenarios on the Intel system (Fig. 6 left half).
pub fn intel_single() -> Vec<Scenario> {
    [
        "bt",
        "cg",
        "ep",
        "ft",
        "is",
        "lu",
        "mg",
        "sp",
        "ua",
        "binpack",
        "fractal",
        "parallel_preorder",
        "pi",
        "primes",
        "seismic",
        "vgg",
        "alexnet",
    ]
    .iter()
    .map(|n| Scenario::of(Platform::RaptorLake, &[n]))
    .collect()
}

/// Multi-application scenarios on the Intel system (Fig. 6 right half).
pub fn intel_multi() -> Vec<Scenario> {
    vec![
        Scenario::of(Platform::RaptorLake, &["is", "lu"]),
        Scenario::of(Platform::RaptorLake, &["bt", "lu"]),
        Scenario::of(Platform::RaptorLake, &["cg", "ep", "ft"]),
        Scenario::of(Platform::RaptorLake, &["mg", "sp", "ua"]),
        Scenario::of(Platform::RaptorLake, &["binpack", "fractal", "pi"]),
        Scenario::of(Platform::RaptorLake, &["ep", "mg", "seismic", "vgg"]),
        Scenario::of(Platform::RaptorLake, &["bt", "cg", "ft", "is", "lu"]),
    ]
}

/// Single-application scenarios on the Odroid (Fig. 7 left half).
pub fn odroid_single() -> Vec<Scenario> {
    [
        "bt",
        "cg",
        "ep",
        "ft",
        "is",
        "lu",
        "mg",
        "sp",
        "ua",
        "mandelbrot",
        "mandelbrot-static",
        "lms",
        "lms-static",
    ]
    .iter()
    .map(|n| Scenario::of(Platform::Odroid, &[n]))
    .collect()
}

/// Multi-application scenarios on the Odroid (Fig. 7 right half).
pub fn odroid_multi() -> Vec<Scenario> {
    vec![
        Scenario::of(Platform::Odroid, &["ep", "ft"]),
        Scenario::of(Platform::Odroid, &["is", "mg"]),
        Scenario::of(Platform::Odroid, &["bt", "cg", "lu"]),
        Scenario::of(Platform::Odroid, &["mandelbrot", "lms"]),
        Scenario::of(Platform::Odroid, &["sp", "ua", "ep"]),
    ]
}

/// All scenarios of a platform (singles then multis), the full Fig. 6/7
/// x axis.
pub fn all(platform: Platform) -> Vec<Scenario> {
    match platform {
        Platform::RaptorLake => {
            let mut v = intel_single();
            v.extend(intel_multi());
            v
        }
        Platform::Odroid => {
            let mut v = odroid_single();
            v.extend(odroid_multi());
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intel_tables_have_expected_shapes() {
        let singles = intel_single();
        assert_eq!(singles.len(), 17);
        assert!(singles.iter().all(|s| !s.is_multi()));
        let multis = intel_multi();
        assert_eq!(multis.len(), 7);
        assert!(multis.iter().all(|s| s.is_multi()));
        assert!(multis.iter().any(|s| s.len() == 5));
        assert_eq!(all(Platform::RaptorLake).len(), 24);
    }

    #[test]
    fn odroid_tables_have_expected_shapes() {
        assert_eq!(odroid_single().len(), 13);
        assert_eq!(odroid_multi().len(), 5);
        assert_eq!(all(Platform::Odroid).len(), 18);
    }

    #[test]
    fn scenario_names_join_with_plus() {
        let s = Scenario::of(Platform::RaptorLake, &["cg", "ep", "ft"]);
        assert_eq!(s.name, "cg+ep+ft");
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_name_panics() {
        let _ = Scenario::of(Platform::Odroid, &["binpack"]);
    }
}
