//! Randomized workload generation for property-based tests and stress
//! benchmarks.

use crate::{suite, Platform, Scenario};
use harp_sim::{AppSpec, ContentionModel};
use rand::Rng;

/// Draws a random synthetic application spec with parameters spanning the
/// realistic ranges of the benchmark suite (compute- to memory-bound,
/// SMT-friendly to SMT-averse, with or without contention and dynamic
/// balancing).
///
/// `num_kinds == 0` is treated as a single-kind platform: a spec with zero
/// per-kind parameters can never validate, and callers fuzzing platform
/// shapes should get a usable spec rather than a panic.
pub fn random_spec<R: Rng>(rng: &mut R, name: &str, num_kinds: usize) -> AppSpec {
    let num_kinds = num_kinds.max(1);
    let mem_intensity = rng.random_range(0.0..0.9);
    let kind_eff: Vec<f64> = (0..num_kinds)
        .map(|k| {
            if k == 0 {
                1.0
            } else {
                rng.random_range(0.8..1.0)
            }
        })
        .collect();
    let contention = if rng.random_bool(0.2) {
        ContentionModel {
            linear: rng.random_range(0.0..0.05),
            quadratic: rng.random_range(0.0..0.05),
        }
    } else {
        ContentionModel {
            linear: rng.random_range(0.0..0.01),
            quadratic: 0.0,
        }
    };
    AppSpec::builder(name, num_kinds)
        .total_work(rng.random_range(5.0e9..5.0e11))
        .serial_fraction(rng.random_range(0.0..0.05))
        .iterations(rng.random_range(20..300))
        .mem_intensity(mem_intensity)
        .smt_efficiency(rng.random_range(0.8..1.15))
        .contention(contention)
        .kind_efficiency(kind_eff)
        .ips_inflation((0..num_kinds).map(|_| rng.random_range(1.0..1.3)).collect())
        .dynamic_balance(rng.random_bool(0.4))
        .build()
        .expect("generated spec is valid by construction")
}

/// Draws a random scenario of `n_apps` applications: a mix of real suite
/// benchmarks and synthetic specs.
pub fn random_scenario<R: Rng>(rng: &mut R, platform: Platform, n_apps: usize) -> Scenario {
    let pool = suite(platform);
    let mut apps = Vec::with_capacity(n_apps);
    let mut names = Vec::with_capacity(n_apps);
    for i in 0..n_apps {
        if rng.random_bool(0.6) {
            let pick = pool[rng.random_range(0..pool.len())].clone();
            names.push(pick.name.clone());
            apps.push(pick);
        } else {
            let name = format!("synthetic{i}");
            let spec = random_spec(rng, &name, platform.num_kinds());
            names.push(name);
            apps.push(spec);
        }
    }
    Scenario {
        // An empty mix still needs a displayable name.
        name: if names.is_empty() {
            "empty".to_string()
        } else {
            names.join("+")
        },
        apps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn random_specs_always_validate() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for i in 0..200 {
            let s = random_spec(&mut rng, &format!("s{i}"), 2);
            s.validate().unwrap();
        }
    }

    #[test]
    fn random_scenarios_have_requested_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for n in 1..=5 {
            let sc = random_scenario(&mut rng, Platform::RaptorLake, n);
            assert_eq!(sc.len(), n);
            for a in &sc.apps {
                a.validate().unwrap();
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = random_scenario(&mut ChaCha8Rng::seed_from_u64(7), Platform::Odroid, 3);
        let b = random_scenario(&mut ChaCha8Rng::seed_from_u64(7), Platform::Odroid, 3);
        assert_eq!(a.name, b.name);
    }
}
