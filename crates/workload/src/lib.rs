//! The benchmark suite of the HARP evaluation, as calibrated behaviour
//! models for the machine simulator.
//!
//! The paper evaluates HARP with (§6.2):
//!
//! * the OpenMP **NAS Parallel Benchmarks** v3.4.2 — class C on the Intel
//!   Raptor Lake system, class A on the Odroid XU3-E ([`npb`]);
//! * six **Intel TBB** benchmarks: `binpack`, `fractal`,
//!   `parallel-preorder`, `pi`, `primes`, `seismic` ([`tbb`]);
//! * two **TensorFlow Lite** image-recognition models (VGG, AlexNet) with a
//!   HARP-enabled wrapper that scales parallelism and reports an
//!   application-specific utility ([`tensorflow`]);
//! * two embedded **KPN** applications (`mandelbrot`, `lms`), each in a
//!   static-topology and an adaptive variant ([`kpn`]).
//!
//! Each model encodes the published qualitative behaviour of its namesake —
//! `ep` is compute-bound and SMT-friendly, `mg` is memory-bandwidth-bound,
//! `binpack` convoys on a shared input queue, TBB programs work-steal,
//! NPB-OpenMP programs use static loop schedules — with work sizes chosen so
//! simulated baseline runtimes land in the ranges the paper reports (e.g.
//! `ep.C` ≈ 2.4 s under CFS, §6.5.1).
//!
//! [`scenarios`] assembles the single- and multi-application scenarios of
//! Figs. 6–8, and [`generator`] produces randomized scenarios for property
//! tests.
//!
//! # Example
//!
//! ```
//! use harp_workload::{Platform, benchmark};
//!
//! let ep = benchmark(Platform::RaptorLake, "ep").unwrap();
//! assert!(ep.mem_intensity < 0.1); // embarrassingly parallel
//! let mg = benchmark(Platform::RaptorLake, "mg").unwrap();
//! assert!(mg.mem_intensity > 0.7); // memory-bound
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod kpn;
pub mod npb;
pub mod scenarios;
pub mod tbb;
pub mod tensorflow;
pub mod trace;
pub mod tracegen;

pub use scenarios::Scenario;
pub use trace::{Template, Trace, TraceEvent};
pub use tracegen::{generate_trace, TraceGenConfig, TraceShape};

use harp_platform::HardwareDescription;
use harp_sim::AppSpec;

/// The two evaluation platforms of the paper (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Intel Raptor Lake Core i9-13900K (8 P-cores with SMT + 16 E-cores).
    RaptorLake,
    /// Odroid XU3-E (4× Cortex-A15 + 4× Cortex-A7).
    Odroid,
}

impl Platform {
    /// The platform's hardware description.
    pub fn hardware(&self) -> HardwareDescription {
        match self {
            Platform::RaptorLake => HardwareDescription::raptor_lake(),
            Platform::Odroid => HardwareDescription::odroid_xu3(),
        }
    }

    /// Number of core kinds (2 on both platforms).
    pub fn num_kinds(&self) -> usize {
        2
    }
}

impl std::fmt::Display for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Platform::RaptorLake => f.write_str("Intel Raptor Lake i9-13900K"),
            Platform::Odroid => f.write_str("Odroid XU3-E"),
        }
    }
}

/// Looks up any benchmark of the platform's suite by name.
///
/// Intel names: the NPB codes (`bt`, `cg`, `ep`, `ft`, `is`, `lu`, `mg`,
/// `sp`, `ua`), the TBB benchmarks (`binpack`, `fractal`,
/// `parallel_preorder`, `pi`, `primes`, `seismic`) and the TensorFlow models
/// (`vgg`, `alexnet`). Odroid names: the NPB codes plus `mandelbrot`,
/// `mandelbrot-static`, `lms`, `lms-static`.
pub fn benchmark(platform: Platform, name: &str) -> Option<AppSpec> {
    match platform {
        Platform::RaptorLake => npb::intel(name)
            .or_else(|| tbb::benchmark(name))
            .or_else(|| tensorflow::benchmark(name)),
        Platform::Odroid => npb::odroid(name).or_else(|| kpn::benchmark(name)),
    }
}

/// All benchmarks of a platform's suite, in presentation order.
pub fn suite(platform: Platform) -> Vec<AppSpec> {
    match platform {
        Platform::RaptorLake => {
            let mut v: Vec<AppSpec> = npb::NPB_NAMES
                .iter()
                .map(|n| npb::intel(n).expect("known npb"))
                .collect();
            v.extend(tbb::TBB_NAMES.iter().map(|n| tbb::benchmark(n).unwrap()));
            v.extend(
                tensorflow::TF_NAMES
                    .iter()
                    .map(|n| tensorflow::benchmark(n).unwrap()),
            );
            v
        }
        Platform::Odroid => {
            let mut v: Vec<AppSpec> = npb::NPB_NAMES
                .iter()
                .map(|n| npb::odroid(n).expect("known npb"))
                .collect();
            v.extend(kpn::KPN_NAMES.iter().map(|n| kpn::benchmark(n).unwrap()));
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_suite_specs_validate() {
        for platform in [Platform::RaptorLake, Platform::Odroid] {
            let hw = platform.hardware();
            for spec in suite(platform) {
                spec.validate()
                    .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
                assert_eq!(spec.kind_efficiency.len(), hw.num_kinds(), "{}", spec.name);
            }
        }
    }

    #[test]
    fn suites_have_paper_sizes() {
        // Intel: 9 NPB + 6 TBB + 2 TF = 17; Odroid: 9 NPB + 4 KPN variants.
        assert_eq!(suite(Platform::RaptorLake).len(), 17);
        assert_eq!(suite(Platform::Odroid).len(), 13);
    }

    #[test]
    fn lookup_is_case_sensitive_and_total() {
        assert!(benchmark(Platform::RaptorLake, "ep").is_some());
        assert!(benchmark(Platform::RaptorLake, "binpack").is_some());
        assert!(benchmark(Platform::RaptorLake, "vgg").is_some());
        assert!(benchmark(Platform::RaptorLake, "mandelbrot").is_none());
        assert!(benchmark(Platform::Odroid, "mandelbrot").is_some());
        assert!(benchmark(Platform::Odroid, "binpack").is_none());
        assert!(benchmark(Platform::RaptorLake, "nope").is_none());
    }

    #[test]
    fn suite_names_are_unique() {
        for platform in [Platform::RaptorLake, Platform::Odroid] {
            let mut names: Vec<String> = suite(platform).into_iter().map(|s| s.name).collect();
            let n = names.len();
            names.sort();
            names.dedup();
            assert_eq!(names.len(), n);
        }
    }
}
