//! NAS Parallel Benchmarks (OpenMP implementation, v3.4.2) — behaviour
//! models for class C (Intel) and class A (Odroid).
//!
//! Qualitative calibration sources: the published characterization of the
//! NPB codes (compute- vs. memory-bound split), the paper's own Fig. 1
//! (`ep.C` scales across both core types and favours full SMT pairs;
//! `mg.C` is bandwidth-bound and cheapest on E-cores) and §6.3/§6.5 remarks
//! (`ep.C` runs ≈ 2.4 s under CFS; `is` is short; `lu` is long-running and
//! its IPS overstates its true progress on some configurations).

use harp_sim::{AppSpec, ContentionModel};

/// The NPB codes used in the evaluation, in presentation order.
pub const NPB_NAMES: [&str; 9] = ["bt", "cg", "ep", "ft", "is", "lu", "mg", "sp", "ua"];

struct NpbShape {
    /// Memory-bandwidth intensity.
    mi: f64,
    /// SMT friendliness multiplier.
    smt: f64,
    /// Serial fraction.
    serial: f64,
    /// Synchronization loss per extra worker (linear coefficient).
    sync: f64,
    /// Quadratic barrier cost: barrier-heavy codes peak at an interior
    /// thread count on wide machines (the reason HARP's offline points can
    /// beat the 32-thread CFS default outright, §6.3.1 `bt`).
    sync2: f64,
    /// Heterogeneous-barrier-imbalance sensitivity (static OpenMP loop
    /// schedules spanning P- and E-cores stall the fast cores at barriers;
    /// negligible for embarrassingly parallel or bandwidth-bound codes).
    hetero: f64,
    /// Relative per-kind progress efficiency [fast kind, efficient kind].
    kind_eff: [f64; 2],
    /// Per-kind IPS inflation (measured instructions vs. useful progress).
    ips_infl: [f64; 2],
    /// Barrier iterations.
    iters: u32,
}

fn shape(name: &str) -> Option<NpbShape> {
    let s = match name {
        // Block tridiagonal solver: cache-friendly stencil, moderate BW.
        "bt" => NpbShape {
            mi: 0.45,
            smt: 1.0,
            serial: 0.01,
            sync: 0.004,
            sync2: 0.0015,
            hetero: 0.20,
            kind_eff: [1.0, 0.95],
            ips_infl: [1.0, 1.0],
            iters: 200,
        },
        // Conjugate gradient: irregular gather/scatter, memory-bound.
        "cg" => NpbShape {
            mi: 0.82,
            smt: 0.85,
            serial: 0.015,
            sync: 0.006,
            sync2: 0.0015,
            hetero: 0.10,
            kind_eff: [1.0, 0.88],
            ips_infl: [1.0, 1.0],
            iters: 150,
        },
        // Embarrassingly parallel: pure compute, loves SMT.
        "ep" => NpbShape {
            mi: 0.02,
            smt: 1.15,
            serial: 0.002,
            sync: 0.0,
            sync2: 0.0,
            hetero: 0.03,
            kind_eff: [1.0, 1.0],
            ips_infl: [1.0, 1.0],
            iters: 64,
        },
        // 3-D FFT: transposes stress memory, compute in between.
        "ft" => NpbShape {
            mi: 0.60,
            smt: 0.95,
            serial: 0.01,
            sync: 0.003,
            sync2: 0.0015,
            hetero: 0.15,
            kind_eff: [1.0, 0.95],
            ips_infl: [1.0, 1.0],
            iters: 120,
        },
        // Integer sort: bucket exchange, bandwidth-bound, short.
        "is" => NpbShape {
            mi: 0.82,
            smt: 0.85,
            serial: 0.02,
            sync: 0.008,
            sync2: 0.0020,
            hetero: 0.10,
            kind_eff: [1.0, 0.92],
            ips_infl: [1.0, 1.0],
            iters: 40,
        },
        // Pipelined SSOR solver: long-running, sync-heavy wavefronts whose
        // spin-waits inflate the measured IPS on slower cores (§6.3.1).
        "lu" => NpbShape {
            mi: 0.45,
            smt: 0.90,
            serial: 0.01,
            sync: 0.010,
            sync2: 0.0015,
            hetero: 0.25,
            kind_eff: [1.0, 0.85],
            ips_infl: [1.08, 1.40],
            iters: 300,
        },
        // Multigrid: the paper's example of a bandwidth-bound code that is
        // cheapest on the efficient cores (Fig. 1b).
        "mg" => NpbShape {
            mi: 0.94,
            smt: 0.80,
            serial: 0.01,
            sync: 0.004,
            sync2: 0.0010,
            hetero: 0.08,
            kind_eff: [1.0, 1.0],
            ips_infl: [1.0, 1.0],
            iters: 120,
        },
        // Scalar pentadiagonal solver.
        "sp" => NpbShape {
            mi: 0.60,
            smt: 0.95,
            serial: 0.01,
            sync: 0.005,
            sync2: 0.0015,
            hetero: 0.20,
            kind_eff: [1.0, 0.93],
            ips_infl: [1.0, 1.0],
            iters: 220,
        },
        // Unstructured adaptive mesh: irregular, sync-heavy.
        "ua" => NpbShape {
            mi: 0.65,
            smt: 0.90,
            serial: 0.015,
            sync: 0.012,
            sync2: 0.0030,
            hetero: 0.25,
            kind_eff: [1.0, 0.87],
            ips_infl: [1.0, 1.12],
            iters: 180,
        },
        _ => return None,
    };
    Some(s)
}

/// Class-C work sizes chosen so CFS runtimes on the simulated Raptor Lake
/// land in the paper's range (seconds to tens of seconds; `ep.C` ≈ 2.4 s).
fn intel_work(name: &str) -> f64 {
    match name {
        "bt" => 2.2e12,
        "cg" => 6.0e11,
        "ep" => 4.1e11,
        "ft" => 1.3e12,
        "is" => 2.5e11,
        "lu" => 2.0e12,
        "mg" => 4.0e11,
        "sp" => 1.8e12,
        "ua" => 1.2e12,
        _ => 0.0,
    }
}

/// Class-A work sizes for the Odroid XU3-E.
fn odroid_work(name: &str) -> f64 {
    match name {
        "bt" => 2.0e11,
        "cg" => 5.0e10,
        "ep" => 6.0e10,
        "ft" => 1.2e11,
        "is" => 2.5e10,
        "lu" => 2.5e11,
        "mg" => 4.0e10,
        "sp" => 1.5e11,
        "ua" => 1.0e11,
        _ => 0.0,
    }
}

fn build(name: &str, work: f64) -> Option<AppSpec> {
    let s = shape(name)?;
    Some(
        AppSpec::builder(name, 2)
            .total_work(work)
            .serial_fraction(s.serial)
            .iterations(s.iters)
            .mem_intensity(s.mi)
            .smt_efficiency(s.smt)
            .contention(ContentionModel {
                linear: s.sync,
                quadratic: s.sync2,
            })
            .kind_efficiency(s.kind_eff.to_vec())
            .ips_inflation(s.ips_infl.to_vec())
            .hetero_penalty(s.hetero)
            // OpenMP static loop schedules: equal chunks, no work stealing.
            .dynamic_balance(false)
            .build()
            .expect("npb specs are valid"),
    )
}

/// The class-C model of an NPB code for the Intel system.
pub fn intel(name: &str) -> Option<AppSpec> {
    build(name, intel_work(name)).filter(|_| intel_work(name) > 0.0)
}

/// The class-A model of an NPB code for the Odroid.
pub fn odroid(name: &str) -> Option<AppSpec> {
    build(name, odroid_work(name)).filter(|_| odroid_work(name) > 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_platform::presets;
    use harp_sim::{LaunchOpts, NullManager, SimConfig, Simulation};

    #[test]
    fn all_names_resolve_on_both_platforms() {
        for n in NPB_NAMES {
            assert!(intel(n).is_some(), "{n} intel");
            assert!(odroid(n).is_some(), "{n} odroid");
        }
        assert!(intel("zz").is_none());
    }

    #[test]
    fn ep_class_c_runs_about_2_4s_under_cfs() {
        let mut sim = Simulation::new(presets::raptor_lake(), SimConfig::default());
        sim.add_arrival(0, intel("ep").unwrap(), LaunchOpts::all_hw_threads());
        let r = sim.run(&mut NullManager).unwrap();
        let t = r.makespan_s();
        assert!(
            (1.8..3.2).contains(&t),
            "ep.C CFS runtime {t}s, expected ≈2.4s"
        );
    }

    #[test]
    fn all_intel_npb_run_in_paper_range_under_cfs() {
        for n in NPB_NAMES {
            let mut sim = Simulation::new(presets::raptor_lake(), SimConfig::default());
            sim.add_arrival(0, intel(n).unwrap(), LaunchOpts::all_hw_threads());
            let r = sim.run(&mut NullManager).unwrap();
            let t = r.makespan_s();
            assert!((1.0..90.0).contains(&t), "{n}.C CFS runtime {t}s");
        }
    }

    #[test]
    fn mg_prefers_e_cores_for_energy() {
        // Run mg.C once on 6 E-cores and once on 6 P-cores (full SMT):
        // comparable time, much less energy on E-cores (paper Fig. 1b).
        use harp_sim::{Affinity, Manager, MgrEvent, SimState};
        use harp_types::HwThreadId;
        struct Pin(Vec<usize>, u32);
        impl Manager for Pin {
            fn on_event(&mut self, st: &mut SimState, ev: MgrEvent) {
                if let MgrEvent::AppStarted { app, .. } = ev {
                    st.set_app_affinity(
                        app,
                        Affinity::from_threads(self.0.iter().map(|&i| HwThreadId(i))),
                    )
                    .unwrap();
                    st.set_team_size(app, self.1).unwrap();
                }
            }
        }
        let run = |threads: Vec<usize>, team: u32| {
            let mut sim = Simulation::new(presets::raptor_lake(), SimConfig::default());
            sim.add_arrival(0, intel("mg").unwrap(), LaunchOpts::fixed_team(team));
            sim.run(&mut Pin(threads, team)).unwrap()
        };
        // 10 E-cores (≈ the bandwidth saturation point, hw threads 16..26)
        // vs 6 P-cores with both siblings (threads 0..12).
        let e_run = run((16..26).collect(), 10);
        let p_run = run((0..12).collect(), 12);
        let time_ratio = e_run.makespan_s() / p_run.makespan_s();
        assert!(time_ratio < 1.4, "mg on E-cores only {time_ratio}x slower");
        assert!(
            e_run.total_energy_j < 0.7 * p_run.total_energy_j,
            "E: {}J P: {}J",
            e_run.total_energy_j,
            p_run.total_energy_j
        );
    }

    #[test]
    fn ep_scales_with_more_resources() {
        let run = |team: u32| {
            let mut sim = Simulation::new(presets::raptor_lake(), SimConfig::default());
            sim.add_arrival(0, intel("ep").unwrap(), LaunchOpts::fixed_team(team));
            sim.run(&mut NullManager).unwrap().makespan_ns
        };
        let t4 = run(4);
        let t16 = run(16);
        let t32 = run(32);
        assert!(t16 * 2 < t4, "ep 4->16 should scale well");
        assert!(t32 < t16, "ep keeps scaling to full machine");
    }

    #[test]
    fn mg_does_not_scale_past_bandwidth() {
        let run = |team: u32| {
            let mut sim = Simulation::new(presets::raptor_lake(), SimConfig::default());
            sim.add_arrival(0, intel("mg").unwrap(), LaunchOpts::fixed_team(team));
            sim.run(&mut NullManager).unwrap().makespan_ns as f64
        };
        let t8 = run(8);
        let t32 = run(32);
        assert!(t8 / t32 < 1.35, "mg speedup 8->32 was {}", t8 / t32);
    }

    #[test]
    fn odroid_runtimes_are_platform_appropriate() {
        for n in ["ep", "mg", "lu"] {
            let mut sim = Simulation::new(presets::odroid_xu3(), SimConfig::default());
            sim.add_arrival(0, odroid(n).unwrap(), LaunchOpts::all_hw_threads());
            let r = sim.run(&mut NullManager).unwrap();
            let t = r.makespan_s();
            assert!((1.0..120.0).contains(&t), "{n}.A runtime {t}s");
        }
    }
}
