//! The canonical trace format: replayable workload scenarios as data.
//!
//! A [`Trace`] is a time-ordered schedule of [`TraceEvent`]s — arrivals,
//! departures, priority changes, and machine-wide load-phase shifts — that
//! the simulator's discrete-event loop consumes via
//! [`Trace::schedule_into`], and that `harp-testkit` replays directly
//! against an `RmCore` under its invariant oracles. Traces serialize to a
//! line-oriented text format designed for exact round-tripping: every
//! payload is an integer (times in nanoseconds, work in whole work units),
//! so `parse(to_canonical_text(t)) == t` holds bit-for-bit on every
//! platform.
//!
//! ```text
//! # harp-workload trace v1
//! name flash-crowd-demo
//! seed 42
//! window 60000000000
//! arrive 0 1 std cpu 20000000000
//! priority 5000000000 1 premium
//! load 10000000000 500
//! depart 20000000000 1
//! ```
//!
//! Events are kept in canonical order — ascending time, with ties broken
//! by event rank (arrive < priority < depart < load < fault directives)
//! and then key — so two traces with the same content always have
//! identical text.
//!
//! Format v2 adds hardware-degradation directives — `core_fail`,
//! `core_recover`, `thermal_cap`, `sensor_drop` — that the simulator turns
//! into [`harp_sim::Simulation::add_fault`] events. A v1 trace renders and
//! parses byte-identically to before v2 existed; fault directives are only
//! legal under the v2 header.

use crate::Platform;
use harp_sim::{AppSpec, ContentionModel, LaunchOpts, SimTime, Simulation};
use harp_types::{FaultEvent, HarpError, PriorityClass, Result};

/// A synthetic application template: a fixed, named behaviour model whose
/// only free parameter is the total work. Templates make traces compact
/// (one token instead of a full spec) and give the RM stable names to key
/// its warm-start profiles on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Template {
    /// Compute-bound, SMT-friendly, scales well (an `ep`-like kernel).
    Cpu,
    /// Memory-bandwidth-bound (an `mg`-like kernel).
    Mem,
    /// Convoys on a shared queue: throughput peaks at a small team (the
    /// paper's `binpack` effect, §6.3.1).
    Convoy,
    /// Dynamically load-balanced across heterogeneous kinds.
    Balanced,
    /// Short-iteration, serial-heavy interactive work.
    Bursty,
}

impl Template {
    /// All templates, in canonical order.
    pub const ALL: [Template; 5] = [
        Template::Cpu,
        Template::Mem,
        Template::Convoy,
        Template::Balanced,
        Template::Bursty,
    ];

    /// Canonical token used by the trace text format.
    pub fn as_str(self) -> &'static str {
        match self {
            Template::Cpu => "cpu",
            Template::Mem => "mem",
            Template::Convoy => "convoy",
            Template::Balanced => "balanced",
            Template::Bursty => "bursty",
        }
    }

    /// Parses a canonical token (see [`Template::as_str`]).
    pub fn parse(s: &str) -> Option<Template> {
        match s {
            "cpu" => Some(Template::Cpu),
            "mem" => Some(Template::Mem),
            "convoy" => Some(Template::Convoy),
            "balanced" => Some(Template::Balanced),
            "bursty" => Some(Template::Bursty),
            _ => None,
        }
    }

    /// Instantiates the template as a validated [`AppSpec`] with `work`
    /// total work units on a platform with `num_kinds` core kinds. The
    /// spec is a pure function of `(self, work, num_kinds, class)` — no
    /// randomness — so replays rebuild identical behaviour models.
    pub fn spec(self, num_kinds: usize, work: u64, class: PriorityClass) -> Result<AppSpec> {
        let num_kinds = num_kinds.max(1);
        let work = work.max(1) as f64;
        // Little cores extract less IPC from every template except the
        // memory-bound one (which is bandwidth-limited anywhere).
        let eff = |little: f64| -> Vec<f64> {
            (0..num_kinds)
                .map(|k| if k == 0 { 1.0 } else { little })
                .collect()
        };
        let b = match self {
            Template::Cpu => AppSpec::builder(self.as_str(), num_kinds)
                .serial_fraction(0.01)
                .iterations(150)
                .smt_efficiency(1.1)
                .kind_efficiency(eff(0.85)),
            Template::Mem => AppSpec::builder(self.as_str(), num_kinds)
                .serial_fraction(0.02)
                .iterations(120)
                .mem_intensity(0.85)
                .smt_efficiency(0.9)
                .kind_efficiency(eff(0.95)),
            Template::Convoy => AppSpec::builder(self.as_str(), num_kinds)
                .serial_fraction(0.01)
                .iterations(200)
                .contention(ContentionModel {
                    linear: 0.02,
                    quadratic: 0.04,
                })
                .kind_efficiency(eff(0.9)),
            Template::Balanced => AppSpec::builder(self.as_str(), num_kinds)
                .serial_fraction(0.02)
                .iterations(100)
                .dynamic_balance(true)
                .kind_efficiency(eff(0.8)),
            Template::Bursty => AppSpec::builder(self.as_str(), num_kinds)
                .serial_fraction(0.15)
                .iterations(40)
                .smt_efficiency(0.95)
                .kind_efficiency(eff(0.85)),
        };
        b.total_work(work).priority(class).build()
    }
}

/// One event of a replayable workload trace. Times are absolute simulated
/// nanoseconds from trace start; keys are caller-assigned instance
/// identifiers unique per trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// An application instance arrives.
    Arrive {
        /// Event time (ns).
        at: SimTime,
        /// Unique instance key later events reference.
        key: u64,
        /// Tenant priority class at launch.
        class: PriorityClass,
        /// Behaviour template.
        template: Template,
        /// Total work units.
        work: u64,
    },
    /// The instance under `key` is force-exited (app churn).
    Depart {
        /// Event time (ns).
        at: SimTime,
        /// Key of the departing instance.
        key: u64,
    },
    /// The instance under `key` changes priority class.
    Priority {
        /// Event time (ns).
        at: SimTime,
        /// Key of the affected instance.
        key: u64,
        /// The new class.
        class: PriorityClass,
    },
    /// Machine-wide load-phase shift to `permille / 1000` of nominal rate.
    Load {
        /// Event time (ns).
        at: SimTime,
        /// New rate scale in permille (1000 = nominal).
        permille: u32,
    },
    /// Hardware degradation directive (trace format v2 only): core
    /// hotplug, thermal capacity cap, or power-sensor dropout.
    Fault {
        /// Event time (ns).
        at: SimTime,
        /// The degradation event delivered to the machine.
        ev: FaultEvent,
    },
}

impl TraceEvent {
    /// Event time.
    pub fn at(&self) -> SimTime {
        match *self {
            TraceEvent::Arrive { at, .. }
            | TraceEvent::Depart { at, .. }
            | TraceEvent::Priority { at, .. }
            | TraceEvent::Load { at, .. }
            | TraceEvent::Fault { at, .. } => at,
        }
    }

    /// Canonical sort key: time, then event rank (arrivals first so a
    /// same-instant departure finds its key), then instance key.
    fn sort_key(&self) -> (SimTime, u8, u64) {
        match *self {
            TraceEvent::Arrive { at, key, .. } => (at, 0, key),
            TraceEvent::Priority { at, key, .. } => (at, 1, key),
            TraceEvent::Depart { at, key, .. } => (at, 2, key),
            TraceEvent::Load { at, permille } => (at, 3, permille as u64),
            // Fault directives occupy ranks 4-7 in wire-kind order, keyed
            // by their first payload word (core / cluster / ticks).
            TraceEvent::Fault { at, ev } => {
                let (kind, a, _) = ev.encode_words();
                (at, 4 + kind, a)
            }
        }
    }
}

/// A named, seeded, replayable workload trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Display name (also names corpus files).
    pub name: String,
    /// The generator seed that produced the trace (0 for hand-written).
    pub seed: u64,
    /// The simulated window the trace spans (ns); no event is later.
    pub window_ns: SimTime,
    /// Format version: 1 (no fault directives) or 2. A v1 trace renders
    /// byte-identically to the pre-v2 format.
    pub version: u32,
    /// The schedule, in canonical order.
    pub events: Vec<TraceEvent>,
}

/// Format version tag; the first line of every canonical v1 trace.
pub const TRACE_HEADER: &str = "# harp-workload trace v1";
/// Format version tag of v2 traces (fault directives allowed).
pub const TRACE_HEADER_V2: &str = "# harp-workload trace v2";

impl Trace {
    /// Creates an empty trace.
    pub fn new(name: impl Into<String>, seed: u64, window_ns: SimTime) -> Self {
        Trace {
            name: name.into(),
            seed,
            window_ns,
            version: 1,
            events: Vec::new(),
        }
    }

    /// Creates an empty v2 trace (fault directives allowed).
    pub fn new_v2(name: impl Into<String>, seed: u64, window_ns: SimTime) -> Self {
        let mut t = Trace::new(name, seed, window_ns);
        t.version = 2;
        t
    }

    /// Number of fault directives.
    pub fn faults(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Fault { .. }))
            .count()
    }

    /// Sorts events into canonical order (stable content → identical text).
    pub fn normalize(&mut self) {
        self.events.sort_by_key(|e| e.sort_key());
    }

    /// Number of arrival events.
    pub fn arrivals(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Arrive { .. }))
            .count()
    }

    /// Checks well-formedness: canonical event order, events within the
    /// window, unique arrival keys, departure/priority events referencing
    /// keys that arrived no later, and load shifts within `1..=4000`
    /// permille.
    ///
    /// # Errors
    ///
    /// Returns [`HarpError::Description`] naming the first violation.
    pub fn validate(&self) -> Result<()> {
        let fail = |detail: String| -> Result<()> { Err(HarpError::Description { detail }) };
        if self.name.is_empty() || self.name.contains(char::is_whitespace) {
            return fail(format!("trace name '{}' is empty or has spaces", self.name));
        }
        if self.version != 1 && self.version != 2 {
            return fail(format!("unsupported trace version {}", self.version));
        }
        let mut arrived: std::collections::HashMap<u64, SimTime> = std::collections::HashMap::new();
        let mut prev: Option<(SimTime, u8, u64)> = None;
        for (i, ev) in self.events.iter().enumerate() {
            let sk = ev.sort_key();
            if let Some(p) = prev {
                if sk < p {
                    return fail(format!("event {i} out of canonical order"));
                }
            }
            prev = Some(sk);
            if ev.at() > self.window_ns {
                return fail(format!("event {i} at {} ns beyond window", ev.at()));
            }
            match *ev {
                TraceEvent::Arrive { at, key, work, .. } => {
                    if arrived.insert(key, at).is_some() {
                        return fail(format!("duplicate arrival key {key}"));
                    }
                    if work == 0 {
                        return fail(format!("arrival {key} has zero work"));
                    }
                }
                TraceEvent::Depart { at, key } | TraceEvent::Priority { at, key, .. } => {
                    match arrived.get(&key) {
                        None => return fail(format!("event {i} references unknown key {key}")),
                        Some(&t0) if t0 > at => {
                            return fail(format!("event {i} precedes arrival of key {key}"))
                        }
                        _ => {}
                    }
                }
                TraceEvent::Load { permille, .. } => {
                    if permille == 0 || permille > 4000 {
                        return fail(format!("load shift {permille} outside 1..=4000"));
                    }
                }
                TraceEvent::Fault { ev, .. } => {
                    if self.version < 2 {
                        return fail(format!(
                            "event {i}: fault directives need trace v2 (version is {})",
                            self.version
                        ));
                    }
                    match ev {
                        FaultEvent::ThermalCap { permille, .. } => {
                            if permille == 0 || permille > 1000 {
                                return fail(format!("thermal cap {permille} outside 1..=1000"));
                            }
                        }
                        FaultEvent::SensorDrop { ticks } => {
                            if ticks == 0 {
                                return fail(format!("event {i}: zero-length sensor drop"));
                            }
                        }
                        FaultEvent::CoreFail { .. } | FaultEvent::CoreRecover { .. } => {}
                    }
                }
            }
        }
        Ok(())
    }

    /// Renders the canonical text form.
    pub fn to_canonical_text(&self) -> String {
        let mut s = String::with_capacity(64 + self.events.len() * 32);
        s.push_str(if self.version >= 2 {
            TRACE_HEADER_V2
        } else {
            TRACE_HEADER
        });
        s.push('\n');
        s.push_str(&format!("name {}\n", self.name));
        s.push_str(&format!("seed {}\n", self.seed));
        s.push_str(&format!("window {}\n", self.window_ns));
        for ev in &self.events {
            match *ev {
                TraceEvent::Arrive {
                    at,
                    key,
                    class,
                    template,
                    work,
                } => s.push_str(&format!(
                    "arrive {at} {key} {} {} {work}\n",
                    class.as_str(),
                    template.as_str()
                )),
                TraceEvent::Depart { at, key } => s.push_str(&format!("depart {at} {key}\n")),
                TraceEvent::Priority { at, key, class } => {
                    s.push_str(&format!("priority {at} {key} {}\n", class.as_str()))
                }
                TraceEvent::Load { at, permille } => s.push_str(&format!("load {at} {permille}\n")),
                TraceEvent::Fault { at, ev } => match ev {
                    FaultEvent::CoreFail { core } => {
                        s.push_str(&format!("core_fail {at} {}\n", core.0))
                    }
                    FaultEvent::CoreRecover { core } => {
                        s.push_str(&format!("core_recover {at} {}\n", core.0))
                    }
                    FaultEvent::ThermalCap { cluster, permille } => {
                        s.push_str(&format!("thermal_cap {at} {cluster} {permille}\n"))
                    }
                    FaultEvent::SensorDrop { ticks } => {
                        s.push_str(&format!("sensor_drop {at} {ticks}\n"))
                    }
                },
            }
        }
        s
    }

    /// Parses a canonical text trace.
    ///
    /// # Errors
    ///
    /// Returns [`HarpError::Description`] on a malformed header, an unknown
    /// directive, or a bad field; the parsed trace is also
    /// [validated](Trace::validate).
    pub fn parse(text: &str) -> Result<Trace> {
        let fail = |line_no: usize, detail: &str| HarpError::Description {
            detail: format!("trace line {}: {detail}", line_no + 1),
        };
        let mut lines = text.lines().enumerate();
        let version = match lines.next().map(|(_, l)| l.trim()) {
            Some(l) if l == TRACE_HEADER => 1,
            Some(l) if l == TRACE_HEADER_V2 => 2,
            _ => {
                return Err(HarpError::Description {
                    detail: format!("missing trace header '{TRACE_HEADER}' or '{TRACE_HEADER_V2}'"),
                })
            }
        };
        let mut trace = Trace::new("unnamed", 0, 0);
        trace.version = version;
        let mut saw = (false, false, false); // name, seed, window
        for (no, raw) in lines {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut f = line.split_ascii_whitespace();
            let directive = f.next().unwrap_or_default();
            let rest: Vec<&str> = f.collect();
            let int =
                |s: &str| -> Result<u64> { s.parse::<u64>().map_err(|_| fail(no, "bad integer")) };
            match directive {
                "name" => {
                    let [n] = rest[..] else {
                        return Err(fail(no, "name takes one token"));
                    };
                    trace.name = n.to_string();
                    saw.0 = true;
                }
                "seed" => {
                    let [s] = rest[..] else {
                        return Err(fail(no, "seed takes one integer"));
                    };
                    trace.seed = int(s)?;
                    saw.1 = true;
                }
                "window" => {
                    let [w] = rest[..] else {
                        return Err(fail(no, "window takes one integer"));
                    };
                    trace.window_ns = int(w)?;
                    saw.2 = true;
                }
                "arrive" => {
                    let [at, key, class, template, work] = rest[..] else {
                        return Err(fail(no, "arrive takes 5 fields"));
                    };
                    trace.events.push(TraceEvent::Arrive {
                        at: int(at)?,
                        key: int(key)?,
                        class: PriorityClass::parse(class)
                            .ok_or_else(|| fail(no, "unknown priority class"))?,
                        template: Template::parse(template)
                            .ok_or_else(|| fail(no, "unknown template"))?,
                        work: int(work)?,
                    });
                }
                "depart" => {
                    let [at, key] = rest[..] else {
                        return Err(fail(no, "depart takes 2 fields"));
                    };
                    trace.events.push(TraceEvent::Depart {
                        at: int(at)?,
                        key: int(key)?,
                    });
                }
                "priority" => {
                    let [at, key, class] = rest[..] else {
                        return Err(fail(no, "priority takes 3 fields"));
                    };
                    trace.events.push(TraceEvent::Priority {
                        at: int(at)?,
                        key: int(key)?,
                        class: PriorityClass::parse(class)
                            .ok_or_else(|| fail(no, "unknown priority class"))?,
                    });
                }
                "load" => {
                    let [at, permille] = rest[..] else {
                        return Err(fail(no, "load takes 2 fields"));
                    };
                    let p = int(permille)?;
                    trace.events.push(TraceEvent::Load {
                        at: int(at)?,
                        permille: u32::try_from(p).map_err(|_| fail(no, "bad permille"))?,
                    });
                }
                "core_fail" | "core_recover" => {
                    let [at, core] = rest[..] else {
                        return Err(fail(no, "core hotplug takes 2 fields"));
                    };
                    let core = harp_types::CoreId(
                        usize::try_from(int(core)?).map_err(|_| fail(no, "bad core id"))?,
                    );
                    let ev = if directive == "core_fail" {
                        FaultEvent::CoreFail { core }
                    } else {
                        FaultEvent::CoreRecover { core }
                    };
                    trace.events.push(TraceEvent::Fault { at: int(at)?, ev });
                }
                "thermal_cap" => {
                    let [at, cluster, permille] = rest[..] else {
                        return Err(fail(no, "thermal_cap takes 3 fields"));
                    };
                    trace.events.push(TraceEvent::Fault {
                        at: int(at)?,
                        ev: FaultEvent::ThermalCap {
                            cluster: u32::try_from(int(cluster)?)
                                .map_err(|_| fail(no, "bad cluster"))?,
                            permille: u32::try_from(int(permille)?)
                                .map_err(|_| fail(no, "bad permille"))?,
                        },
                    });
                }
                "sensor_drop" => {
                    let [at, ticks] = rest[..] else {
                        return Err(fail(no, "sensor_drop takes 2 fields"));
                    };
                    trace.events.push(TraceEvent::Fault {
                        at: int(at)?,
                        ev: FaultEvent::SensorDrop { ticks: int(ticks)? },
                    });
                }
                other => {
                    return Err(fail(no, &format!("unknown directive '{other}'")));
                }
            }
        }
        if !(saw.0 && saw.1 && saw.2) {
            return Err(HarpError::Description {
                detail: "trace missing name/seed/window".to_string(),
            });
        }
        trace.validate()?;
        Ok(trace)
    }

    /// Schedules every trace event into a simulation of the given
    /// platform. Arrivals launch the template spec with all hardware
    /// threads (the unmanaged default a real service starts with; the
    /// manager under test resizes teams from there).
    ///
    /// # Errors
    ///
    /// Returns [`HarpError::Description`] if the trace is invalid or a
    /// template fails to instantiate.
    pub fn schedule_into(&self, sim: &mut Simulation, platform: Platform) -> Result<()> {
        self.validate()?;
        for ev in &self.events {
            match *ev {
                TraceEvent::Arrive {
                    at,
                    key,
                    class,
                    template,
                    work,
                } => {
                    let spec = template.spec(platform.num_kinds(), work, class)?;
                    sim.add_arrival_keyed(at, key, spec, LaunchOpts::all_hw_threads());
                }
                TraceEvent::Depart { at, key } => sim.add_departure(at, key),
                TraceEvent::Priority { at, key, class } => sim.add_priority_change(at, key, class),
                TraceEvent::Load { at, permille } => sim.add_load_shift(at, permille),
                TraceEvent::Fault { at, ev } => sim.add_fault(at, ev),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new("sample", 7, 60_000_000_000);
        t.events = vec![
            TraceEvent::Arrive {
                at: 0,
                key: 1,
                class: PriorityClass::Standard,
                template: Template::Cpu,
                work: 2_000_000_000,
            },
            TraceEvent::Arrive {
                at: 1_000_000,
                key: 2,
                class: PriorityClass::Batch,
                template: Template::Mem,
                work: 5_000_000_000,
            },
            TraceEvent::Priority {
                at: 2_000_000,
                key: 1,
                class: PriorityClass::Premium,
            },
            TraceEvent::Load {
                at: 3_000_000,
                permille: 500,
            },
            TraceEvent::Depart {
                at: 4_000_000,
                key: 2,
            },
        ];
        t
    }

    #[test]
    fn canonical_text_round_trips_exactly() {
        let t = sample();
        t.validate().unwrap();
        let text = t.to_canonical_text();
        let back = Trace::parse(&text).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.to_canonical_text(), text);
    }

    #[test]
    fn templates_round_trip_and_instantiate() {
        for tpl in Template::ALL {
            assert_eq!(Template::parse(tpl.as_str()), Some(tpl));
            for kinds in [1usize, 2, 3] {
                let s = tpl
                    .spec(kinds, 1_000_000_000, PriorityClass::Standard)
                    .unwrap();
                s.validate().unwrap();
                assert_eq!(s.kind_efficiency.len(), kinds);
            }
        }
        assert_eq!(Template::parse("gpu"), None);
    }

    #[test]
    fn validation_rejects_malformed_traces() {
        let mut dup = sample();
        dup.events.push(TraceEvent::Arrive {
            at: 5_000_000,
            key: 1,
            class: PriorityClass::Standard,
            template: Template::Cpu,
            work: 1,
        });
        assert!(dup.validate().is_err(), "duplicate key");

        let mut orphan = sample();
        orphan.events.push(TraceEvent::Depart {
            at: 6_000_000,
            key: 99,
        });
        assert!(orphan.validate().is_err(), "unknown key");

        let mut unsorted = sample();
        unsorted.events.swap(0, 1);
        assert!(unsorted.validate().is_err(), "out of order");
        unsorted.normalize();
        assert!(unsorted.validate().is_ok(), "normalize restores order");

        let mut late = sample();
        late.events.push(TraceEvent::Load {
            at: 100_000_000_000,
            permille: 500,
        });
        assert!(late.validate().is_err(), "beyond window");

        let mut zeroload = sample();
        zeroload.events.push(TraceEvent::Load {
            at: 5_000_000,
            permille: 0,
        });
        assert!(zeroload.validate().is_err(), "zero permille");
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(Trace::parse("").is_err(), "empty");
        assert!(Trace::parse("nonsense\n").is_err(), "no header");
        let headed = |body: &str| format!("{TRACE_HEADER}\nname t\nseed 0\nwindow 10\n{body}");
        assert!(Trace::parse(&headed("")).is_ok());
        assert!(
            Trace::parse(&headed("arrive 0 1 std cpu\n")).is_err(),
            "short arrive"
        );
        assert!(
            Trace::parse(&headed("arrive 0 1 gold cpu 5\n")).is_err(),
            "bad class"
        );
        assert!(
            Trace::parse(&headed("arrive 0 1 std gpu 5\n")).is_err(),
            "bad template"
        );
        assert!(
            Trace::parse(&headed("frobnicate 0\n")).is_err(),
            "bad directive"
        );
        assert!(
            Trace::parse(&format!("{TRACE_HEADER}\nname t\nseed 0\n")).is_err(),
            "missing window"
        );
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = format!(
            "{TRACE_HEADER}\n# a comment\n\nname t\nseed 3\nwindow 10\n# more\narrive 0 1 std cpu 5\n"
        );
        let t = Trace::parse(&text).unwrap();
        assert_eq!(t.arrivals(), 1);
        assert_eq!(t.seed, 3);
    }

    #[test]
    fn v2_fault_directives_round_trip_exactly() {
        use harp_types::CoreId;
        let mut t = Trace::new_v2("degraded", 9, 60_000_000_000);
        t.events = vec![
            TraceEvent::Arrive {
                at: 0,
                key: 1,
                class: PriorityClass::Standard,
                template: Template::Cpu,
                work: 2_000_000_000,
            },
            TraceEvent::Fault {
                at: 1_000_000,
                ev: FaultEvent::CoreFail { core: CoreId(3) },
            },
            TraceEvent::Fault {
                at: 1_000_000,
                ev: FaultEvent::CoreRecover { core: CoreId(2) },
            },
            TraceEvent::Fault {
                at: 1_000_000,
                ev: FaultEvent::ThermalCap {
                    cluster: 1,
                    permille: 600,
                },
            },
            TraceEvent::Fault {
                at: 1_000_000,
                ev: FaultEvent::SensorDrop { ticks: 4 },
            },
        ];
        t.validate().unwrap();
        let text = t.to_canonical_text();
        assert!(text.starts_with(TRACE_HEADER_V2), "{text}");
        assert!(text.contains("core_fail 1000000 3"), "{text}");
        assert!(text.contains("thermal_cap 1000000 1 600"), "{text}");
        let back = Trace::parse(&text).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.to_canonical_text(), text);
        assert_eq!(back.faults(), 4);
        // Same-instant fault directives sort after app events, in
        // kind-rank order (core_fail < core_recover < thermal < sensor).
        let mut shuffled = t.clone();
        shuffled.events.reverse();
        shuffled.normalize();
        assert_eq!(shuffled, t);
    }

    #[test]
    fn fault_directives_require_v2() {
        let mut t = sample();
        t.events.push(TraceEvent::Fault {
            at: 5_000_000,
            ev: FaultEvent::SensorDrop { ticks: 1 },
        });
        assert!(t.validate().is_err(), "v1 must reject fault directives");
        t.version = 2;
        t.validate().unwrap();
        // v1 text never mentions fault directives, so old parsers still
        // read every v1 trace; v2 bounds are enforced.
        let mut bad = Trace::new_v2("t", 0, 10);
        bad.events = vec![TraceEvent::Fault {
            at: 0,
            ev: FaultEvent::ThermalCap {
                cluster: 0,
                permille: 1500,
            },
        }];
        assert!(bad.validate().is_err(), "cap permille above 1000");
        bad.events = vec![TraceEvent::Fault {
            at: 0,
            ev: FaultEvent::SensorDrop { ticks: 0 },
        }];
        assert!(bad.validate().is_err(), "zero sensor drop");
        assert!(Trace::parse("# harp-workload trace v3\nname t\nseed 0\nwindow 1\n").is_err());
    }

    #[test]
    fn v1_rendering_is_unchanged_by_the_v2_extension() {
        let t = sample();
        let text = t.to_canonical_text();
        assert!(text.starts_with(TRACE_HEADER));
        assert!(!text.contains("core_"), "v1 text must not mention faults");
        assert_eq!(Trace::parse(&text).unwrap().version, 1);
    }

    #[test]
    fn scheduled_fault_trace_degrades_the_simulated_machine() {
        use harp_sim::{NullManager, SimConfig};
        use harp_types::CoreId;
        let mut t = Trace::new_v2("degrade", 0, 10 * harp_sim::SECOND);
        t.events = vec![
            TraceEvent::Arrive {
                at: 0,
                key: 1,
                class: PriorityClass::Standard,
                template: Template::Cpu,
                work: 1_000_000_000,
            },
            TraceEvent::Fault {
                at: 0,
                ev: FaultEvent::CoreFail { core: CoreId(1) },
            },
        ];
        let mut sim = Simulation::new(Platform::RaptorLake.hardware(), SimConfig::default());
        t.schedule_into(&mut sim, Platform::RaptorLake).unwrap();
        let r = sim.run(&mut NullManager).unwrap();
        assert_eq!(r.apps.len(), 1);
        assert!(!sim.state().fault_state().is_online(CoreId(1)));
    }

    #[test]
    fn scheduled_trace_drives_the_simulator() {
        use harp_sim::{NullManager, SimConfig};
        let mut t = Trace::new("drive", 0, 10 * harp_sim::SECOND);
        t.events = vec![
            TraceEvent::Arrive {
                at: 0,
                key: 1,
                class: PriorityClass::Standard,
                template: Template::Cpu,
                work: 1_000_000_000,
            },
            TraceEvent::Arrive {
                at: 0,
                key: 2,
                class: PriorityClass::Batch,
                template: Template::Convoy,
                work: 1_000_000_000_000,
            },
            TraceEvent::Depart {
                at: harp_sim::SECOND,
                key: 2,
            },
        ];
        let mut sim = Simulation::new(Platform::RaptorLake.hardware(), SimConfig::default());
        t.schedule_into(&mut sim, Platform::RaptorLake).unwrap();
        let r = sim.run(&mut NullManager).unwrap();
        assert_eq!(r.apps.len(), 2, "both instances exit");
        assert!(r.partial.is_empty());
    }
}
