//! Regression: a client that dies mid-frame must not take the daemon down
//! or disturb other sessions.
//!
//! The original server implementation unwrapped every socket read, so a
//! peer hanging up in the middle of a `SubmitPoints` frame panicked the
//! connection thread with the RM lock held and wedged the daemon. This
//! test registers a raw client, tears its socket down half-way through a
//! frame, and asserts that (a) the daemon reaps the dead session and (b) a
//! concurrently-connected healthy session keeps receiving activations.

use harp_daemon::{DaemonConfig, HarpDaemon, UnixTransport};
use harp_platform::HardwareDescription;
use harp_proto::frame;
use harp_proto::{AdaptivityType, Message, Register, SubmitPoints, WirePoint};
use harp_types::{ErvShape, ExtResourceVector, NonFunctional};
use libharp::{HarpSession, SessionConfig};
use std::io::Write as _;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn temp_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("harp-disc-{}-{tag}.sock", std::process::id()))
}

fn points(shape: &ErvShape) -> Vec<(ExtResourceVector, NonFunctional)> {
    vec![
        (
            ExtResourceVector::from_flat(shape, &[0, 4, 0]).unwrap(),
            NonFunctional::new(3.0e10, 40.0),
        ),
        (
            ExtResourceVector::from_flat(shape, &[0, 0, 8]).unwrap(),
            NonFunctional::new(2.5e10, 15.0),
        ),
    ]
}

#[test]
fn client_death_mid_frame_leaves_other_sessions_running() {
    let hw = HardwareDescription::raptor_lake();
    let shape = hw.erv_shape();
    let socket = temp_socket("mid-frame");
    let daemon = HarpDaemon::start(DaemonConfig::new(&socket, hw)).unwrap();

    // Healthy session A, speaking the full libharp protocol.
    let cfg = SessionConfig::new("healthy", AdaptivityType::Scalable)
        .with_points(vec![2, 1], points(&shape));
    let mut a = HarpSession::connect(UnixTransport::connect(&socket).unwrap(), cfg).unwrap();
    let a_id = a.app_id();

    // Raw client B: registers correctly...
    let b = UnixStream::connect(&socket).unwrap();
    let mut b_read = b.try_clone().unwrap();
    frame::write_frame(
        &b,
        &Message::Register(Register {
            pid: 4242,
            app_name: "doomed".into(),
            adaptivity: AdaptivityType::Scalable,
            provides_utility: false,
        }),
    )
    .unwrap();
    let b_id = loop {
        // Activations for the provisional grant may interleave with the ack.
        match frame::read_frame(&mut b_read).unwrap().expect("ack frame") {
            Message::RegisterAck(ack) => break ack.app_id,
            _ => continue,
        }
    };
    assert_ne!(b_id, a_id);

    // ...then dies in the middle of a SubmitPoints frame: the length
    // prefix promises more bytes than ever arrive.
    let mut encoded = Vec::new();
    frame::write_frame(
        &mut encoded,
        &Message::SubmitPoints(SubmitPoints {
            app_id: b_id,
            smt_widths: vec![2, 1],
            points: vec![WirePoint {
                erv_flat: vec![0, 4, 0],
                utility: 1.0e10,
                power: 20.0,
            }],
        }),
    )
    .unwrap();
    assert!(encoded.len() > 8, "need a torn frame, not a torn prefix");
    (&b).write_all(&encoded[..encoded.len() / 2]).unwrap();
    drop(b_read);
    drop(b);

    // The daemon reaps B's session without operator intervention...
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let managed: Vec<u64> = daemon.managed_apps().iter().map(|x| x.raw()).collect();
        if managed == [a_id] {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "dead session never reaped; still managing {managed:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // ...and keeps serving A: with B gone the whole machine belongs to A
    // again, so the efficient 8-E-core point must (re)activate.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        a.poll(|| 0.0).unwrap();
        if let Some(act) = a.allocation().current() {
            if act.parallelism == 8 {
                assert_eq!(act.hw_threads.len(), 8);
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "healthy session starved after peer crash (last: {:?})",
            a.allocation().current()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    a.exit().unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while !daemon.managed_apps().is_empty() {
        assert!(Instant::now() < deadline, "exit never drained the RM");
        std::thread::sleep(Duration::from_millis(5));
    }
    daemon.shutdown();
}

/// Reactor-side hangup handling: killing a client mid-frame raises
/// `EPOLLRDHUP`/`EPOLLHUP` on its shard, which must free the session's
/// allocation within one reactor tick — not after a timeout, and without
/// waiting for unrelated traffic to flush the dead socket out.
#[test]
fn hangup_frees_allocation_within_one_reactor_tick() {
    let hw = HardwareDescription::raptor_lake();
    let shape = hw.erv_shape();
    let socket = temp_socket("rdhup");
    let daemon = HarpDaemon::start(DaemonConfig::new(&socket, hw)).unwrap();
    daemon.load_profile("burst", points(&shape));

    // Raw client: register, wait for the ack so the RM holds an
    // allocation for it, then die with a torn frame on the wire.
    let c = UnixStream::connect(&socket).unwrap();
    let mut c_read = c.try_clone().unwrap();
    frame::write_frame(
        &c,
        &Message::Register(Register {
            pid: 1,
            app_name: "burst".into(),
            adaptivity: AdaptivityType::Scalable,
            provides_utility: false,
        }),
    )
    .unwrap();
    let id = loop {
        match frame::read_frame(&mut c_read).unwrap().expect("ack frame") {
            Message::RegisterAck(ack) => break ack.app_id,
            _ => continue,
        }
    };
    assert_eq!(
        daemon.managed_apps().iter().map(|a| a.raw()).next(),
        Some(id)
    );

    let shard_hangups = || -> u64 {
        let snap = harp_obs::metrics::snapshot();
        (0..8)
            .map(|i| snap.counter(&format!("daemon.shard{i}.hangups")))
            .sum()
    };
    let hangups_before = shard_hangups();
    (&c).write_all(&[0xFF, 0x00, 0x00, 0x00, 0xAA]).unwrap(); // torn frame
    let killed_at = Instant::now();
    drop(c_read);
    drop(c); // close both clones -> EPOLLRDHUP at the daemon

    // One reactor tick is bounded by the shard's 250ms poller timeout;
    // an edge-delivered hangup should beat it by orders of magnitude.
    // Allow a full second for a loaded single-core CI box.
    while !daemon.managed_apps().is_empty() {
        assert!(
            killed_at.elapsed() < Duration::from_secs(1),
            "hangup not reaped within a reactor tick"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let hangups_after = shard_hangups();
    assert!(
        hangups_after > hangups_before,
        "reap happened but no shard observed a hangup event"
    );
    daemon.shutdown();
}

#[test]
fn instant_hangup_after_connect_is_harmless() {
    let socket = temp_socket("instant");
    let daemon = HarpDaemon::start(DaemonConfig::new(
        &socket,
        HardwareDescription::raptor_lake(),
    ))
    .unwrap();
    for _ in 0..16 {
        // Connect-and-slam: no bytes at all, or a torn length prefix.
        let s = UnixStream::connect(&socket).unwrap();
        drop(s);
        let s2 = UnixStream::connect(&socket).unwrap();
        (&s2).write_all(&[0x10, 0x00]).unwrap();
        drop(s2);
    }
    // The daemon still accepts and serves a real session afterwards.
    let hw_shape = HardwareDescription::raptor_lake().erv_shape();
    let cfg = SessionConfig::new("late", AdaptivityType::Scalable)
        .with_points(vec![2, 1], points(&hw_shape));
    let mut s = HarpSession::connect(UnixTransport::connect(&socket).unwrap(), cfg).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        s.poll(|| 0.0).unwrap();
        if s.allocation().current().is_some() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no activation after hangup storm"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    s.exit().unwrap();
    daemon.shutdown();
}
