//! End-to-end telemetry: the daemon's flight recorder must reconstruct
//! the full request → selection → allocation → directive path, serve it
//! over the wire via `DumpTelemetry`, and log protocol failures as
//! exactly-once structured events.
//!
//! The global collector is process-wide, so these tests serialize on a
//! mutex and reset the recorder before each run.

use harp_daemon::{DaemonConfig, HarpDaemon, UnixTransport, ERR_PROTOCOL};
use harp_obs::render::{parse_dump, render_span_tree};
use harp_obs::schema::validate_dump;
use harp_platform::HardwareDescription;
use harp_proto::frame;
use harp_proto::{AdaptivityType, DumpTelemetry, Message, Register};
use harp_types::{ErvShape, ExtResourceVector, NonFunctional};
use libharp::{HarpSession, SessionConfig};
use std::io::Write as _;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

fn temp_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("harp-obs-{}-{tag}.sock", std::process::id()))
}

fn points(shape: &ErvShape) -> Vec<(ExtResourceVector, NonFunctional)> {
    vec![
        (
            ExtResourceVector::from_flat(shape, &[0, 4, 0]).unwrap(),
            NonFunctional::new(3.0e10, 40.0),
        ),
        (
            ExtResourceVector::from_flat(shape, &[0, 0, 8]).unwrap(),
            NonFunctional::new(2.5e10, 15.0),
        ),
    ]
}

/// Requests a telemetry dump over the wire on a fresh connection.
fn fetch_dump(socket: &PathBuf, include_metrics: bool) -> String {
    let s = UnixStream::connect(socket).unwrap();
    let mut read = s.try_clone().unwrap();
    frame::write_frame(
        &s,
        &Message::DumpTelemetry(DumpTelemetry { include_metrics }),
    )
    .unwrap();
    loop {
        match frame::read_frame(&mut read).unwrap().expect("dump reply") {
            Message::TelemetryDump(d) => {
                assert!(!d.truncated, "tiny test session should never truncate");
                break d.jsonl;
            }
            // The daemon greets every connection with its boot epoch.
            Message::Hello(_) => continue,
            other => panic!("expected TelemetryDump, got {other:?}"),
        }
    }
}

/// Lets in-flight events from daemon threads reach the recorder.
fn settle() {
    std::thread::sleep(Duration::from_millis(50));
    harp_obs::flush_global();
}

#[test]
fn span_tree_reconstructs_request_to_directive_path() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    harp_obs::reset_global();
    let hw = HardwareDescription::raptor_lake();
    let shape = hw.erv_shape();
    let socket = temp_socket("path");
    let daemon = HarpDaemon::start(DaemonConfig::new(&socket, hw).with_tracing()).unwrap();

    let cfg = SessionConfig::new("traced", AdaptivityType::Scalable)
        .with_points(vec![2, 1], points(&shape));
    let mut s = HarpSession::connect(UnixTransport::connect(&socket).unwrap(), cfg).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        s.poll(|| 0.0).unwrap();
        if s.allocation().current().is_some() {
            break;
        }
        assert!(Instant::now() < deadline, "no activation under tracing");
        std::thread::sleep(Duration::from_millis(5));
    }
    s.exit().unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while !daemon.managed_apps().is_empty() {
        assert!(Instant::now() < deadline, "exit never drained the RM");
        std::thread::sleep(Duration::from_millis(5));
    }
    settle();

    let jsonl = fetch_dump(&socket, true);
    let stats = validate_dump(&jsonl).expect("wire dump must pass the schema");
    assert!(stats.events > 0 && stats.metrics > 0);
    let parsed = parse_dump(&jsonl).unwrap();

    // The directive instant must sit inside a reallocate span that nests
    // (via rm.register or rm.submit_points) under a daemon dispatch span —
    // one connected trace from request to directive.
    let directive = parsed
        .events
        .iter()
        .find(|e| e.sub == "rm" && e.name == "directive")
        .expect("no rm.directive instant recorded");
    let start_of = |span: u64| {
        parsed
            .events
            .iter()
            .find(|e| e.kind == "span_start" && e.span == span)
    };
    let realloc = start_of(directive.span).expect("directive's span evicted");
    assert_eq!(
        (realloc.sub.as_str(), realloc.name.as_str()),
        ("rm", "reallocate")
    );
    let request = start_of(realloc.parent).expect("reallocate is an orphan");
    assert_eq!(request.sub, "rm");
    assert!(
        request.name == "register" || request.name == "submit_points",
        "reallocate hangs under rm.{}, not a request",
        request.name
    );
    let dispatch = start_of(request.parent).expect("request span is an orphan");
    assert_eq!(
        (dispatch.sub.as_str(), dispatch.name.as_str()),
        ("daemon", "dispatch")
    );

    // A solver selection ran somewhere under the same story.
    assert!(
        parsed
            .events
            .iter()
            .any(|e| e.sub == "solver" && e.name == "solve" && e.kind == "span_end"),
        "no solver.solve span recorded"
    );

    // And the rendered tree shows the whole path for `harp-trace` users.
    let tree = render_span_tree(&parsed);
    for needle in [
        "daemon.dispatch",
        "rm.register",
        "rm.reallocate",
        "solver.solve",
        "rm.directive",
        "daemon.session_deregistered",
    ] {
        assert!(
            tree.contains(needle),
            "span tree is missing {needle}:\n{tree}"
        );
    }

    daemon.shutdown();
}

#[test]
fn malformed_frame_logs_one_error_and_one_deregister() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    harp_obs::reset_global();
    let hw = HardwareDescription::raptor_lake();
    let socket = temp_socket("malformed");
    let daemon = HarpDaemon::start(DaemonConfig::new(&socket, hw).with_tracing()).unwrap();

    // Register a real session first so the error event carries its id.
    let c = UnixStream::connect(&socket).unwrap();
    let mut c_read = c.try_clone().unwrap();
    frame::write_frame(
        &c,
        &Message::Register(Register {
            pid: 7,
            app_name: "garbler".into(),
            adaptivity: AdaptivityType::Scalable,
            provides_utility: false,
        }),
    )
    .unwrap();
    let session = loop {
        match frame::read_frame(&mut c_read).unwrap().expect("ack") {
            Message::RegisterAck(ack) => break ack.app_id,
            _ => continue,
        }
    };

    // A complete frame whose payload is not a decodable message: the
    // daemon must answer ERR_PROTOCOL once and drop the connection.
    (&c).write_all(&[2, 0, 0, 0, 0xFF, 0xFF]).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while !daemon.managed_apps().is_empty() {
        assert!(Instant::now() < deadline, "malformed session never reaped");
        std::thread::sleep(Duration::from_millis(5));
    }
    drop(c_read);
    drop(c);
    settle();

    let parsed = parse_dump(&fetch_dump(&socket, false)).unwrap();
    let errs: Vec<_> = parsed
        .events
        .iter()
        .filter(|e| e.sub == "daemon" && e.name == "err_reply")
        .collect();
    assert_eq!(errs.len(), 1, "expected exactly one err_reply: {errs:?}");
    let code = errs[0]
        .fields
        .iter()
        .find(|(k, _)| k == "code")
        .and_then(|(_, v)| v.as_u64())
        .unwrap();
    assert_eq!(code as u32, ERR_PROTOCOL);
    let err_session = errs[0]
        .fields
        .iter()
        .find(|(k, _)| k == "session")
        .and_then(|(_, v)| v.as_u64())
        .unwrap();
    assert_eq!(err_session, session, "error not attributed to the session");

    let deregs: Vec<_> = parsed
        .events
        .iter()
        .filter(|e| e.sub == "daemon" && e.name == "session_deregistered")
        .collect();
    assert_eq!(
        deregs.len(),
        1,
        "session must deregister exactly once: {deregs:?}"
    );

    daemon.shutdown();
}
