//! Live telemetry streaming: `SubscribeTelemetry` must produce a
//! bounded sequence of `TelemetryFrame`s whose accounting is exact —
//! every frame's `seq` equals the frames delivered before it plus the
//! frames dropped before it, so a subscriber can always tell how many
//! intervals it missed.

use harp_daemon::{DaemonConfig, HarpDaemon, UnixTransport};
use harp_proto::frame;
use harp_proto::{AdaptivityType, Message, SubscribeTelemetry, TelemetryFrame};
use harp_types::{ErvShape, ExtResourceVector, NonFunctional};
use libharp::{HarpSession, SessionConfig};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn temp_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("harp-stream-{}-{tag}.sock", std::process::id()))
}

fn points(shape: &ErvShape) -> Vec<(ExtResourceVector, NonFunctional)> {
    vec![
        (
            ExtResourceVector::from_flat(shape, &[0, 4, 0]).unwrap(),
            NonFunctional::new(3.0e10, 40.0),
        ),
        (
            ExtResourceVector::from_flat(shape, &[0, 0, 8]).unwrap(),
            NonFunctional::new(2.5e10, 15.0),
        ),
    ]
}

/// Reads frames until `want` have arrived or `budget` elapses.
fn read_frames(stream: &mut UnixStream, want: usize, budget: Duration) -> Vec<TelemetryFrame> {
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .unwrap();
    let deadline = Instant::now() + budget;
    let mut frames = Vec::new();
    while frames.len() < want && Instant::now() < deadline {
        match frame::read_frame(&mut *stream) {
            Ok(Some(Message::TelemetryFrame(f))) => frames.push(f),
            Ok(Some(_)) => continue, // Hello etc.
            Ok(None) => break,       // peer closed
            // Read timeouts surface as `Io`; keep polling to the deadline.
            Err(harp_types::HarpError::Io { .. }) => continue,
            Err(e) => panic!("read_frame failed: {e}"),
        }
    }
    frames
}

/// The exactness invariant: a frame's `seq` counts every push attempt
/// before it, delivered or dropped, so for the i-th *delivered* frame
/// `seq == i + dropped_frames`.
fn assert_exact_accounting(frames: &[TelemetryFrame]) {
    for (i, f) in frames.iter().enumerate() {
        assert_eq!(
            f.seq,
            i as u64 + f.dropped_frames,
            "frame {i}: seq {} != delivered-before {i} + dropped {}",
            f.seq,
            f.dropped_frames
        );
    }
}

#[test]
fn subscription_streams_frames_with_exact_accounting() {
    let hw = harp_platform::HardwareDescription::raptor_lake();
    let shape = hw.erv_shape();
    let socket = temp_socket("basic");
    let daemon = HarpDaemon::start(DaemonConfig::new(&socket, hw).with_shards(2)).unwrap();

    // A real registered session so frames carry a non-empty table.
    let cfg =
        SessionConfig::new("mg", AdaptivityType::Scalable).with_points(vec![2, 1], points(&shape));
    let mut s = HarpSession::connect(UnixTransport::connect(&socket).unwrap(), cfg).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        s.poll(|| 0.0).unwrap();
        if s.allocation().current().is_some() {
            break;
        }
        assert!(Instant::now() < deadline, "no activation");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Subscribe from an observer connection.
    let mut obs = UnixStream::connect(&socket).unwrap();
    frame::write_frame(
        &obs,
        &Message::SubscribeTelemetry(SubscribeTelemetry {
            interval_ms: 20,
            include_metrics: true,
        }),
    )
    .unwrap();

    let frames = read_frames(&mut obs, 5, Duration::from_secs(10));
    assert!(
        frames.len() >= 5,
        "expected at least 5 frames, got {}",
        frames.len()
    );
    assert_exact_accounting(&frames);

    for f in &frames {
        assert_eq!(f.interval_ms, 20);
        // The daemon RM runs offline (no energy ticks), so the ledger
        // totals are zero — but the registered session must still appear.
        assert!(
            f.sessions.iter().any(|row| row.name == "mg"),
            "frame {} has no row for the registered session: {:?}",
            f.seq,
            f.sessions
        );
        assert_eq!(
            f.tick_uj,
            f.idle_uj + f.sessions.iter().map(|r| r.tick_uj).sum::<u64>()
        );
    }

    // Metric deltas ride along as obs metric JSONL; the baseline frame
    // carries cumulative values, so shard counters must be visible.
    let first = &frames[0];
    assert!(
        first.metrics_jsonl.contains("daemon.shard"),
        "baseline frame should carry cumulative shard counters:\n{}",
        first.metrics_jsonl
    );
    for line in first.metrics_jsonl.lines() {
        assert!(
            line.contains("\"type\":\"metric\""),
            "non-metric line in frame metrics: {line}"
        );
    }

    // Dispatch latency for the session's own traffic shows up once the
    // session keeps talking (poll loop above sent several messages).
    drop(obs);
    s.exit().unwrap();
    daemon.shutdown();
}

#[test]
fn stalled_subscriber_accounting_stays_exact() {
    let hw = harp_platform::HardwareDescription::raptor_lake();
    let socket = temp_socket("stall");
    let daemon = HarpDaemon::start(DaemonConfig::new(&socket, hw).with_shards(1)).unwrap();

    let mut obs = UnixStream::connect(&socket).unwrap();
    frame::write_frame(
        &obs,
        &Message::SubscribeTelemetry(SubscribeTelemetry {
            interval_ms: 20,
            include_metrics: true,
        }),
    )
    .unwrap();

    // Stall without reading: frames pile into the socket buffer and the
    // daemon's outbound ring until the backlog bound trips and pushes
    // start being dropped (whether any drop depends on kernel buffer
    // sizes — the invariant must hold either way).
    std::thread::sleep(Duration::from_millis(1500));
    let frames = read_frames(&mut obs, usize::MAX, Duration::from_secs(2));
    assert!(!frames.is_empty(), "no frames after stall");
    assert_exact_accounting(&frames);
    // Sequences are strictly increasing across delivered frames even
    // when the daemon skipped some.
    for w in frames.windows(2) {
        assert!(w[0].seq < w[1].seq);
        assert!(w[0].dropped_frames <= w[1].dropped_frames);
    }

    drop(obs);
    daemon.shutdown();
}
