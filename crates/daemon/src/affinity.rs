//! Real CPU-affinity actuation (`sched_setaffinity`), the primitive the
//! HARP RM uses to pin applications to their granted hardware threads.

use harp_types::{HarpError, HwThreadId, Result};

/// Raw syscall surface, declared directly so the crate needs no `libc`
/// dependency. The mask is a plain fixed-size bitset, bit *i* = CPU *i*,
/// matching the kernel's `cpu_set_t` ABI (an array of unsigned longs).
#[cfg(target_os = "linux")]
mod sys {
    /// Maximum CPU index representable, matching glibc's `CPU_SETSIZE`.
    pub const CPU_SETSIZE: usize = 1024;
    const WORD_BITS: usize = usize::BITS as usize;

    /// `cpu_set_t`-compatible bitmask.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct CpuSet {
        words: [usize; CPU_SETSIZE / WORD_BITS],
    }

    impl CpuSet {
        pub fn zeroed() -> Self {
            CpuSet {
                words: [0; CPU_SETSIZE / WORD_BITS],
            }
        }

        pub fn set(&mut self, cpu: usize) {
            self.words[cpu / WORD_BITS] |= 1 << (cpu % WORD_BITS);
        }

        pub fn is_set(&self, cpu: usize) -> bool {
            self.words[cpu / WORD_BITS] & (1 << (cpu % WORD_BITS)) != 0
        }
    }

    extern "C" {
        pub fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const CpuSet) -> i32;
        pub fn sched_getaffinity(pid: i32, cpusetsize: usize, mask: *mut CpuSet) -> i32;
    }
}

/// Pins the *calling thread* to the given hardware threads (logical CPUs).
///
/// # Errors
///
/// Returns [`HarpError::Other`] for an empty set and [`HarpError::Io`] if
/// the kernel rejects the mask (e.g. offline CPUs).
#[cfg(target_os = "linux")]
pub fn pin_current_thread(threads: &[HwThreadId]) -> Result<()> {
    if threads.is_empty() {
        return Err(HarpError::other("cannot pin to an empty CPU set"));
    }
    let mut set = sys::CpuSet::zeroed();
    for t in threads {
        if t.0 >= sys::CPU_SETSIZE {
            return Err(HarpError::other(format!("cpu {} out of range", t.0)));
        }
        set.set(t.0);
    }
    // SAFETY: `set` is a fully initialized, owned bitmask of the size we
    // pass; sched_setaffinity only reads it.
    let rc = unsafe { sys::sched_setaffinity(0, std::mem::size_of::<sys::CpuSet>(), &set) };
    if rc != 0 {
        return Err(std::io::Error::last_os_error().into());
    }
    Ok(())
}

/// Returns the calling thread's current affinity set.
///
/// # Errors
///
/// Returns [`HarpError::Io`] if the kernel call fails.
#[cfg(target_os = "linux")]
pub fn current_affinity() -> Result<Vec<HwThreadId>> {
    let mut set = sys::CpuSet::zeroed();
    // SAFETY: sched_getaffinity writes at most `size_of::<CpuSet>()` bytes
    // into the owned, properly aligned mask.
    let rc = unsafe { sys::sched_getaffinity(0, std::mem::size_of::<sys::CpuSet>(), &mut set) };
    if rc != 0 {
        return Err(std::io::Error::last_os_error().into());
    }
    Ok((0..sys::CPU_SETSIZE)
        .filter(|&i| set.is_set(i))
        .map(HwThreadId)
        .collect())
}

/// Non-Linux stub: affinity is not supported.
#[cfg(not(target_os = "linux"))]
pub fn pin_current_thread(_threads: &[HwThreadId]) -> Result<()> {
    Err(HarpError::other("affinity requires Linux"))
}

/// Non-Linux stub: affinity is not supported.
#[cfg(not(target_os = "linux"))]
pub fn current_affinity() -> Result<Vec<HwThreadId>> {
    Err(HarpError::other("affinity requires Linux"))
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;

    #[test]
    fn pin_and_read_back() {
        let original = current_affinity().unwrap();
        assert!(!original.is_empty());
        // Pin to the first currently-allowed CPU only.
        let target = original[0];
        std::thread::spawn(move || {
            pin_current_thread(&[target]).unwrap();
            let now = current_affinity().unwrap();
            assert_eq!(now, vec![target]);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn empty_set_is_rejected() {
        assert!(pin_current_thread(&[]).is_err());
    }

    #[test]
    fn out_of_range_cpu_is_rejected() {
        assert!(pin_current_thread(&[HwThreadId(100_000)]).is_err());
    }
}
