//! Real CPU-affinity actuation (`sched_setaffinity`), the primitive the
//! HARP RM uses to pin applications to their granted hardware threads.

use harp_types::{HarpError, HwThreadId, Result};

/// Pins the *calling thread* to the given hardware threads (logical CPUs).
///
/// # Errors
///
/// Returns [`HarpError::Other`] for an empty set and [`HarpError::Io`] if
/// the kernel rejects the mask (e.g. offline CPUs).
#[cfg(target_os = "linux")]
pub fn pin_current_thread(threads: &[HwThreadId]) -> Result<()> {
    if threads.is_empty() {
        return Err(HarpError::other("cannot pin to an empty CPU set"));
    }
    // SAFETY: CPU_ZERO/CPU_SET initialize and populate a plain bitmask on
    // a fully owned, zero-initialized cpu_set_t; sched_setaffinity reads it.
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        libc::CPU_ZERO(&mut set);
        for t in threads {
            if t.0 >= libc::CPU_SETSIZE as usize {
                return Err(HarpError::other(format!("cpu {} out of range", t.0)));
            }
            libc::CPU_SET(t.0, &mut set);
        }
        let rc = libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set);
        if rc != 0 {
            return Err(std::io::Error::last_os_error().into());
        }
    }
    Ok(())
}

/// Returns the calling thread's current affinity set.
///
/// # Errors
///
/// Returns [`HarpError::Io`] if the kernel call fails.
#[cfg(target_os = "linux")]
pub fn current_affinity() -> Result<Vec<HwThreadId>> {
    // SAFETY: sched_getaffinity writes into an owned cpu_set_t.
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        let rc = libc::sched_getaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &mut set);
        if rc != 0 {
            return Err(std::io::Error::last_os_error().into());
        }
        Ok((0..libc::CPU_SETSIZE as usize)
            .filter(|&i| libc::CPU_ISSET(i, &set))
            .map(HwThreadId)
            .collect())
    }
}

/// Non-Linux stub: affinity is not supported.
#[cfg(not(target_os = "linux"))]
pub fn pin_current_thread(_threads: &[HwThreadId]) -> Result<()> {
    Err(HarpError::other("affinity requires Linux"))
}

/// Non-Linux stub: affinity is not supported.
#[cfg(not(target_os = "linux"))]
pub fn current_affinity() -> Result<Vec<HwThreadId>> {
    Err(HarpError::other("affinity requires Linux"))
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;

    #[test]
    fn pin_and_read_back() {
        let original = current_affinity().unwrap();
        assert!(!original.is_empty());
        // Pin to the first currently-allowed CPU only.
        let target = original[0];
        std::thread::spawn(move || {
            pin_current_thread(&[target]).unwrap();
            let now = current_affinity().unwrap();
            assert_eq!(now, vec![target]);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn empty_set_is_rejected() {
        assert!(pin_current_thread(&[]).is_err());
    }

    #[test]
    fn out_of_range_cpu_is_rejected() {
        assert!(pin_current_thread(&[HwThreadId(100_000)]).is_err());
    }
}
