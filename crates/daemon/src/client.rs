//! Client-side Unix-socket transport for libharp.

use harp_proto::frame::{encode_frame, FrameDecoder};
use harp_proto::Message;
use harp_types::{HarpError, Result};
use reactor::poll_fd;
use std::io::{ErrorKind, Write};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// A [`libharp::Transport`] over a Unix domain socket.
///
/// The socket is non-blocking; an incremental [`FrameDecoder`] reassembles
/// partial reads, so [`libharp::Transport::try_recv`] never blocks and
/// never tears a partially-read frame. No reader thread is spawned — a
/// process with hundreds of HARP sessions (the connection-storm bench)
/// costs one file descriptor per session, not one thread.
#[derive(Debug)]
pub struct UnixTransport {
    stream: UnixStream,
    decoder: FrameDecoder,
}

impl UnixTransport {
    /// Connects to a HARP daemon socket.
    ///
    /// # Errors
    ///
    /// Returns [`HarpError::Connect`] classifying *why* the daemon is
    /// unreachable — [`harp_types::ConnectKind::SocketMissing`] (no daemon
    /// ever started, or it removed its socket on shutdown),
    /// [`harp_types::ConnectKind::Refused`] (socket file exists but nothing
    /// is listening — a crashed daemon), or
    /// [`harp_types::ConnectKind::PermissionDenied`] (not retryable).
    /// Reconnect loops use [`HarpError::is_retryable`] to decide whether
    /// backing off can help.
    pub fn connect(path: impl AsRef<Path>) -> Result<Self> {
        let stream = UnixStream::connect(path).map_err(|e| HarpError::from_connect_io(&e))?;
        Self::from_stream(stream)
    }

    /// Wraps an already-connected stream.
    ///
    /// # Errors
    ///
    /// Returns [`HarpError::Io`] if the stream cannot be switched to
    /// non-blocking mode.
    pub fn from_stream(stream: UnixStream) -> Result<Self> {
        stream.set_nonblocking(true)?;
        Ok(UnixTransport {
            stream,
            decoder: FrameDecoder::new(),
        })
    }

    /// Pulls whatever the socket has buffered into the decoder.
    ///
    /// Returns `true` if the peer has hung up (EOF). With or without a
    /// clean frame boundary, EOF means the daemon is gone — the session
    /// layer treats both identically as a retryable disconnect.
    fn fill(&mut self) -> Result<bool> {
        loop {
            match self.decoder.read_from(&mut self.stream) {
                Ok(0) => return Ok(true),
                Ok(_) => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Decodes the next buffered frame, if a complete one is present.
    fn next_msg(&mut self) -> Result<Option<Message>> {
        match self.decoder.next_frame()? {
            Some(frame) => frame.decode().map(Some),
            None => Ok(None),
        }
    }
}

impl Drop for UnixTransport {
    /// Hang up on drop. Dropping the stream closes the fd anyway, but an
    /// explicit bidirectional shutdown severs clones too, so a crashed (or
    /// merely dropped) client is always reaped by the daemon — the chaos
    /// suite's `client_crash_mid_exploration` scenario catches exactly
    /// that.
    fn drop(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

impl libharp::Transport for UnixTransport {
    fn send(&mut self, msg: &Message) -> Result<()> {
        let bytes = encode_frame(msg)?;
        let mut sent = 0;
        while sent < bytes.len() {
            match self.stream.write(&bytes[sent..]) {
                Ok(0) => return Err(HarpError::disconnected("daemon connection closed")),
                Ok(n) => sent += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    // The daemon's socket buffer is full; wait for drain.
                    poll_fd(self.stream.as_raw_fd(), false, true, None)?;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    fn recv(&mut self) -> Result<Message> {
        loop {
            if let Some(msg) = self.next_msg()? {
                return Ok(msg);
            }
            if self.fill()? {
                // EOF: surface any already-buffered frame, then report the
                // hangup exactly as the old reader thread did.
                if let Some(msg) = self.next_msg()? {
                    return Ok(msg);
                }
                return Err(HarpError::disconnected("daemon connection closed"));
            }
            if let Some(msg) = self.next_msg()? {
                return Ok(msg);
            }
            poll_fd(self.stream.as_raw_fd(), true, false, None)?;
        }
    }

    fn try_recv(&mut self) -> Result<Option<Message>> {
        if let Some(msg) = self.next_msg()? {
            return Ok(Some(msg));
        }
        if self.fill()? {
            if let Some(msg) = self.next_msg()? {
                return Ok(Some(msg));
            }
            return Err(HarpError::disconnected("daemon connection closed"));
        }
        self.next_msg()
    }

    fn poll_ready(&mut self, timeout: Option<Duration>) -> Result<bool> {
        if self.decoder.pending() > 0 {
            return Ok(true);
        }
        Ok(poll_fd(self.stream.as_raw_fd(), true, false, timeout)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libharp::Transport as _;

    #[test]
    fn socketpair_round_trip() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut ta = UnixTransport::from_stream(a).unwrap();
        let mut tb = UnixTransport::from_stream(b).unwrap();
        ta.send(&Message::Exit { app_id: 5 }).unwrap();
        assert_eq!(tb.recv().unwrap(), Message::Exit { app_id: 5 });
        assert_eq!(tb.try_recv().unwrap(), None);
        tb.send(&Message::Exit { app_id: 6 }).unwrap();
        assert_eq!(ta.recv().unwrap(), Message::Exit { app_id: 6 });
    }

    #[test]
    fn closed_peer_is_a_disconnect() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut ta = UnixTransport::from_stream(a).unwrap();
        drop(b);
        // recv drains EOF -> a retryable disconnect, not a protocol error.
        let err = ta.recv().unwrap_err();
        assert!(err.is_disconnect(), "got {err:?}");
        assert!(err.is_retryable());
    }

    #[test]
    fn buffered_frames_survive_a_hangup() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut ta = UnixTransport::from_stream(a).unwrap();
        let mut tb = UnixTransport::from_stream(b).unwrap();
        // Peer sends then hangs up: the queued frame must still arrive
        // before the disconnect is reported (the daemon's final error
        // reply travels this path).
        tb.send(&Message::Exit { app_id: 9 }).unwrap();
        drop(tb);
        assert_eq!(ta.recv().unwrap(), Message::Exit { app_id: 9 });
        assert!(ta.recv().unwrap_err().is_disconnect());
    }

    #[test]
    fn poll_ready_reflects_pending_bytes() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut ta = UnixTransport::from_stream(a).unwrap();
        let mut tb = UnixTransport::from_stream(b).unwrap();
        assert!(!ta.poll_ready(Some(Duration::from_millis(10))).unwrap());
        tb.send(&Message::Exit { app_id: 1 }).unwrap();
        assert!(ta.poll_ready(Some(Duration::from_secs(2))).unwrap());
        assert_eq!(ta.try_recv().unwrap(), Some(Message::Exit { app_id: 1 }));
    }

    #[test]
    fn missing_socket_is_classified() {
        let path = std::env::temp_dir().join(format!("harp-nosock-{}.sock", std::process::id()));
        let err = UnixTransport::connect(&path).unwrap_err();
        assert_eq!(
            err.connect_kind(),
            Some(harp_types::ConnectKind::SocketMissing)
        );
        assert!(err.is_retryable());
    }

    #[test]
    fn dead_socket_file_is_refused() {
        use std::os::unix::net::UnixListener;
        let path = std::env::temp_dir().join(format!("harp-dead-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        // Bind then drop the listener: the file stays, nobody listens.
        drop(UnixListener::bind(&path).unwrap());
        let err = UnixTransport::connect(&path).unwrap_err();
        assert_eq!(err.connect_kind(), Some(harp_types::ConnectKind::Refused));
        assert!(err.is_retryable());
        let _ = std::fs::remove_file(&path);
    }
}
