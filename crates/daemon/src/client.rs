//! Client-side Unix-socket transport for libharp.

use harp_proto::frame;
use harp_proto::Message;
use harp_types::{HarpError, Result};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::mpsc;

/// A [`libharp::Transport`] over a Unix domain socket.
///
/// A dedicated reader thread decodes incoming frames into a channel, so
/// [`libharp::Transport::try_recv`] is non-blocking without ever tearing a
/// partially-read frame.
#[derive(Debug)]
pub struct UnixTransport {
    write: UnixStream,
    rx: mpsc::Receiver<Message>,
}

impl UnixTransport {
    /// Connects to a HARP daemon socket.
    ///
    /// # Errors
    ///
    /// Returns [`HarpError::Connect`] classifying *why* the daemon is
    /// unreachable — [`harp_types::ConnectKind::SocketMissing`] (no daemon
    /// ever started, or it removed its socket on shutdown),
    /// [`harp_types::ConnectKind::Refused`] (socket file exists but nothing
    /// is listening — a crashed daemon), or
    /// [`harp_types::ConnectKind::PermissionDenied`] (not retryable).
    /// Reconnect loops use [`HarpError::is_retryable`] to decide whether
    /// backing off can help.
    pub fn connect(path: impl AsRef<Path>) -> Result<Self> {
        let stream = UnixStream::connect(path).map_err(|e| HarpError::from_connect_io(&e))?;
        Self::from_stream(stream)
    }

    /// Wraps an already-connected stream.
    ///
    /// # Errors
    ///
    /// Returns [`HarpError::Io`] if the stream cannot be cloned for the
    /// reader thread.
    pub fn from_stream(stream: UnixStream) -> Result<Self> {
        let read = stream.try_clone()?;
        let (tx, rx) = mpsc::channel();
        std::thread::Builder::new()
            .name("harp-client-reader".into())
            .spawn(move || {
                let mut read = read;
                loop {
                    match frame::read_frame(&mut read) {
                        Ok(Some(msg)) => {
                            if tx.send(msg).is_err() {
                                return;
                            }
                        }
                        Ok(None) | Err(_) => return,
                    }
                }
            })?;
        Ok(UnixTransport { write: stream, rx })
    }
}

impl Drop for UnixTransport {
    /// Hang up on drop. Without this the reader thread's clone keeps the
    /// socket half-open forever, so a crashed (or merely dropped) client
    /// would never be reaped by the daemon — the chaos suite's
    /// `client_crash_mid_exploration` scenario catches exactly that.
    fn drop(&mut self) {
        let _ = self.write.shutdown(std::net::Shutdown::Both);
    }
}

impl libharp::Transport for UnixTransport {
    fn send(&mut self, msg: &Message) -> Result<()> {
        frame::write_frame(&mut self.write, msg)
    }

    fn recv(&mut self) -> Result<Message> {
        self.rx
            .recv()
            .map_err(|_| HarpError::disconnected("daemon connection closed"))
    }

    fn try_recv(&mut self) -> Result<Option<Message>> {
        match self.rx.try_recv() {
            Ok(m) => Ok(Some(m)),
            Err(mpsc::TryRecvError::Empty) => Ok(None),
            Err(mpsc::TryRecvError::Disconnected) => {
                Err(HarpError::disconnected("daemon connection closed"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libharp::Transport as _;

    #[test]
    fn socketpair_round_trip() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut ta = UnixTransport::from_stream(a).unwrap();
        let mut tb = UnixTransport::from_stream(b).unwrap();
        ta.send(&Message::Exit { app_id: 5 }).unwrap();
        assert_eq!(tb.recv().unwrap(), Message::Exit { app_id: 5 });
        assert_eq!(tb.try_recv().unwrap(), None);
        tb.send(&Message::Exit { app_id: 6 }).unwrap();
        // Give the reader thread a moment.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        loop {
            if let Some(m) = ta.try_recv().unwrap() {
                assert_eq!(m, Message::Exit { app_id: 6 });
                break;
            }
            assert!(std::time::Instant::now() < deadline, "timed out");
            std::thread::yield_now();
        }
    }

    #[test]
    fn closed_peer_is_a_disconnect() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut ta = UnixTransport::from_stream(a).unwrap();
        drop(b);
        // recv drains EOF -> a retryable disconnect, not a protocol error.
        let err = ta.recv().unwrap_err();
        assert!(err.is_disconnect(), "got {err:?}");
        assert!(err.is_retryable());
    }

    #[test]
    fn missing_socket_is_classified() {
        let path = std::env::temp_dir().join(format!("harp-nosock-{}.sock", std::process::id()));
        let err = UnixTransport::connect(&path).unwrap_err();
        assert_eq!(
            err.connect_kind(),
            Some(harp_types::ConnectKind::SocketMissing)
        );
        assert!(err.is_retryable());
    }

    #[test]
    fn dead_socket_file_is_refused() {
        use std::os::unix::net::UnixListener;
        let path = std::env::temp_dir().join(format!("harp-dead-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        // Bind then drop the listener: the file stays, nobody listens.
        drop(UnixListener::bind(&path).unwrap());
        let err = UnixTransport::connect(&path).unwrap_err();
        assert_eq!(err.connect_kind(), Some(harp_types::ConnectKind::Refused));
        assert!(err.is_retryable());
        let _ = std::fs::remove_file(&path);
    }
}
