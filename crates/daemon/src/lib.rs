//! The real middleware path: the HARP RM as a Unix-socket daemon.
//!
//! The evaluation harness drives the RM inside the machine simulator
//! (`harp-sched`), but HARP is a *Linux-integrated* framework (paper §4.3:
//! a central user-space resource manager alongside systemd-style services).
//! This crate provides that deployment shape:
//!
//! * [`HarpDaemon`] — accepts libharp connections on a Unix domain socket,
//!   speaks the `harp-proto` frame protocol, runs the shared [`harp_rm::RmCore`] and
//!   pushes operating-point activations to all affected applications.
//!   Client I/O runs on a small set of epoll reactor shards (DESIGN.md
//!   §12): each shard owns a slab-indexed session table and decodes frames
//!   zero-copy, so ten thousand idle sessions cost file descriptors — not
//!   threads or per-message allocations.
//! * [`UnixTransport`] — the client-side [`libharp::Transport`] over a
//!   non-blocking `UnixStream` (an incremental frame decoder reassembles
//!   partial reads, so non-blocking polls never tear frames).
//! * [`affinity`] — real `sched_setaffinity` actuation for worker threads.
//!
//! Online perf/RAPL monitoring is hardware-specific; the daemon therefore
//! runs the RM in *offline* mode by default (allocation from description
//! files), which is exactly how the paper operates on machines without
//! usable counters (§6.4). The full online loop is exercised against the
//! simulated machine in `harp-sched`.
//!
//! # Example
//!
//! ```no_run
//! use harp_daemon::{DaemonConfig, HarpDaemon};
//! use harp_platform::HardwareDescription;
//!
//! let cfg = DaemonConfig::new("/tmp/harp.sock", HardwareDescription::raptor_lake());
//! let daemon = HarpDaemon::start(cfg)?;
//! // ... clients connect via libharp + UnixTransport ...
//! daemon.shutdown();
//! # Ok::<(), harp_types::HarpError>(())
//! ```

#![warn(missing_docs)]

pub mod affinity;
mod client;
mod reactor_server;
mod server;

pub use client::UnixTransport;
pub use server::{
    DaemonConfig, DaemonHandle, HarpDaemon, ERR_DUPLICATE_REGISTER, ERR_NO_SESSION, ERR_PROTOCOL,
    ERR_REGISTER_REJECTED, ERR_SUBMIT_REJECTED,
};
