//! The sharded reactor I/O core of `harpd` (DESIGN.md §12).
//!
//! N shard threads each own an epoll [`Poller`] and a slab-indexed
//! session table. The accept loop hands new connections to shards
//! round-robin; from then on a session's socket is touched only by its
//! shard — no per-client threads, no per-client write mutex. Outbound
//! frames go through a per-session byte ring flushed opportunistically
//! and on `EPOLLOUT`; inbound bytes accumulate in a per-session
//! [`FrameDecoder`] whose frames are decoded zero-copy.
//!
//! Cross-shard traffic (an allocation round on shard A producing a
//! directive for a session on shard B) travels as encoded frame bytes
//! through the target shard's inbox, which its pipe [`Waker`] interrupts.
//! All allocation state stays in [`Shared`] exactly as before the
//! rewrite: boot epochs, resume tokens, owners, journal and watchdog
//! semantics are unchanged — only the transport underneath them moved
//! from threads to readiness.

use crate::server::{
    directive_to_activate, err_name, lock, msg_name, truncate_jsonl, OpGuard, Shared,
    ERR_DUPLICATE_REGISTER, ERR_NO_SESSION, ERR_PROTOCOL, ERR_REGISTER_REJECTED,
    ERR_SUBMIT_REJECTED, MAX_DUMP_BYTES,
};
use harp_obs::metrics::{bucket_index, HistogramSnapshot};
use harp_obs::IntervalSeries;
use harp_proto::frame::{encode_frame, FrameDecoder};
use harp_proto::{
    ErrorMsg, Hello, Message, RegisterAck, SessionEnergy, TelemetryDump, TelemetryFrame,
};
use harp_types::{AppId, ExtResourceVector, NonFunctional};
use reactor::{poll_fd, Events, Interest, Poller, Slab, Waker};
use std::collections::HashMap;
use std::io::{ErrorKind, Write};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Hard ceiling on reactor shards — also the size of the static
/// per-shard metric-name table (`harp-obs` counters take `&'static str`).
pub const MAX_SHARDS: usize = 8;

/// Poller token reserved for the shard's waker pipe.
const WAKER_TOKEN: u64 = u64::MAX;

/// How long a closing session may block the shard to flush a final
/// error/ack frame to a slow peer before the bytes are abandoned.
const CLOSE_FLUSH_BUDGET: Duration = Duration::from_millis(100);

/// Push interval used when a `SubscribeTelemetry` asks for 0 ("default").
const DEFAULT_SUB_INTERVAL_MS: u64 = 250;

/// Floor/ceiling on requested subscription intervals.
const MIN_SUB_INTERVAL_MS: u64 = 20;
const MAX_SUB_INTERVAL_MS: u64 = 60_000;

/// A subscriber whose outbound ring still holds more than this many
/// unsent bytes when a push comes due has stopped draining; the frame is
/// dropped (oldest-first, since it is the frames longest due that die)
/// and accounted in `dropped_frames` rather than queued without bound.
const MAX_SUB_BACKLOG_BYTES: usize = 64 * 1024;

/// Ring capacity of each subscription's interval series (only the
/// latest interval is shipped per frame; the short history serves the
/// `watch` reconnect case where one frame covers several intervals).
const SUB_INTERVAL_RING: usize = 16;

/// Live telemetry subscription state for one connection.
struct SubState {
    interval: Duration,
    include_metrics: bool,
    next_push: Instant,
    /// Next frame sequence number; advances for dropped frames too, so
    /// `delivered + dropped == seq` always holds at the subscriber.
    seq: u64,
    /// Cumulative frames dropped under backpressure.
    dropped: u64,
    /// Per-subscription interval series over the global metrics registry.
    intervals: IntervalSeries,
    /// Ledger cumulatives at the previous frame, for per-interval deltas.
    last_total_uj: u64,
    last_idle_uj: u64,
    last_sessions: HashMap<AppId, u64>,
    /// Latency histograms at the previous frame.
    last_latency: HashMap<AppId, HistogramSnapshot>,
}

impl SubState {
    fn new(interval: Duration, include_metrics: bool, now: Instant) -> SubState {
        SubState {
            interval,
            include_metrics,
            next_push: now,
            seq: 0,
            dropped: 0,
            intervals: IntervalSeries::new(SUB_INTERVAL_RING),
            last_total_uj: 0,
            last_idle_uj: 0,
            last_sessions: HashMap::new(),
            last_latency: HashMap::new(),
        }
    }
}

/// Per-shard counter names; index = shard id. Static because the metrics
/// registry interns `&'static str` names.
struct ShardMetricNames {
    accepted: &'static str,
    frames: &'static str,
    flushes: &'static str,
    hangups: &'static str,
}

macro_rules! shard_metrics {
    ($($n:literal),*) => {
        [$(ShardMetricNames {
            accepted: concat!("daemon.shard", $n, ".accepted"),
            frames: concat!("daemon.shard", $n, ".frames"),
            flushes: concat!("daemon.shard", $n, ".flushes"),
            hangups: concat!("daemon.shard", $n, ".hangups"),
        }),*]
    };
}

static SHARD_METRICS: [ShardMetricNames; MAX_SHARDS] =
    shard_metrics!("0", "1", "2", "3", "4", "5", "6", "7");

/// Work handed to a shard from outside its thread.
pub(crate) enum ShardMsg {
    /// A freshly accepted connection (stream, connection id).
    Conn(UnixStream, u64),
    /// Encoded frame bytes for the session currently routed to this shard.
    Deliver(AppId, Vec<u8>),
}

/// The cross-thread face of one shard: its inbox plus the waker that
/// interrupts its poller.
pub(crate) struct ShardHandle {
    inbox: Mutex<Vec<ShardMsg>>,
    waker: Arc<Waker>,
}

impl ShardHandle {
    fn push(&self, msg: ShardMsg) {
        lock(&self.inbox).push(msg);
        self.waker.wake();
    }
}

/// Session → shard routing plus the shard handles. Replaces the old
/// global `AppId → ClientWriter` stream map: routing an activation is a
/// shard lookup and an inbox push, never a blocking socket write under a
/// global lock.
#[derive(Default)]
pub(crate) struct Router {
    /// Which shard currently owns each registered session's connection.
    routes: Mutex<HashMap<AppId, usize>>,
    /// Set once after the shard threads are spawned.
    shards: OnceLock<Vec<ShardHandle>>,
}

impl Router {
    pub(crate) fn install_shards(&self, handles: Vec<ShardHandle>) {
        let _ = self.shards.set(handles);
    }

    fn handles(&self) -> &[ShardHandle] {
        self.shards.get().map(Vec::as_slice).unwrap_or(&[])
    }

    /// Hands a new connection to `shard`.
    pub(crate) fn dispatch_conn(&self, shard: usize, stream: UnixStream, conn: u64) {
        if let Some(h) = self.handles().get(shard) {
            h.push(ShardMsg::Conn(stream, conn));
        }
    }

    /// Routes encoded frame bytes to whichever shard owns `app`'s
    /// session. Silently drops when the session has no live route — the
    /// same contract the old stream map had for departed clients.
    pub(crate) fn deliver(&self, app: AppId, bytes: Vec<u8>) {
        let Some(&shard) = lock(&self.routes).get(&app) else {
            return;
        };
        if let Some(h) = self.handles().get(shard) {
            h.push(ShardMsg::Deliver(app, bytes));
        }
    }

    /// Wakes every shard (used to broadcast stop).
    pub(crate) fn wake_all(&self) {
        for h in self.handles() {
            h.waker.wake();
        }
    }

    fn bind(&self, app: AppId, shard: usize) {
        lock(&self.routes).insert(app, shard);
    }

    /// Removes `app`'s route, but only if it still points at `shard` — a
    /// session resumed onto another shard keeps its new route.
    fn unbind(&self, app: AppId, shard: usize) {
        let mut routes = lock(&self.routes);
        if routes.get(&app) == Some(&shard) {
            routes.remove(&app);
        }
    }
}

/// One connected client as its shard sees it.
struct Session {
    stream: UnixStream,
    decoder: FrameDecoder,
    /// Outbound byte ring: encoded frames queue here and drain on
    /// opportunistic and `EPOLLOUT` flushes.
    out: std::collections::VecDeque<u8>,
    /// The session this connection registered/resumed, if any.
    app: Option<AppId>,
    conn: u64,
    /// Whether the poller registration currently includes `EPOLLOUT`.
    want_write: bool,
    /// Live telemetry subscription, if this connection sent
    /// `SubscribeTelemetry`.
    sub: Option<SubState>,
}

/// Outcome of pulling one frame out of a session's decoder.
enum Pulled {
    Msg(Message),
    /// Need more bytes.
    Idle,
    /// Undecodable stream (oversized prefix or malformed body).
    Bad(String),
}

/// Spawns the shard threads and installs their handles into the router.
///
/// # Errors
///
/// Returns [`harp_types::HarpError::Io`] if a poller, waker, or thread
/// cannot be created.
pub(crate) fn spawn_shards(
    shared: &Arc<Shared>,
    count: usize,
) -> harp_types::Result<Vec<std::thread::JoinHandle<()>>> {
    let count = count.clamp(1, MAX_SHARDS);
    let mut handles = Vec::with_capacity(count);
    let mut threads = Vec::with_capacity(count);
    for idx in 0..count {
        let poller = Poller::new()?;
        let waker = Arc::new(Waker::new(&poller, WAKER_TOKEN)?);
        handles.push(ShardHandle {
            inbox: Mutex::new(Vec::new()),
            waker: waker.clone(),
        });
        let shared = shared.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("harpd-shard{idx}"))
                .spawn(move || shard_loop(shared, idx, poller, waker))?,
        );
    }
    shared.router.install_shards(handles);
    Ok(threads)
}

fn shard_loop(shared: Arc<Shared>, idx: usize, poller: Poller, waker: Arc<Waker>) {
    let mut shard = ShardState {
        shared,
        idx,
        poller,
        slab: Slab::with_capacity(64),
        local: HashMap::new(),
    };
    let mut events = Events::with_capacity(512);
    loop {
        shard.drain_inbox();
        if shard.shared.stop.load(Ordering::SeqCst) {
            break;
        }
        // Wake no later than the idle heartbeat, and earlier when a
        // telemetry subscription push comes due sooner.
        let timeout = shard.sub_poll_timeout(Duration::from_millis(250));
        if shard.poller.wait(&mut events, Some(timeout)).is_err() {
            break;
        }
        for ev in events.iter() {
            if ev.token == WAKER_TOKEN {
                waker.drain();
                continue;
            }
            let slot = ev.token as usize;
            if !shard.slab.contains(slot) {
                continue; // closed earlier in this batch
            }
            if ev.writable {
                shard.flush(slot);
            }
            if shard.slab.contains(slot) && (ev.readable || ev.error) {
                shard.on_readable(slot);
            }
        }
        shard.push_subscriptions();
    }
    // Teardown (shutdown or kill): sever every remaining client socket.
    // Sessions are intentionally NOT deregistered here — on a kill the
    // journal must keep them for the next boot to recover, and on a
    // shutdown the core has already detached its journal.
    for slot in shard.slab.keys() {
        if let Some(sess) = shard.slab.remove(slot) {
            let _ = sess.stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

struct ShardState {
    shared: Arc<Shared>,
    idx: usize,
    poller: Poller,
    slab: Slab<Session>,
    /// Sessions registered on this shard: `AppId → slot`, maintained in
    /// lock-step with the router's global `AppId → shard` map.
    local: HashMap<AppId, usize>,
}

impl ShardState {
    fn metrics(&self) -> &'static ShardMetricNames {
        &SHARD_METRICS[self.idx.min(MAX_SHARDS - 1)]
    }

    fn drain_inbox(&mut self) {
        let msgs = {
            let handles = self.shared.router.handles();
            let Some(h) = handles.get(self.idx) else {
                return;
            };
            std::mem::take(&mut *lock(&h.inbox))
        };
        for msg in msgs {
            match msg {
                ShardMsg::Conn(stream, conn) => self.install(stream, conn),
                ShardMsg::Deliver(app, bytes) => self.deliver(app, bytes),
            }
        }
    }

    /// Adopts a freshly accepted connection: non-blocking, registered for
    /// read readiness, greeted with the boot epoch.
    fn install(&mut self, stream: UnixStream, conn: u64) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let fd = stream.as_raw_fd();
        let slot = self.slab.insert(Session {
            stream,
            decoder: FrameDecoder::new(),
            out: std::collections::VecDeque::new(),
            app: None,
            conn,
            want_write: false,
            sub: None,
        });
        if self
            .poller
            .register(fd, slot as u64, Interest::READABLE)
            .is_err()
        {
            self.slab.remove(slot);
            return;
        }
        harp_obs::metrics::counter(self.metrics().accepted).inc();
        let hello = Message::Hello(Hello {
            epoch: self.shared.epoch,
            resume_token: 0,
        });
        self.enqueue(slot, &hello);
    }

    /// Delivers routed frame bytes to a local session. A stale route
    /// (session already gone from this shard) is dropped and counted, the
    /// same way the old stream map pruned unreachable clients.
    fn deliver(&mut self, app: AppId, bytes: Vec<u8>) {
        let Some(&slot) = self.local.get(&app) else {
            harp_obs::metrics::counter("daemon.dead_stream_pruned").inc();
            if harp_obs::enabled() {
                harp_obs::instant(harp_obs::Subsystem::Daemon, "dead_stream_pruned")
                    .field("session", app.raw());
            }
            return;
        };
        if let Some(sess) = self.slab.get_mut(slot) {
            sess.out.extend(bytes);
        }
        self.flush(slot);
    }

    /// Encodes `msg` into the session's outbound ring and flushes what the
    /// socket will take now.
    fn enqueue(&mut self, slot: usize, msg: &Message) {
        let Ok(bytes) = encode_frame(msg) else {
            return; // oversized dump — drop rather than tear the stream
        };
        if let Some(sess) = self.slab.get_mut(slot) {
            sess.out.extend(bytes);
        }
        self.flush(slot);
    }

    /// Drains the outbound ring into the socket until it blocks, keeping
    /// `EPOLLOUT` interest in sync with whether bytes remain. Closes the
    /// session on a write failure.
    fn flush(&mut self, slot: usize) {
        let flushes = self.metrics().flushes;
        let mut dead = false;
        let mut rereg = None;
        {
            let Some(sess) = self.slab.get_mut(slot) else {
                return;
            };
            harp_obs::metrics::counter(flushes).inc();
            while !sess.out.is_empty() {
                let (a, b) = sess.out.as_slices();
                let chunk = if a.is_empty() { b } else { a };
                match sess.stream.write(chunk) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        sess.out.drain(..n);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if !dead {
                let want = !sess.out.is_empty();
                if want != sess.want_write {
                    sess.want_write = want;
                    rereg = Some((sess.stream.as_raw_fd(), want));
                }
            }
        }
        if dead {
            self.close_session(slot);
            return;
        }
        if let Some((fd, want)) = rereg {
            let interest = if want {
                Interest::BOTH
            } else {
                Interest::READABLE
            };
            let _ = self.poller.reregister(fd, slot as u64, interest);
        }
    }

    /// Read-readiness (or hangup) on a session: batch-read until the
    /// socket blocks, dispatching every complete frame as it appears.
    fn on_readable(&mut self, slot: usize) {
        loop {
            let read = {
                let Some(sess) = self.slab.get_mut(slot) else {
                    return;
                };
                sess.decoder.read_from(&mut sess.stream)
            };
            match read {
                Ok(0) => {
                    // EOF — the peer hung up (an `EPOLLRDHUP` event may or
                    // may not have raced ahead of the FIN, so the read is
                    // the authoritative signal). Dispatch what's buffered,
                    // then close: a clean frame boundary is a silent exit;
                    // a torn frame is a protocol error, as with the old
                    // blocking reader.
                    harp_obs::metrics::counter(self.metrics().hangups).inc();
                    if self.process_frames(slot) {
                        return;
                    }
                    let clean = self.slab.get(slot).is_none_or(|s| s.decoder.is_clean());
                    if !clean {
                        self.protocol_error(slot, "connection closed mid-frame".to_string());
                    } else {
                        self.close_session(slot);
                    }
                    return;
                }
                Ok(_) => {
                    if self.process_frames(slot) {
                        return;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    let _ = self.process_frames(slot);
                    return;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    // ECONNRESET and friends: a crashed peer whose socket
                    // died with unread data sends RST instead of FIN —
                    // still a hangup.
                    harp_obs::metrics::counter(self.metrics().hangups).inc();
                    self.close_session(slot);
                    return;
                }
            }
        }
    }

    /// Dispatches every complete frame buffered for `slot`. Returns true
    /// when the session was closed (exit, protocol error, write failure).
    fn process_frames(&mut self, slot: usize) -> bool {
        loop {
            let pulled = {
                let Some(sess) = self.slab.get_mut(slot) else {
                    return true;
                };
                match sess.decoder.next_frame() {
                    Ok(Some(frame)) => match frame.decode() {
                        Ok(msg) => Pulled::Msg(msg),
                        Err(e) => Pulled::Bad(e.to_string()),
                    },
                    Ok(None) => Pulled::Idle,
                    Err(e) => Pulled::Bad(e.to_string()),
                }
            };
            match pulled {
                Pulled::Idle => return false,
                Pulled::Bad(detail) => {
                    // Resynchronizing a byte stream after a framing error
                    // is not possible; tell the peer and drop them.
                    self.protocol_error(slot, detail);
                    return true;
                }
                Pulled::Msg(msg) => {
                    harp_obs::metrics::counter(self.metrics().frames).inc();
                    if self.dispatch(slot, msg) {
                        // Clean exit — close outside the dispatch span so
                        // deregistration traces stand alone, as they did
                        // when cleanup ran after the connection loop.
                        self.close_session(slot);
                        return true;
                    }
                    if !self.slab.contains(slot) {
                        return true; // closed by a failed flush
                    }
                }
            }
        }
    }

    /// Handles one decoded message, timing it into the owning session's
    /// latency histogram (the per-interval p99 that telemetry
    /// subscriptions report). Returns true when the connection must
    /// close (clean exit).
    fn dispatch(&mut self, slot: usize, msg: Message) -> bool {
        let started = Instant::now();
        let close = self.dispatch_msg(slot, msg);
        if let Some(app) = self.slab.get(slot).and_then(|s| s.app) {
            let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let mut lat = lock(&self.shared.latency);
            let h = lat.entry(app).or_default();
            h.count = h.count.saturating_add(1);
            h.sum = h.sum.wrapping_add(ns);
            h.buckets[bucket_index(ns)] = h.buckets[bucket_index(ns)].saturating_add(1);
        }
        close
    }

    /// The message state machine proper — the same one the old
    /// per-connection thread ran, minus the blocking I/O.
    fn dispatch_msg(&mut self, slot: usize, msg: Message) -> bool {
        let (conn, app) = match self.slab.get(slot) {
            Some(s) => (s.conn, s.app),
            None => return true,
        };
        let _dispatch = harp_obs::span(harp_obs::Subsystem::Daemon, "dispatch")
            .field("msg", msg_name(&msg))
            .field("conn", conn)
            .field("session", app.map(AppId::raw).unwrap_or(0));
        match msg {
            Message::Register(_) | Message::Resume(_) if app.is_some() => {
                // A connection is one session; re-registration would leak
                // the original session's resources.
                self.send_error(
                    slot,
                    ERR_DUPLICATE_REGISTER,
                    "connection already holds a registered session".to_string(),
                );
            }
            Message::Register(reg) => {
                self.register_fresh(slot, conn, &reg.app_name, reg.provides_utility);
            }
            Message::Resume(r) => {
                let core = self.shared.core();
                let resolved = lock(&core).resolve_resume_token(r.resume_token);
                if let Some(id) = resolved {
                    // Idempotent reclaim: rebind the session to this
                    // connection and replay its current activation so the
                    // client re-applies without waiting for a round.
                    self.shared.router.bind(id, self.idx);
                    self.local.insert(id, slot);
                    lock(&self.shared.owners).insert(id, conn);
                    if let Some(sess) = self.slab.get_mut(slot) {
                        sess.app = Some(id);
                    }
                    self.enqueue(
                        slot,
                        &Message::RegisterAck(RegisterAck {
                            app_id: id.raw(),
                            epoch: self.shared.epoch,
                            resume_token: r.resume_token,
                            resumed: true,
                        }),
                    );
                    let last = lock(&core).last_directive(id).cloned();
                    if let Some(d) = last {
                        self.enqueue(slot, &directive_to_activate(&d));
                    }
                    harp_obs::metrics::counter("daemon.reconnects_total").inc();
                    if harp_obs::enabled() {
                        harp_obs::instant(harp_obs::Subsystem::Daemon, "session_resumed")
                            .field("conn", conn)
                            .field("session", id.raw());
                    }
                } else {
                    // Stale or foreign token (journal lost, session
                    // reaped): fall back to a fresh registration.
                    if self.register_fresh(slot, conn, &r.app_name, r.provides_utility) {
                        harp_obs::metrics::counter("daemon.reconnects_total").inc();
                    }
                }
            }
            Message::SubmitPoints(sp) => {
                let Some(id) = app else {
                    self.send_error(
                        slot,
                        ERR_NO_SESSION,
                        "SubmitPoints before registration".to_string(),
                    );
                    return false;
                };
                let mut points = Vec::new();
                for p in &sp.points {
                    if let Ok(erv) = ExtResourceVector::from_flat(&self.shared.shape, &p.erv_flat) {
                        points.push((erv, NonFunctional::new(p.utility, p.power)));
                    }
                }
                let core = self.shared.core();
                let result = {
                    let _op = OpGuard::begin(&self.shared);
                    lock(&core).submit_points(id, points)
                };
                match result {
                    Ok(out) => self.shared.route(&out),
                    Err(e) => self.send_error(slot, ERR_SUBMIT_REJECTED, e.to_string()),
                }
            }
            Message::DumpTelemetry(req) => {
                // Serve the flight recorder to observers (`harp-trace`).
                let (jsonl, truncated) =
                    truncate_jsonl(harp_obs::dump_global(req.include_metrics), MAX_DUMP_BYTES);
                self.enqueue(
                    slot,
                    &Message::TelemetryDump(TelemetryDump { jsonl, truncated }),
                );
            }
            Message::SubscribeTelemetry(req) => {
                let ms = if req.interval_ms == 0 {
                    DEFAULT_SUB_INTERVAL_MS
                } else {
                    u64::from(req.interval_ms).clamp(MIN_SUB_INTERVAL_MS, MAX_SUB_INTERVAL_MS)
                };
                let now = Instant::now();
                if let Some(sess) = self.slab.get_mut(slot) {
                    sess.sub = Some(SubState::new(
                        Duration::from_millis(ms),
                        req.include_metrics,
                        now,
                    ));
                }
                harp_obs::metrics::counter("daemon.telemetry.subscribes").inc();
                // Push the baseline frame immediately; the cadence starts
                // from here.
                self.push_frame(slot, now);
            }
            Message::UtilityReport(_) => {
                // Collected for future online monitoring; the daemon's RM
                // runs offline (see crate docs).
            }
            Message::Exit { .. } => return true,
            _ => {
                // RM-to-application messages echoed back by a confused or
                // malicious client carry no meaning here; ignore them.
            }
        }
        false
    }

    /// Registers a fresh session for this connection (also the fallback
    /// path of a failed resume). Returns whether registration succeeded.
    fn register_fresh(&mut self, slot: usize, conn: u64, name: &str, provides: bool) -> bool {
        let id = AppId(self.shared.next_id.fetch_add(1, Ordering::SeqCst));
        let token = self.shared.make_token();
        // Make the session routable before the allocation round so this
        // app receives its own activation.
        self.shared.router.bind(id, self.idx);
        self.local.insert(id, slot);
        let core = self.shared.core();
        let result = {
            let _op = OpGuard::begin(&self.shared);
            lock(&core).register_resumable(id, name, provides, token)
        };
        match result {
            Ok(out) => {
                if let Some(sess) = self.slab.get_mut(slot) {
                    sess.app = Some(id);
                }
                lock(&self.shared.owners).insert(id, conn);
                self.enqueue(
                    slot,
                    &Message::RegisterAck(RegisterAck {
                        app_id: id.raw(),
                        epoch: self.shared.epoch,
                        resume_token: token,
                        resumed: false,
                    }),
                );
                self.shared.route(&out);
                true
            }
            Err(e) => {
                self.shared.router.unbind(id, self.idx);
                self.local.remove(&id);
                self.send_error(slot, ERR_REGISTER_REJECTED, e.to_string());
                false
            }
        }
    }

    /// Shortens the poll timeout when a subscription push is due before
    /// the idle heartbeat `cap`.
    fn sub_poll_timeout(&self, cap: Duration) -> Duration {
        let now = Instant::now();
        let mut timeout = cap;
        for (_, sess) in self.slab.iter() {
            if let Some(sub) = &sess.sub {
                timeout = timeout.min(sub.next_push.saturating_duration_since(now));
            }
        }
        timeout
    }

    /// Pushes a [`TelemetryFrame`] to every subscription that has come
    /// due; runs once per shard loop iteration.
    fn push_subscriptions(&mut self) {
        let now = Instant::now();
        let due: Vec<usize> = self
            .slab
            .iter()
            .filter(|(_, s)| s.sub.as_ref().is_some_and(|sub| sub.next_push <= now))
            .map(|(slot, _)| slot)
            .collect();
        for slot in due {
            self.push_frame(slot, now);
        }
    }

    /// Builds and enqueues one telemetry frame for `slot`'s subscription
    /// (or drops it, with accounting, when the subscriber has stopped
    /// draining its socket). Energy comes from the RM core's ledger;
    /// latency from the shared per-session dispatch histograms; metric
    /// deltas from the subscription's own interval series.
    fn push_frame(&mut self, slot: usize, now: Instant) {
        if self.slab.get(slot).is_none_or(|s| s.sub.is_none()) {
            return;
        }
        // Gather global state before borrowing the session mutably. Rows
        // cover every registered session plus any session the ledger has
        // charged (a session can retire between charge and push).
        let core = self.shared.core();
        let mut ids: std::collections::BTreeSet<AppId> =
            lock(&self.shared.owners).keys().copied().collect();
        let (total_uj, idle_uj, rows) = {
            let guard = lock(&core);
            let ledger = guard.ledger();
            ids.extend(ledger.sessions().into_iter().map(|(app, _)| app));
            let rows: Vec<(AppId, String, u64)> = ids
                .into_iter()
                .map(|app| {
                    let name = guard.session_name(app).unwrap_or("?").to_string();
                    (app, name, ledger.session_uj(app))
                })
                .collect();
            (ledger.total_uj(), ledger.idle_uj(), rows)
        };
        let latency_now: HashMap<AppId, HistogramSnapshot> = lock(&self.shared.latency).clone();
        let metrics_snap = {
            let include = self
                .slab
                .get(slot)
                .and_then(|s| s.sub.as_ref())
                .is_some_and(|sub| sub.include_metrics);
            include.then(harp_obs::metrics::snapshot)
        };

        let frame = {
            let Some(sess) = self.slab.get_mut(slot) else {
                return;
            };
            let Some(sub) = sess.sub.as_mut() else {
                return;
            };
            sub.next_push = now + sub.interval;
            let seq = sub.seq;
            sub.seq += 1;
            if sess.out.len() > MAX_SUB_BACKLOG_BYTES {
                // Drop-oldest: the longest-due frame dies; `seq` still
                // advances so `delivered + dropped == seq` at the peer.
                sub.dropped += 1;
                harp_obs::metrics::counter("daemon.telemetry.dropped_frames").inc();
                return;
            }
            let sessions: Vec<SessionEnergy> = rows
                .iter()
                .map(|(app, name, uj)| {
                    let prev = sub.last_sessions.get(app).copied().unwrap_or(0);
                    let latency_p99_us = latency_now
                        .get(app)
                        .map(|h| {
                            let d = match sub.last_latency.get(app) {
                                Some(b) => h.delta_since(b),
                                None => h.clone(),
                            };
                            d.quantile(0.99) / 1_000
                        })
                        .unwrap_or(0);
                    SessionEnergy {
                        app_id: app.raw(),
                        name: name.clone(),
                        tick_uj: uj.saturating_sub(prev),
                        total_uj: *uj,
                        latency_p99_us,
                    }
                })
                .collect();
            let frame = TelemetryFrame {
                seq,
                dropped_frames: sub.dropped,
                interval_ms: sub.interval.as_millis() as u32,
                tick_uj: total_uj.saturating_sub(sub.last_total_uj),
                idle_uj: idle_uj.saturating_sub(sub.last_idle_uj),
                total_uj,
                sessions,
                metrics_jsonl: match metrics_snap {
                    Some(snap) => sub.intervals.sample_from(snap).delta.to_jsonl(),
                    None => String::new(),
                },
            };
            sub.last_total_uj = total_uj;
            sub.last_idle_uj = idle_uj;
            sub.last_sessions = rows.iter().map(|(a, _, uj)| (*a, *uj)).collect();
            sub.last_latency = latency_now;
            frame
        };
        harp_obs::metrics::counter("daemon.telemetry.frames").inc();
        self.enqueue(slot, &Message::TelemetryFrame(frame));
    }

    /// Logs and enqueues an `ERR_*` reply — the reactor counterpart of the
    /// old `send_error`, with identical event fields.
    fn send_error(&mut self, slot: usize, code: u32, detail: String) {
        let (conn, session) = match self.slab.get(slot) {
            Some(s) => (s.conn, s.app),
            None => return,
        };
        if harp_obs::enabled() {
            harp_obs::instant(harp_obs::Subsystem::Daemon, "err_reply")
                .field("code", code)
                .field("err", err_name(code))
                .field("conn", conn)
                .field("session", session.map(AppId::raw).unwrap_or(0))
                .field("detail", detail.clone());
            harp_obs::metrics::counter("daemon.err_replies").inc();
        }
        self.enqueue(slot, &Message::Error(ErrorMsg { code, detail }));
    }

    /// Undecodable stream: notify the peer (best effort, briefly bounded)
    /// and drop the connection.
    fn protocol_error(&mut self, slot: usize, detail: String) {
        self.send_error(slot, ERR_PROTOCOL, detail);
        self.flush_closing(slot);
        self.close_session(slot);
    }

    /// Gives a closing session a short, bounded window to drain its final
    /// frames to a slow peer.
    fn flush_closing(&mut self, slot: usize) {
        let deadline = Instant::now() + CLOSE_FLUSH_BUDGET;
        loop {
            self.flush(slot);
            let fd = match self.slab.get(slot) {
                Some(s) if !s.out.is_empty() => s.stream.as_raw_fd(),
                _ => return,
            };
            if Instant::now() >= deadline {
                return;
            }
            let _ = poll_fd(fd, false, true, Some(Duration::from_millis(10)));
        }
    }

    /// Tears a session down. Only the connection that currently owns the
    /// session may deregister it: after a resume, the stale connection's
    /// hangup must not tear the session out from under the new one. A
    /// killed daemon skips deregistration entirely so the journal keeps
    /// the session for the next boot to recover.
    fn close_session(&mut self, slot: usize) {
        let Some(sess) = self.slab.remove(slot) else {
            return;
        };
        self.poller.deregister(sess.stream.as_raw_fd());
        let Some(app) = sess.app else {
            return;
        };
        if self.local.get(&app) == Some(&slot) {
            self.local.remove(&app);
        }
        let owns = lock(&self.shared.owners).get(&app).copied() == Some(sess.conn);
        if owns && !self.shared.killed.load(Ordering::SeqCst) {
            lock(&self.shared.owners).remove(&app);
            lock(&self.shared.latency).remove(&app);
            self.shared.router.unbind(app, self.idx);
            let core = self.shared.core();
            let result = {
                let _op = OpGuard::begin(&self.shared);
                lock(&core).deregister(app)
            };
            if let Ok(out) = result {
                if harp_obs::enabled() {
                    harp_obs::instant(harp_obs::Subsystem::Daemon, "session_deregistered")
                        .field("conn", sess.conn)
                        .field("session", app.raw());
                    harp_obs::metrics::counter("daemon.deregisters").inc();
                }
                self.shared.route(&out);
            }
        }
        // Dropping `sess` closes the fd and severs the client.
    }
}
