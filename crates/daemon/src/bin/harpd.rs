//! `harpd` — the HARP resource-manager daemon.
//!
//! ```text
//! harpd --socket /tmp/harp.sock [--hw raptor-lake|odroid|<file.json>]
//!       [--profile <name>=<description.json>]...
//! ```
//!
//! Runs until interrupted. Applications connect through libharp with the
//! Unix-socket transport (`harp_daemon::UnixTransport`).

use harp_daemon::{DaemonConfig, HarpDaemon};
use harp_platform::HardwareDescription;
use libharp::description::AppDescription;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: harpd --socket <path> [--hw raptor-lake|odroid|<file.json>] \
         [--profile <name>=<description.json>]..."
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut socket = None;
    let mut hw = HardwareDescription::raptor_lake();
    let mut profiles: Vec<(String, String)> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => match args.next() {
                Some(p) => socket = Some(p),
                None => return usage(),
            },
            "--hw" => match args.next().as_deref() {
                Some("raptor-lake") => hw = HardwareDescription::raptor_lake(),
                Some("odroid") => hw = HardwareDescription::odroid_xu3(),
                Some(path) => match HardwareDescription::load(path) {
                    Ok(h) => hw = h,
                    Err(e) => {
                        eprintln!("harpd: cannot load hardware description: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => return usage(),
            },
            "--profile" => match args.next() {
                Some(spec) => match spec.split_once('=') {
                    Some((name, path)) => profiles.push((name.to_string(), path.to_string())),
                    None => return usage(),
                },
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(socket) = socket else {
        return usage();
    };

    let daemon = match HarpDaemon::start(DaemonConfig::new(&socket, hw)) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("harpd: cannot start: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (name, path) in profiles {
        match AppDescription::load(&path).and_then(|d| d.to_points()) {
            Ok(points) => {
                println!("harpd: loaded profile '{name}' from {path}");
                daemon.load_profile(&name, points);
            }
            Err(e) => {
                eprintln!("harpd: skipping profile '{name}': {e}");
            }
        }
    }
    println!("harpd: listening on {socket}");
    // Serve until the process is killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
