//! The `harpd` server: RM core behind a Unix domain socket.

use crate::reactor_server::{self, Router, MAX_SHARDS};
use harp_obs::metrics::HistogramSnapshot;
use harp_platform::HardwareDescription;
use harp_proto::frame::encode_frame;
use harp_proto::{Activate, Message};
use harp_rm::journal::{last_epoch, read_journal};
use harp_rm::{Directive, JournalRecord, JournalWriter, RmConfig, RmCore, RmOutput};
use harp_types::{AppId, ErvShape, ExtResourceVector, NonFunctional, Result};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Mutex, MutexGuard, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// Protocol error code: a registration was rejected by the RM.
pub const ERR_REGISTER_REJECTED: u32 = 1;
/// Protocol error code: a malformed or torn frame was received.
pub const ERR_PROTOCOL: u32 = 2;
/// Protocol error code: a message that requires a session arrived before
/// registration.
pub const ERR_NO_SESSION: u32 = 3;
/// Protocol error code: a second `Register` arrived on a connection that
/// already holds a session.
pub const ERR_DUPLICATE_REGISTER: u32 = 4;
/// Protocol error code: a point submission was rejected by the RM.
pub const ERR_SUBMIT_REJECTED: u32 = 5;

/// Stable telemetry name of a protocol error code.
pub(crate) fn err_name(code: u32) -> &'static str {
    match code {
        ERR_REGISTER_REJECTED => "register_rejected",
        ERR_PROTOCOL => "protocol",
        ERR_NO_SESSION => "no_session",
        ERR_DUPLICATE_REGISTER => "duplicate_register",
        ERR_SUBMIT_REJECTED => "submit_rejected",
        _ => "unknown",
    }
}

/// Stable telemetry name of an inbound message type.
pub(crate) fn msg_name(msg: &Message) -> &'static str {
    match msg {
        Message::Register(_) => "register",
        Message::RegisterAck(_) => "register_ack",
        Message::SubmitPoints(_) => "submit_points",
        Message::Activate(_) => "activate",
        Message::UtilityRequest(_) => "utility_request",
        Message::UtilityReport(_) => "utility_report",
        Message::Exit { .. } => "exit",
        Message::Error(_) => "error",
        Message::DumpTelemetry(_) => "dump_telemetry",
        Message::TelemetryDump(_) => "telemetry_dump",
        Message::Hello(_) => "hello",
        Message::Resume(_) => "resume",
        Message::SubscribeTelemetry(_) => "subscribe_telemetry",
        Message::TelemetryFrame(_) => "telemetry_frame",
    }
}

/// Upper bound on the JSONL payload of a `TelemetryDump` reply, chosen
/// well under [`harp_proto::frame::MAX_FRAME_LEN`] so the encoded frame
/// always fits.
pub(crate) const MAX_DUMP_BYTES: usize = 8 * 1024 * 1024;

/// Truncates a JSONL document to `max` bytes at a line boundary.
///
/// A truncated dump is never silent: the cut is counted in the
/// `obs.dump_truncated` counter and the document gains a trailing
/// `{"type":"truncated",...}` marker line recording how many bytes were
/// dropped, so consumers that only see the JSONL (a dump piped to a
/// file, say) can still detect that it is partial.
pub(crate) fn truncate_jsonl(mut jsonl: String, max: usize) -> (String, bool) {
    if jsonl.len() <= max {
        return (jsonl, false);
    }
    let cut = jsonl[..max].rfind('\n').map(|i| i + 1).unwrap_or(0);
    let dropped = jsonl.len() - cut;
    jsonl.truncate(cut);
    harp_obs::metrics::counter("obs.dump_truncated").inc();
    let _ = writeln!(
        jsonl,
        "{{\"type\":\"truncated\",\"dropped_bytes\":{dropped}}}"
    );
    (jsonl, true)
}

/// Locks a mutex, recovering from poison: a shard thread that panicked
/// while holding the lock must not take the whole daemon down with it —
/// the guarded state (RM core, routing tables) stays consistent because
/// every mutation path hands back a fully-updated value.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Path of the Unix socket to listen on.
    pub socket_path: PathBuf,
    /// The machine description (normally loaded from `/etc/harp`).
    pub hw: HardwareDescription,
    /// RM configuration. Defaults to *offline* mode — see the
    /// [crate docs](crate) for why the daemon does not monitor counters.
    pub rm: RmConfig,
    /// Whether to enable the global `harp-obs` collector on start. Off by
    /// default: tracing is opt-in, and the disabled path costs one atomic
    /// load per callsite.
    pub tracing: bool,
    /// Crash-recovery journal path (`None` = journaling off). On start the
    /// daemon replays the journal through the real RM entry points, bumps
    /// the boot epoch, and resumes appending; sessions recovered from the
    /// journal are reclaimable by their resume tokens (DESIGN.md §10).
    pub journal_path: Option<PathBuf>,
    /// Watchdog stall threshold (`None` = watchdog off). An RM operation
    /// in flight longer than this is declared wedged: telemetry is dumped
    /// next to the journal, the journal writer is fenced off, and a fresh
    /// core recovered from the journal replaces the wedged one.
    pub watchdog: Option<Duration>,
    /// Records appended between journal compactions.
    pub compact_every: u64,
    /// Reactor shard threads serving client I/O (clamped to
    /// `1..=`[`MAX_SHARDS`]). Each shard owns an epoll poller and a slab
    /// of sessions; connections are dealt round-robin at accept.
    pub shards: usize,
}

impl DaemonConfig {
    /// Creates a configuration with offline-mode RM defaults.
    pub fn new(socket_path: impl AsRef<Path>, hw: HardwareDescription) -> Self {
        let rm = RmConfig {
            offline: true,
            ..Default::default()
        };
        DaemonConfig {
            socket_path: socket_path.as_ref().to_path_buf(),
            hw,
            rm,
            tracing: false,
            journal_path: None,
            watchdog: None,
            compact_every: 256,
            shards: 2,
        }
    }

    /// Sets the number of reactor shard threads (clamped to
    /// `1..=`[`MAX_SHARDS`]).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.clamp(1, MAX_SHARDS);
        self
    }

    /// Enables the global telemetry collector for this daemon.
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Enables the crash-recovery journal at `path`.
    pub fn with_journal(mut self, path: impl AsRef<Path>) -> Self {
        self.journal_path = Some(path.as_ref().to_path_buf());
        self
    }

    /// Enables the wedged-operation watchdog with the given stall
    /// threshold.
    pub fn with_watchdog(mut self, threshold: Duration) -> Self {
        self.watchdog = Some(threshold);
        self
    }
}

pub(crate) struct Shared {
    /// The RM core behind two layers: the outer `RwLock` lets the watchdog
    /// swap in a freshly recovered core while wedged threads still hold the
    /// old one; the inner `Mutex` serializes normal operations.
    rm: RwLock<Arc<Mutex<RmCore>>>,
    /// Session → shard routing for pushing activations: encoded frames are
    /// delivered to the owning shard's inbox, which serializes them into
    /// the session's outbound ring — frames to one client never interleave
    /// because only its shard ever writes its socket.
    pub(crate) router: Router,
    /// Session → connection currently owning it. Hangup cleanup only
    /// deregisters a session its connection still owns, so a client that
    /// resumed on a new connection is not torn down by the stale one.
    pub(crate) owners: Mutex<HashMap<AppId, u64>>,
    /// Per-session dispatch-latency histograms (nanoseconds), recorded by
    /// whichever shard handles the session's messages and drained by
    /// telemetry subscriptions into per-interval p99 digests. Plain
    /// snapshots under a mutex, not registry atomics: rows die with their
    /// session instead of leaking interned names.
    pub(crate) latency: Mutex<HashMap<AppId, HistogramSnapshot>>,
    pub(crate) shape: ErvShape,
    hw: HardwareDescription,
    rm_cfg: RmConfig,
    journal_path: Option<PathBuf>,
    /// Fence generation shared with the live journal writer; bumping it
    /// silently voids appends from a writer the watchdog has orphaned.
    fence: Arc<AtomicU64>,
    /// Boot epoch stamped into every `Hello`/`RegisterAck`; strictly
    /// increases across daemon restarts via the journal's epoch records.
    pub(crate) epoch: u64,
    pub(crate) next_id: AtomicU64,
    /// Resume-token counter; tokens embed the epoch so tokens from
    /// different boots never collide.
    next_token: AtomicU64,
    /// Connection counter for telemetry (distinct from session ids: a
    /// connection may never register).
    next_conn: AtomicU64,
    pub(crate) stop: AtomicBool,
    /// Simulated crash: shards skip deregister-on-hangup so the journal
    /// keeps the sessions for the next boot to recover.
    pub(crate) killed: AtomicBool,
    /// Milliseconds since `started` at which the in-flight RM operation
    /// began (0 = idle); sampled by the watchdog.
    op_started_ms: AtomicU64,
    op_seq: AtomicU64,
    started: Instant,
}

/// Marks an RM operation in flight for the watchdog; cleared on drop
/// unless a newer operation has started since (the wedged case).
pub(crate) struct OpGuard<'a> {
    shared: &'a Shared,
    seq: u64,
}

impl<'a> OpGuard<'a> {
    pub(crate) fn begin(shared: &'a Shared) -> Self {
        let seq = shared.op_seq.fetch_add(1, Ordering::SeqCst) + 1;
        // `| 1` keeps a start in the very first millisecond distinct from
        // the idle sentinel.
        let now = shared.started.elapsed().as_millis() as u64 | 1;
        shared.op_started_ms.store(now, Ordering::SeqCst);
        OpGuard { shared, seq }
    }
}

impl Drop for OpGuard<'_> {
    fn drop(&mut self) {
        if self.shared.op_seq.load(Ordering::SeqCst) == self.seq {
            self.shared.op_started_ms.store(0, Ordering::SeqCst);
        }
    }
}

impl Shared {
    /// The current RM core (watchdog restarts swap the `Arc`).
    pub(crate) fn core(&self) -> Arc<Mutex<RmCore>> {
        self.rm
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Mints a resume token: epoch in the high half, a counter in the low,
    /// so tokens stay unique across daemon restarts.
    pub(crate) fn make_token(&self) -> u64 {
        (self.epoch << 32) | self.next_token.fetch_add(1, Ordering::SeqCst)
    }

    /// Relays the RM output to every affected application: each directive
    /// is encoded once and handed to the owning shard's inbox. Routes whose
    /// session is gone are dropped by the shard (and counted as pruned);
    /// the session itself is deregistered when its shard observes the
    /// hangup.
    pub(crate) fn route(&self, out: &RmOutput) {
        for d in &out.directives {
            if let Ok(bytes) = encode_frame(&directive_to_activate(d)) {
                self.router.deliver(d.app, bytes);
            }
        }
    }
}

pub(crate) fn directive_to_activate(d: &Directive) -> Message {
    Message::Activate(Activate {
        app_id: d.app.raw(),
        erv_flat: d.erv.flat(),
        core_ids: d.cores.iter().map(|c| c.0 as u32).collect(),
        parallelism: d.parallelism,
        hw_thread_ids: d.hw_threads.iter().map(|t| t.0 as u32).collect(),
    })
}

/// The HARP daemon (see [crate docs](crate)).
#[derive(Debug)]
pub struct HarpDaemon;

/// Handle of a running daemon; dropping it does *not* stop the daemon —
/// call [`DaemonHandle::shutdown`] (or [`DaemonHandle::kill`] to simulate
/// a crash).
pub struct DaemonHandle {
    shared: Arc<Shared>,
    socket_path: PathBuf,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    watchdog_thread: Option<std::thread::JoinHandle<()>>,
    shard_threads: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for DaemonHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DaemonHandle")
            .field("socket", &self.socket_path)
            .finish()
    }
}

impl HarpDaemon {
    /// Starts the daemon: binds the socket and spawns the accept loop.
    ///
    /// # Errors
    ///
    /// Returns [`harp_types::HarpError::Io`] if the socket cannot be bound.
    pub fn start(cfg: DaemonConfig) -> Result<DaemonHandle> {
        if cfg.tracing {
            harp_obs::enable_global();
        }
        let _ = std::fs::remove_file(&cfg.socket_path);
        let listener = UnixListener::bind(&cfg.socket_path)?;
        let shape = cfg.hw.erv_shape();

        let fence = Arc::new(AtomicU64::new(1));
        let (core, epoch) = open_core(
            cfg.hw.clone(),
            cfg.rm.clone(),
            cfg.journal_path.as_deref(),
            &fence,
            cfg.compact_every,
        )?;
        let next_id = core.max_app_seen() + 1;

        let shared = Arc::new(Shared {
            rm: RwLock::new(Arc::new(Mutex::new(core))),
            router: Router::default(),
            owners: Mutex::new(HashMap::new()),
            latency: Mutex::new(HashMap::new()),
            shape,
            hw: cfg.hw,
            rm_cfg: cfg.rm,
            journal_path: cfg.journal_path,
            fence,
            epoch,
            next_id: AtomicU64::new(next_id),
            next_token: AtomicU64::new(1),
            next_conn: AtomicU64::new(1),
            stop: AtomicBool::new(false),
            killed: AtomicBool::new(false),
            op_started_ms: AtomicU64::new(0),
            op_seq: AtomicU64::new(0),
            started: Instant::now(),
        });
        let shard_threads = reactor_server::spawn_shards(&shared, cfg.shards)?;
        let nshards = shard_threads.len();
        let accept_shared = shared.clone();
        let accept_thread = std::thread::Builder::new()
            .name("harpd-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_shared.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    match conn {
                        Ok(stream) => {
                            let conn_id = accept_shared.next_conn.fetch_add(1, Ordering::SeqCst);
                            if harp_obs::enabled() {
                                harp_obs::instant(harp_obs::Subsystem::Daemon, "accept")
                                    .field("conn", conn_id);
                                harp_obs::metrics::counter("daemon.accepts").inc();
                            }
                            // Deal connections round-robin: with long-lived
                            // sessions this keeps shard load even without
                            // tracking per-shard occupancy.
                            let shard = (conn_id as usize) % nshards;
                            accept_shared.router.dispatch_conn(shard, stream, conn_id);
                        }
                        Err(_) => return,
                    }
                }
            })?;
        let watchdog_thread = match cfg.watchdog {
            Some(threshold) => {
                let wd_shared = shared.clone();
                Some(
                    std::thread::Builder::new()
                        .name("harpd-watchdog".into())
                        .spawn(move || watchdog_loop(wd_shared, threshold))?,
                )
            }
            None => None,
        };
        Ok(DaemonHandle {
            shared,
            socket_path: cfg.socket_path,
            accept_thread: Some(accept_thread),
            watchdog_thread,
            shard_threads,
        })
    }
}

/// Builds the RM core for a boot: replays the journal (if any) through the
/// real entry points, bumps the boot epoch, and attaches a fenced writer.
/// Returns the core and the new epoch. Journal damage is tolerated — a
/// torn tail replays the surviving prefix; an unreadable journal starts a
/// fresh core (availability over history) and is counted in
/// `daemon.recover_failures`.
fn open_core(
    hw: HardwareDescription,
    rm_cfg: RmConfig,
    journal_path: Option<&Path>,
    fence: &Arc<AtomicU64>,
    compact_every: u64,
) -> Result<(RmCore, u64)> {
    let Some(path) = journal_path else {
        return Ok((RmCore::new(hw, rm_cfg), 1));
    };
    let mut prior_epoch = 0;
    let core = match read_journal(path) {
        Ok(outcome) => {
            prior_epoch = last_epoch(&outcome.records);
            if harp_obs::enabled() {
                harp_obs::instant(harp_obs::Subsystem::Daemon, "journal_replay")
                    .field("records", outcome.records.len())
                    .field("truncated", outcome.truncated);
            }
            match RmCore::recover(hw.clone(), rm_cfg.clone(), &outcome.records) {
                Ok(core) => core,
                Err(_) => {
                    harp_obs::metrics::counter("daemon.recover_failures").inc();
                    RmCore::new(hw, rm_cfg)
                }
            }
        }
        Err(_) => {
            harp_obs::metrics::counter("daemon.recover_failures").inc();
            RmCore::new(hw, rm_cfg)
        }
    };
    let epoch = prior_epoch + 1;
    let mut core = core;
    let mut writer = JournalWriter::open(path)?;
    writer.set_fence(fence.clone(), fence.load(Ordering::SeqCst));
    writer.append(&JournalRecord::EpochBump { epoch })?;
    core.attach_journal(writer, compact_every);
    Ok((core, epoch))
}

/// Samples the op-watch atomics; when an RM operation stalls past the
/// threshold, dumps the flight recorder next to the journal, fences the
/// orphaned journal writer, and swaps in a core recovered from the
/// journal. Wedged threads keep their old core and die with it.
fn watchdog_loop(shared: Arc<Shared>, threshold: Duration) {
    let threshold_ms = threshold.as_millis().max(1) as u64;
    let poll = Duration::from_millis((threshold_ms / 4).clamp(1, 250));
    while !shared.stop.load(Ordering::SeqCst) {
        std::thread::sleep(poll);
        let started = shared.op_started_ms.load(Ordering::SeqCst);
        if started == 0 {
            continue;
        }
        let now = shared.started.elapsed().as_millis() as u64;
        if now.saturating_sub(started) < threshold_ms {
            continue;
        }
        // Wedged. Dump telemetry for the postmortem (best effort).
        if let Some(path) = &shared.journal_path {
            let dump = harp_obs::dump_global(true);
            let _ = std::fs::write(path.with_extension("wedge.jsonl"), dump);
        }
        // Fence off the wedged core's journal writer: if the stuck thread
        // ever resumes, its appends are silently dropped instead of
        // corrupting the journal the new core now owns.
        shared.fence.fetch_add(1, Ordering::SeqCst);
        let recovered = shared.journal_path.as_deref().and_then(|path| {
            open_core(
                shared.hw.clone(),
                shared.rm_cfg.clone(),
                Some(path),
                &shared.fence,
                256,
            )
            .ok()
        });
        let new_core = match recovered {
            Some((core, _)) => core,
            // No journal: a fresh empty core still unwedges the daemon.
            None => RmCore::new(shared.hw.clone(), shared.rm_cfg.clone()),
        };
        *shared.rm.write().unwrap_or_else(PoisonError::into_inner) = Arc::new(Mutex::new(new_core));
        // The wedged op is presumed dead; reset the watch so the next
        // stall is measured from its own start.
        shared.op_started_ms.store(0, Ordering::SeqCst);
        harp_obs::metrics::counter("daemon.watchdog_restarts").inc();
        if harp_obs::enabled() {
            harp_obs::instant(harp_obs::Subsystem::Daemon, "watchdog_restart")
                .field("stalled_ms", now.saturating_sub(started));
        }
    }
}

impl DaemonHandle {
    /// The socket path clients connect to.
    pub fn socket_path(&self) -> &Path {
        &self.socket_path
    }

    /// Preloads an operating-point profile into the RM (description files).
    pub fn load_profile(&self, name: &str, points: Vec<(ExtResourceVector, NonFunctional)>) {
        let core = self.shared.core();
        lock(&core).load_profile(name, harp_rm::table_from_points(points));
    }

    /// Ids of the applications the RM currently manages — the live-session
    /// view used by operational checks and crash/regression tests.
    pub fn managed_apps(&self) -> Vec<AppId> {
        let core = self.shared.core();
        let apps = lock(&core).managed_apps();
        apps
    }

    /// The boot epoch this daemon stamps into `Hello` and `RegisterAck`.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch
    }

    /// Degraded allocation rounds since this boot (solver deadline
    /// overruns; see [`RmConfig::solve_deadline_iters`]).
    pub fn degraded_ticks(&self) -> u64 {
        let core = self.shared.core();
        let n = lock(&core).degraded_ticks();
        n
    }

    /// Stops the daemon and removes the socket file. The journal (if any)
    /// is detached first, so live sessions stay recorded in it and their
    /// clients can resume against the next boot.
    pub fn shutdown(mut self) {
        self.stop_threads();
        let _ = std::fs::remove_file(&self.socket_path);
    }

    /// Simulates a daemon crash for recovery testing: every client
    /// connection is severed mid-flight, no session is deregistered (the
    /// journal keeps them for the next boot), and the socket file is left
    /// behind dead — subsequent connects see `ECONNREFUSED`, exactly like
    /// a killed process.
    pub fn kill(mut self) {
        self.shared.killed.store(true, Ordering::SeqCst);
        // Joining the shards severs every client socket: each shard's
        // teardown shuts down its remaining sessions without deregistering
        // them (the `killed` flag makes hangups observed on the way out
        // skip cleanup too).
        self.stop_threads();
    }

    /// Test hook: simulates a wedged RM operation by starting an op-watch
    /// and holding the core mutex for `hold` on a detached thread. Used by
    /// the chaos suite to drive the watchdog; not part of the public API.
    #[doc(hidden)]
    pub fn wedge_for(&self, hold: Duration) {
        let shared = self.shared.clone();
        std::thread::spawn(move || {
            let core = shared.core();
            let _op = OpGuard::begin(&shared);
            let _held = lock(&core);
            std::thread::sleep(hold);
        });
    }

    /// Stops the accept, shard, and watchdog threads and releases the
    /// journal: fences the writer (a wedged thread can no longer append)
    /// and detaches it from the core so the file is free for the next boot.
    fn stop_threads(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a dummy connection.
        let _ = UnixStream::connect(&self.socket_path);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.watchdog_thread.take() {
            let _ = t.join();
        }
        // Interrupt every shard's poller; each observes `stop`, severs its
        // remaining sessions, and exits.
        self.shared.router.wake_all();
        for t in self.shard_threads.drain(..) {
            let _ = t.join();
        }
        self.shared.fence.fetch_add(1, Ordering::SeqCst);
        let core = self.shared.core();
        lock(&core).detach_journal();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnixTransport;
    use harp_proto::AdaptivityType;
    use libharp::{HarpSession, SessionConfig};

    fn temp_socket(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("harp-test-{}-{tag}.sock", std::process::id()))
    }

    fn points(shape: &ErvShape) -> Vec<(ExtResourceVector, NonFunctional)> {
        vec![
            (
                ExtResourceVector::from_flat(shape, &[0, 4, 0]).unwrap(),
                NonFunctional::new(3.0e10, 40.0),
            ),
            (
                ExtResourceVector::from_flat(shape, &[0, 0, 8]).unwrap(),
                NonFunctional::new(2.5e10, 15.0),
            ),
        ]
    }

    #[test]
    fn end_to_end_register_activate_exit() {
        let hw = HardwareDescription::raptor_lake();
        let shape = hw.erv_shape();
        let socket = temp_socket("e2e");
        let daemon = HarpDaemon::start(DaemonConfig::new(&socket, hw)).unwrap();

        let transport = UnixTransport::connect(&socket).unwrap();
        let cfg = SessionConfig::new("mg", AdaptivityType::Scalable)
            .with_points(vec![2, 1], points(&shape));
        let mut session = HarpSession::connect(transport, cfg).unwrap();
        assert!(session.app_id() >= 1);

        // Registration grants a provisional whole-machine envelope; the
        // submitted points then trigger a re-allocation whose activation
        // selects the efficient 8-E-core point. Wait for that final state.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            session.poll(|| 0.0).unwrap();
            if let Some(act) = session.allocation().current() {
                if act.parallelism == 8 {
                    assert_eq!(act.hw_threads.len(), 8);
                    break;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "8-thread activation never arrived (last: {:?})",
                session.allocation().current()
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        session.exit().unwrap();
        daemon.shutdown();
    }

    #[test]
    fn two_clients_get_disjoint_threads() {
        let hw = HardwareDescription::raptor_lake();
        let shape = hw.erv_shape();
        let socket = temp_socket("two");
        let daemon = HarpDaemon::start(DaemonConfig::new(&socket, hw)).unwrap();
        daemon.load_profile("a", points(&shape));
        daemon.load_profile("b", points(&shape));

        let mut s1 = HarpSession::connect(
            UnixTransport::connect(&socket).unwrap(),
            SessionConfig::new("a", AdaptivityType::Scalable),
        )
        .unwrap();
        let mut s2 = HarpSession::connect(
            UnixTransport::connect(&socket).unwrap(),
            SessionConfig::new("b", AdaptivityType::Scalable),
        )
        .unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            s1.poll(|| 0.0).unwrap();
            s2.poll(|| 0.0).unwrap();
            if let (Some(a1), Some(a2)) = (s1.allocation().current(), s2.allocation().current()) {
                let overlap = a1.hw_threads.iter().any(|t| a2.hw_threads.contains(t));
                assert!(!overlap, "thread grants overlap: {a1:?} vs {a2:?}");
                break;
            }
            assert!(std::time::Instant::now() < deadline, "no activations");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        s1.exit().unwrap();
        s2.exit().unwrap();
        daemon.shutdown();
    }

    fn temp_journal(tag: &str) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("harp-test-{}-{tag}.journal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    /// Polls `cond` for up to 5 seconds.
    fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !cond() {
            assert!(std::time::Instant::now() < deadline, "timed out: {what}");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn kill_then_restart_recovers_sessions_from_the_journal() {
        let hw = HardwareDescription::raptor_lake();
        let shape = hw.erv_shape();
        let socket = temp_socket("recover");
        let journal = temp_journal("recover");
        let daemon =
            HarpDaemon::start(DaemonConfig::new(&socket, hw.clone()).with_journal(&journal))
                .unwrap();
        assert_eq!(daemon.epoch(), 1);

        let cfg = SessionConfig::new("victim", AdaptivityType::Scalable)
            .with_points(vec![2, 1], points(&shape));
        let mut session =
            HarpSession::connect(UnixTransport::connect(&socket).unwrap(), cfg).unwrap();
        let id = session.app_id();
        wait_for(
            || {
                session.poll(|| 0.0).unwrap();
                session
                    .allocation()
                    .current()
                    .is_some_and(|a| a.parallelism == 8)
            },
            "pre-crash activation",
        );
        let before = session.allocation().current().unwrap();

        // Crash: sockets severed, nothing deregistered, socket file stays.
        daemon.kill();
        assert!(socket.exists(), "kill must leave the dead socket behind");

        // Restart from the journal: the session is still managed, under a
        // bumped epoch, and its directive replays bit-identically.
        let daemon =
            HarpDaemon::start(DaemonConfig::new(&socket, hw).with_journal(&journal)).unwrap();
        assert_eq!(daemon.epoch(), 2, "epoch must bump across restarts");
        let managed: Vec<u64> = daemon.managed_apps().iter().map(|a| a.raw()).collect();
        assert_eq!(managed, vec![id], "journal lost the session");
        let core = daemon.shared.core();
        let replayed = lock(&core).last_directive(AppId(id)).cloned().unwrap();
        drop(core);
        assert_eq!(replayed.erv.flat(), before.erv_flat);
        assert_eq!(
            replayed.hw_threads.iter().map(|t| t.0).collect::<Vec<_>>(),
            before.hw_threads.iter().map(|t| t.0).collect::<Vec<_>>()
        );
        assert_eq!(replayed.parallelism, before.parallelism);
        daemon.shutdown();
        let _ = std::fs::remove_file(&journal);
    }

    #[test]
    fn watchdog_replaces_a_wedged_core() {
        let hw = HardwareDescription::raptor_lake();
        let shape = hw.erv_shape();
        let socket = temp_socket("wedge");
        let journal = temp_journal("wedge");
        let daemon = HarpDaemon::start(
            DaemonConfig::new(&socket, hw)
                .with_journal(&journal)
                .with_watchdog(Duration::from_millis(40)),
        )
        .unwrap();
        let cfg = SessionConfig::new("survivor", AdaptivityType::Scalable)
            .with_points(vec![2, 1], points(&shape));
        let mut session =
            HarpSession::connect(UnixTransport::connect(&socket).unwrap(), cfg).unwrap();
        let id = session.app_id();
        wait_for(
            || {
                session.poll(|| 0.0).unwrap();
                session.allocation().current().is_some()
            },
            "activation before wedge",
        );

        let baseline = harp_obs::metrics::counter("daemon.watchdog_restarts").get();
        // Hold the core mutex with an op in flight far past the threshold.
        daemon.wedge_for(Duration::from_secs(3));
        wait_for(
            || harp_obs::metrics::counter("daemon.watchdog_restarts").get() > baseline,
            "watchdog restart",
        );
        // The swapped-in core was recovered from the journal: the session
        // survived the restart, and the daemon serves without waiting for
        // the wedged thread to release the old core.
        let managed: Vec<u64> = daemon.managed_apps().iter().map(|a| a.raw()).collect();
        assert_eq!(managed, vec![id], "session lost across watchdog restart");
        // The telemetry postmortem was dumped next to the journal.
        assert!(
            journal.with_extension("wedge.jsonl").exists(),
            "wedge dump missing"
        );
        daemon.shutdown();
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_file(journal.with_extension("wedge.jsonl"));
    }

    #[test]
    fn shutdown_removes_socket() {
        let socket = temp_socket("down");
        let daemon = HarpDaemon::start(DaemonConfig::new(
            &socket,
            HardwareDescription::odroid_xu3(),
        ))
        .unwrap();
        assert!(socket.exists());
        daemon.shutdown();
        assert!(!socket.exists());
    }
}
