//! The `harpd` server: RM core behind a Unix domain socket.

use harp_platform::HardwareDescription;
use harp_proto::frame;
use harp_proto::{Activate, ErrorMsg, Message, RegisterAck, TelemetryDump};
use harp_rm::{Directive, RmConfig, RmCore, RmOutput};
use harp_types::{AppId, ErvShape, ExtResourceVector, NonFunctional, Result};
use std::collections::HashMap;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Protocol error code: a registration was rejected by the RM.
pub const ERR_REGISTER_REJECTED: u32 = 1;
/// Protocol error code: a malformed or torn frame was received.
pub const ERR_PROTOCOL: u32 = 2;
/// Protocol error code: a message that requires a session arrived before
/// registration.
pub const ERR_NO_SESSION: u32 = 3;
/// Protocol error code: a second `Register` arrived on a connection that
/// already holds a session.
pub const ERR_DUPLICATE_REGISTER: u32 = 4;
/// Protocol error code: a point submission was rejected by the RM.
pub const ERR_SUBMIT_REJECTED: u32 = 5;

/// Stable telemetry name of a protocol error code.
fn err_name(code: u32) -> &'static str {
    match code {
        ERR_REGISTER_REJECTED => "register_rejected",
        ERR_PROTOCOL => "protocol",
        ERR_NO_SESSION => "no_session",
        ERR_DUPLICATE_REGISTER => "duplicate_register",
        ERR_SUBMIT_REJECTED => "submit_rejected",
        _ => "unknown",
    }
}

/// Stable telemetry name of an inbound message type.
fn msg_name(msg: &Message) -> &'static str {
    match msg {
        Message::Register(_) => "register",
        Message::RegisterAck(_) => "register_ack",
        Message::SubmitPoints(_) => "submit_points",
        Message::Activate(_) => "activate",
        Message::UtilityRequest(_) => "utility_request",
        Message::UtilityReport(_) => "utility_report",
        Message::Exit { .. } => "exit",
        Message::Error(_) => "error",
        Message::DumpTelemetry(_) => "dump_telemetry",
        Message::TelemetryDump(_) => "telemetry_dump",
    }
}

/// Upper bound on the JSONL payload of a [`TelemetryDump`] reply, chosen
/// well under [`frame::MAX_FRAME_LEN`] so the encoded frame always fits.
const MAX_DUMP_BYTES: usize = 8 * 1024 * 1024;

/// Truncates a JSONL document to `max` bytes at a line boundary.
fn truncate_jsonl(mut jsonl: String, max: usize) -> (String, bool) {
    if jsonl.len() <= max {
        return (jsonl, false);
    }
    let cut = jsonl[..max].rfind('\n').map(|i| i + 1).unwrap_or(0);
    jsonl.truncate(cut);
    (jsonl, true)
}

/// Locks a mutex, recovering from poison: a connection thread that
/// panicked while holding the lock must not take the whole daemon down
/// with it — the guarded state (RM core, stream map) stays consistent
/// because every mutation path hands back a fully-updated value.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Path of the Unix socket to listen on.
    pub socket_path: PathBuf,
    /// The machine description (normally loaded from `/etc/harp`).
    pub hw: HardwareDescription,
    /// RM configuration. Defaults to *offline* mode — see the
    /// [crate docs](crate) for why the daemon does not monitor counters.
    pub rm: RmConfig,
    /// Whether to enable the global `harp-obs` collector on start. Off by
    /// default: tracing is opt-in, and the disabled path costs one atomic
    /// load per callsite.
    pub tracing: bool,
}

impl DaemonConfig {
    /// Creates a configuration with offline-mode RM defaults.
    pub fn new(socket_path: impl AsRef<Path>, hw: HardwareDescription) -> Self {
        let rm = RmConfig {
            offline: true,
            ..Default::default()
        };
        DaemonConfig {
            socket_path: socket_path.as_ref().to_path_buf(),
            hw,
            rm,
            tracing: false,
        }
    }

    /// Enables the global telemetry collector for this daemon.
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }
}

struct Shared {
    rm: Mutex<RmCore>,
    /// Write-sides of connected applications, for pushing activations.
    streams: Mutex<HashMap<AppId, UnixStream>>,
    shape: ErvShape,
    next_id: AtomicU64,
    /// Connection counter for telemetry (distinct from session ids: a
    /// connection may never register).
    next_conn: AtomicU64,
    stop: AtomicBool,
}

impl Shared {
    /// Relays the RM output to every affected application. Streams whose
    /// peer is gone are pruned here; the session itself is deregistered by
    /// its connection thread when it observes the hangup.
    fn route(&self, out: &RmOutput) {
        let mut streams = lock(&self.streams);
        let mut dead: Vec<AppId> = Vec::new();
        for d in &out.directives {
            if let Some(mut stream) = streams.get(&d.app) {
                if frame::write_frame(&mut stream, &directive_to_activate(d)).is_err() {
                    dead.push(d.app);
                }
            }
        }
        for app in dead {
            streams.remove(&app);
            if harp_obs::enabled() {
                harp_obs::instant(harp_obs::Subsystem::Daemon, "dead_stream_pruned")
                    .field("session", app.raw());
                harp_obs::metrics::counter("daemon.dead_stream_pruned").inc();
            }
        }
    }
}

fn directive_to_activate(d: &Directive) -> Message {
    Message::Activate(Activate {
        app_id: d.app.raw(),
        erv_flat: d.erv.flat(),
        core_ids: d.cores.iter().map(|c| c.0 as u32).collect(),
        parallelism: d.parallelism,
        hw_thread_ids: d.hw_threads.iter().map(|t| t.0 as u32).collect(),
    })
}

/// The HARP daemon (see [crate docs](crate)).
#[derive(Debug)]
pub struct HarpDaemon;

/// Handle of a running daemon; dropping it does *not* stop the daemon —
/// call [`DaemonHandle::shutdown`].
pub struct DaemonHandle {
    shared: Arc<Shared>,
    socket_path: PathBuf,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for DaemonHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DaemonHandle")
            .field("socket", &self.socket_path)
            .finish()
    }
}

impl HarpDaemon {
    /// Starts the daemon: binds the socket and spawns the accept loop.
    ///
    /// # Errors
    ///
    /// Returns [`harp_types::HarpError::Io`] if the socket cannot be bound.
    pub fn start(cfg: DaemonConfig) -> Result<DaemonHandle> {
        if cfg.tracing {
            harp_obs::enable_global();
        }
        let _ = std::fs::remove_file(&cfg.socket_path);
        let listener = UnixListener::bind(&cfg.socket_path)?;
        let shape = cfg.hw.erv_shape();
        let shared = Arc::new(Shared {
            rm: Mutex::new(RmCore::new(cfg.hw.clone(), cfg.rm.clone())),
            streams: Mutex::new(HashMap::new()),
            shape,
            next_id: AtomicU64::new(1),
            next_conn: AtomicU64::new(1),
            stop: AtomicBool::new(false),
        });
        let accept_shared = shared.clone();
        let accept_thread = std::thread::Builder::new()
            .name("harpd-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_shared.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    match conn {
                        Ok(stream) => {
                            let shared = accept_shared.clone();
                            let conn_id = shared.next_conn.fetch_add(1, Ordering::SeqCst);
                            if harp_obs::enabled() {
                                harp_obs::instant(harp_obs::Subsystem::Daemon, "accept")
                                    .field("conn", conn_id);
                                harp_obs::metrics::counter("daemon.accepts").inc();
                            }
                            let _ = std::thread::Builder::new()
                                .name("harpd-conn".into())
                                .spawn(move || handle_connection(shared, stream, conn_id));
                        }
                        Err(_) => return,
                    }
                }
            })?;
        Ok(DaemonHandle {
            shared,
            socket_path: cfg.socket_path,
            accept_thread: Some(accept_thread),
        })
    }
}

impl DaemonHandle {
    /// The socket path clients connect to.
    pub fn socket_path(&self) -> &Path {
        &self.socket_path
    }

    /// Preloads an operating-point profile into the RM (description files).
    pub fn load_profile(&self, name: &str, points: Vec<(ExtResourceVector, NonFunctional)>) {
        lock(&self.shared.rm).load_profile(name, harp_rm::table_from_points(points));
    }

    /// Ids of the applications the RM currently manages — the live-session
    /// view used by operational checks and crash/regression tests.
    pub fn managed_apps(&self) -> Vec<AppId> {
        lock(&self.shared.rm).managed_apps()
    }

    /// Stops the daemon and removes the socket file.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a dummy connection.
        let _ = UnixStream::connect(&self.socket_path);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.socket_path);
    }
}

/// Sends a protocol error notification to the peer; delivery is
/// best-effort (the peer may already be gone). Every ERR_* reply is also
/// logged as a structured `err_reply` event carrying the connection and
/// session ids, and counted in the metrics registry.
fn send_error(
    stream: &UnixStream,
    code: u32,
    detail: impl Into<String>,
    conn: u64,
    session: Option<AppId>,
) {
    let detail = detail.into();
    if harp_obs::enabled() {
        harp_obs::instant(harp_obs::Subsystem::Daemon, "err_reply")
            .field("code", code)
            .field("err", err_name(code))
            .field("conn", conn)
            .field("session", session.map(AppId::raw).unwrap_or(0))
            .field("detail", detail.clone());
        harp_obs::metrics::counter("daemon.err_replies").inc();
    }
    let _ = frame::write_frame(stream, &Message::Error(ErrorMsg { code, detail }));
}

/// Serves one client connection until clean exit, hangup, or a protocol
/// violation. Every failure mode ends in the same cleanup: the write side
/// is unrouted and the session (if any) deregistered, so a misbehaving or
/// crashed client can never leak cores or wedge the daemon.
fn handle_connection(shared: Arc<Shared>, stream: UnixStream, conn: u64) {
    let mut read = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut conn_span = harp_obs::span(harp_obs::Subsystem::Daemon, "conn").field("conn", conn);
    let mut app: Option<AppId> = None;
    loop {
        let msg = match frame::read_frame(&mut read) {
            Ok(Some(m)) => m,
            // Clean EOF at a frame boundary: treat like an exit.
            Ok(None) => break,
            // Torn, oversized or malformed frame — tell the peer (best
            // effort) and drop the connection. Resynchronizing a byte
            // stream after a framing error is not possible.
            Err(e) => {
                send_error(&stream, ERR_PROTOCOL, e.to_string(), conn, app);
                break;
            }
        };
        let _dispatch = harp_obs::span(harp_obs::Subsystem::Daemon, "dispatch")
            .field("msg", msg_name(&msg))
            .field("conn", conn)
            .field("session", app.map(AppId::raw).unwrap_or(0));
        match msg {
            Message::Register(_) if app.is_some() => {
                // A connection is one session; re-registration would leak
                // the original session's resources.
                send_error(
                    &stream,
                    ERR_DUPLICATE_REGISTER,
                    "connection already holds a registered session",
                    conn,
                    app,
                );
            }
            Message::Register(reg) => {
                let id = AppId(shared.next_id.fetch_add(1, Ordering::SeqCst));
                // Make the stream routable before the allocation round so
                // this app receives its own activation.
                if let Ok(clone) = stream.try_clone() {
                    lock(&shared.streams).insert(id, clone);
                }
                let result = lock(&shared.rm).register(id, &reg.app_name, reg.provides_utility);
                match result {
                    Ok(out) => {
                        app = Some(id);
                        conn_span.set_field("session", id.raw());
                        let _ = frame::write_frame(
                            &stream,
                            &Message::RegisterAck(RegisterAck { app_id: id.raw() }),
                        );
                        shared.route(&out);
                    }
                    Err(e) => {
                        lock(&shared.streams).remove(&id);
                        send_error(&stream, ERR_REGISTER_REJECTED, e.to_string(), conn, app);
                    }
                }
            }
            Message::SubmitPoints(sp) => {
                let Some(id) = app else {
                    send_error(
                        &stream,
                        ERR_NO_SESSION,
                        "SubmitPoints before registration",
                        conn,
                        app,
                    );
                    continue;
                };
                let mut points = Vec::new();
                for p in &sp.points {
                    if let Ok(erv) = ExtResourceVector::from_flat(&shared.shape, &p.erv_flat) {
                        points.push((erv, NonFunctional::new(p.utility, p.power)));
                    }
                }
                match lock(&shared.rm).submit_points(id, points) {
                    Ok(out) => shared.route(&out),
                    Err(e) => send_error(&stream, ERR_SUBMIT_REJECTED, e.to_string(), conn, app),
                }
            }
            Message::DumpTelemetry(req) => {
                // Serve the flight recorder to observers (`harp-trace`).
                // When the collector is disabled the dump is just the
                // (empty) recorder header — still a valid document.
                let (jsonl, truncated) =
                    truncate_jsonl(harp_obs::dump_global(req.include_metrics), MAX_DUMP_BYTES);
                let _ = frame::write_frame(
                    &stream,
                    &Message::TelemetryDump(TelemetryDump { jsonl, truncated }),
                );
            }
            Message::UtilityReport(_) => {
                // Collected for future online monitoring; the daemon's RM
                // runs offline (see crate docs).
            }
            Message::Exit { .. } => break,
            _ => {
                // RM-to-application messages echoed back by a confused or
                // malicious client carry no meaning here; ignore them.
            }
        }
    }
    if let Some(id) = app {
        lock(&shared.streams).remove(&id);
        if let Ok(out) = lock(&shared.rm).deregister(id) {
            if harp_obs::enabled() {
                harp_obs::instant(harp_obs::Subsystem::Daemon, "session_deregistered")
                    .field("conn", conn)
                    .field("session", id.raw());
                harp_obs::metrics::counter("daemon.deregisters").inc();
            }
            shared.route(&out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnixTransport;
    use harp_proto::AdaptivityType;
    use libharp::{HarpSession, SessionConfig};

    fn temp_socket(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("harp-test-{}-{tag}.sock", std::process::id()))
    }

    fn points(shape: &ErvShape) -> Vec<(ExtResourceVector, NonFunctional)> {
        vec![
            (
                ExtResourceVector::from_flat(shape, &[0, 4, 0]).unwrap(),
                NonFunctional::new(3.0e10, 40.0),
            ),
            (
                ExtResourceVector::from_flat(shape, &[0, 0, 8]).unwrap(),
                NonFunctional::new(2.5e10, 15.0),
            ),
        ]
    }

    #[test]
    fn end_to_end_register_activate_exit() {
        let hw = HardwareDescription::raptor_lake();
        let shape = hw.erv_shape();
        let socket = temp_socket("e2e");
        let daemon = HarpDaemon::start(DaemonConfig::new(&socket, hw)).unwrap();

        let transport = UnixTransport::connect(&socket).unwrap();
        let cfg = SessionConfig::new("mg", AdaptivityType::Scalable)
            .with_points(vec![2, 1], points(&shape));
        let mut session = HarpSession::connect(transport, cfg).unwrap();
        assert!(session.app_id() >= 1);

        // Registration grants a provisional whole-machine envelope; the
        // submitted points then trigger a re-allocation whose activation
        // selects the efficient 8-E-core point. Wait for that final state.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            session.poll(|| 0.0).unwrap();
            if let Some(act) = session.allocation().current() {
                if act.parallelism == 8 {
                    assert_eq!(act.hw_threads.len(), 8);
                    break;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "8-thread activation never arrived (last: {:?})",
                session.allocation().current()
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        session.exit().unwrap();
        daemon.shutdown();
    }

    #[test]
    fn two_clients_get_disjoint_threads() {
        let hw = HardwareDescription::raptor_lake();
        let shape = hw.erv_shape();
        let socket = temp_socket("two");
        let daemon = HarpDaemon::start(DaemonConfig::new(&socket, hw)).unwrap();
        daemon.load_profile("a", points(&shape));
        daemon.load_profile("b", points(&shape));

        let mut s1 = HarpSession::connect(
            UnixTransport::connect(&socket).unwrap(),
            SessionConfig::new("a", AdaptivityType::Scalable),
        )
        .unwrap();
        let mut s2 = HarpSession::connect(
            UnixTransport::connect(&socket).unwrap(),
            SessionConfig::new("b", AdaptivityType::Scalable),
        )
        .unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            s1.poll(|| 0.0).unwrap();
            s2.poll(|| 0.0).unwrap();
            if let (Some(a1), Some(a2)) = (s1.allocation().current(), s2.allocation().current()) {
                let overlap = a1.hw_threads.iter().any(|t| a2.hw_threads.contains(t));
                assert!(!overlap, "thread grants overlap: {a1:?} vs {a2:?}");
                break;
            }
            assert!(std::time::Instant::now() < deadline, "no activations");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        s1.exit().unwrap();
        s2.exit().unwrap();
        daemon.shutdown();
    }

    #[test]
    fn shutdown_removes_socket() {
        let socket = temp_socket("down");
        let daemon = HarpDaemon::start(DaemonConfig::new(
            &socket,
            HardwareDescription::odroid_xu3(),
        ))
        .unwrap();
        assert!(socket.exists());
        daemon.shutdown();
        assert!(!socket.exists());
    }
}
