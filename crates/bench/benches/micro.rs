//! Micro-benchmarks of HARP's hot paths: the MMKP allocator (runs on every
//! application arrival/exit), the wire codec (every RM↔libharp message),
//! the regression fit (every completed measurement campaign), and the
//! machine simulator itself (the evaluation substrate).
//!
//! Resource management must be "swift and lightweight" (paper §2/§6.6);
//! these benches quantify that for the reproduction.

use criterion::{criterion_group, criterion_main, Criterion};
use harp_alloc::{allocate, AllocOption, AllocRequest, SolverKind};
use harp_model::{PolynomialRegression, Regressor};
use harp_proto::{Activate, Message};
use harp_sim::{AppSpec, LaunchOpts, NullManager, SimConfig, Simulation};
use harp_types::{AppId, ExtResourceVector, OpId};
use harp_workload::Platform;
use std::hint::black_box;

fn alloc_requests(n_apps: usize, n_opts: usize) -> Vec<AllocRequest> {
    let hw = Platform::RaptorLake.hardware();
    let shape = hw.erv_shape();
    (0..n_apps)
        .map(|a| AllocRequest {
            app: AppId(a as u64 + 1),
            options: (0..n_opts)
                .map(|o| {
                    let p2 = (o % 4) as u32;
                    let e = ((o * 3) % 8 + 1) as u32;
                    AllocOption {
                        op: OpId(o),
                        cost: 1.0 + ((a * 7 + o * 13) % 29) as f64,
                        erv: ExtResourceVector::from_flat(&shape, &[0, p2, e]).expect("grid point"),
                    }
                })
                .collect(),
        })
        .collect()
}

fn bench_allocator(c: &mut Criterion) {
    let hw = Platform::RaptorLake.hardware();
    let reqs = alloc_requests(5, 12);
    let mut group = c.benchmark_group("allocator");
    group.bench_function("lagrangian_5apps_12opts", |b| {
        b.iter(|| allocate(black_box(&reqs), &hw, SolverKind::Lagrangian).unwrap())
    });
    group.bench_function("greedy_5apps_12opts", |b| {
        b.iter(|| allocate(black_box(&reqs), &hw, SolverKind::Greedy).unwrap())
    });
    let small = alloc_requests(3, 6);
    group.bench_function("exact_3apps_6opts", |b| {
        b.iter(|| allocate(black_box(&small), &hw, SolverKind::Exact).unwrap())
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let msg = Message::Activate(Activate {
        app_id: 42,
        erv_flat: vec![1, 2, 4],
        core_ids: (0..24).collect(),
        parallelism: 9,
        hw_thread_ids: (0..32).collect(),
    });
    let bytes = msg.encode();
    let mut group = c.benchmark_group("codec");
    group.bench_function("encode_activate", |b| b.iter(|| black_box(&msg).encode()));
    group.bench_function("decode_activate", |b| {
        b.iter(|| Message::decode(black_box(&bytes)).unwrap())
    });
    group.finish();
}

fn bench_regression(c: &mut Criterion) {
    let xs: Vec<Vec<f64>> = (0..25)
        .map(|i| vec![(i % 3) as f64, (i % 5) as f64, (i % 7) as f64])
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| 3.0 + x[0] * 2.0 + x[1] * x[2]).collect();
    let mut group = c.benchmark_group("regression");
    group.bench_function("poly2_fit_25pts", |b| {
        b.iter(|| {
            let mut m = PolynomialRegression::new(2);
            m.fit(black_box(&xs), black_box(&ys)).unwrap();
            m
        })
    });
    let mut fitted = PolynomialRegression::new(2);
    fitted.fit(&xs, &ys).unwrap();
    group.bench_function("poly2_predict", |b| {
        b.iter(|| fitted.predict(black_box(&[1.0, 2.0, 3.0])))
    });
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);
    group.bench_function("raptor_lake_single_app_run", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(Platform::RaptorLake.hardware(), SimConfig::default());
            sim.add_arrival(
                0,
                AppSpec::builder("bench", 2)
                    .total_work(5.0e10)
                    .iterations(100)
                    .build()
                    .unwrap(),
                LaunchOpts::all_hw_threads(),
            );
            sim.run(&mut NullManager).unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_allocator,
    bench_codec,
    bench_regression,
    bench_simulator
);
criterion_main!(benches);
