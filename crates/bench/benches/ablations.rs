//! Ablation benches for the design choices called out in `DESIGN.md`:
//!
//! * **Allocator**: Lagrangian relaxation vs the greedy heuristic vs the
//!   exact solver — solution quality (cost gap) and latency.
//! * **Exploration heuristics**: the staged max-distance / anomaly-hunting
//!   selection (§5.3) vs uniform-random target selection — model accuracy
//!   after the same measurement budget.
//! * **EMA smoothing factor**: the paper's α = 0.1 vs alternatives — error
//!   of learned characteristics under measurement noise.
//!
//! Each group prints its quality table once, then times the mechanism.

use criterion::{criterion_group, criterion_main, Criterion};
use harp_alloc::{allocate, AllocOption, AllocRequest, SolverKind};
use harp_explore::{ExplorationConfig, Explorer, SampleOutcome};
use harp_model::Ema;
use harp_types::{AppId, ExtResourceVector, OpId, ResourceVector};
use harp_workload::Platform;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::sync::Once;

// ---------------------------------------------------------------------
// Allocator ablation
// ---------------------------------------------------------------------

fn random_instance(rng: &mut ChaCha8Rng, n_apps: usize) -> Vec<AllocRequest> {
    let hw = Platform::RaptorLake.hardware();
    let shape = hw.erv_shape();
    (0..n_apps)
        .map(|a| AllocRequest {
            app: AppId(a as u64 + 1),
            options: (0..rng.random_range(3..8usize))
                .map(|o| {
                    let p2 = rng.random_range(0..5u32);
                    let e = rng.random_range(if p2 == 0 { 1 } else { 0 }..9u32);
                    AllocOption {
                        op: OpId(o),
                        cost: rng.random_range(1.0..50.0),
                        erv: ExtResourceVector::from_flat(&shape, &[0, p2, e]).unwrap(),
                    }
                })
                .collect(),
        })
        .collect()
}

static ALLOC_TABLE: Once = Once::new();

fn alloc_quality_table() {
    ALLOC_TABLE.call_once(|| {
        let hw = Platform::RaptorLake.hardware();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut gaps_lagr = Vec::new();
        let mut gaps_greedy = Vec::new();
        for _ in 0..50 {
            let reqs = random_instance(&mut rng, 3);
            let Ok(exact) = allocate(&reqs, &hw, SolverKind::Exact) else {
                continue;
            };
            if exact.co_allocated || exact.total_cost <= 0.0 {
                continue;
            }
            if let Ok(l) = allocate(&reqs, &hw, SolverKind::Lagrangian) {
                gaps_lagr.push(l.total_cost / exact.total_cost);
            }
            if let Ok(g) = allocate(&reqs, &hw, SolverKind::Greedy) {
                gaps_greedy.push(g.total_cost / exact.total_cost);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        let max = |v: &[f64]| v.iter().fold(1.0f64, |a, &b| a.max(b));
        println!("\nAblation: MMKP solver quality vs exact (50 random 3-app instances)");
        println!(
            "  Lagrangian:  mean gap {:.3}x   worst {:.3}x",
            mean(&gaps_lagr),
            max(&gaps_lagr)
        );
        println!(
            "  Greedy:      mean gap {:.3}x   worst {:.3}x\n",
            mean(&gaps_greedy),
            max(&gaps_greedy)
        );
    });
}

fn bench_ablation_alloc(c: &mut Criterion) {
    alloc_quality_table();
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let reqs = random_instance(&mut rng, 8);
    let hw = Platform::RaptorLake.hardware();
    let mut g = c.benchmark_group("ablation_alloc");
    for kind in [SolverKind::Lagrangian, SolverKind::Greedy] {
        g.bench_function(format!("{kind:?}_8apps"), |b| {
            b.iter(|| allocate(black_box(&reqs), &hw, kind))
        });
    }
    g.finish();
}

// ---------------------------------------------------------------------
// Exploration-heuristic ablation
// ---------------------------------------------------------------------

fn synthetic_truth(erv: &ExtResourceVector) -> (f64, f64) {
    let p_threads = erv.threads_of_kind(0) as f64;
    let e_threads = erv.threads_of_kind(1) as f64;
    let raw = 6.0 * p_threads + 5.1 * e_threads;
    let utility = raw / (1.0 + 0.01 * (p_threads + e_threads));
    let power = 8.0 * erv.cores_of_kind(0) as f64 + 1.8 * e_threads + 20.0;
    (utility, power)
}

/// Runs `campaigns` exploration campaigns with the paper heuristics and
/// returns the mean relative prediction error over the whole space.
fn explore_error(heuristic: bool, campaigns: usize, seed: u64) -> f64 {
    let hw = Platform::RaptorLake.hardware();
    let shape = hw.erv_shape();
    let capacity = hw.capacity();
    let cfg = ExplorationConfig {
        measurements_per_point: 5,
        stable_threshold: usize::MAX, // keep exploring
        ..Default::default()
    };
    let mut ex = Explorer::new(&shape, &capacity, cfg).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let all = ExtResourceVector::enumerate(&shape, &ResourceVector::new(vec![3, 8]))
        .unwrap()
        .into_iter()
        .filter(|e| !e.is_zero())
        .collect::<Vec<_>>();
    for _ in 0..campaigns {
        let target = if heuristic {
            match ex.begin_target(&capacity) {
                Some(t) => t,
                None => break,
            }
        } else {
            // Random selection baseline (measured via record_ambient to
            // bypass the campaign machinery).
            all[rng.random_range(0..all.len())].clone()
        };
        let (u, p) = synthetic_truth(&target);
        if heuristic {
            loop {
                let noisy_u = u * rng.random_range(0.97..1.03);
                let noisy_p = p * rng.random_range(0.97..1.03);
                if ex.record_sample(noisy_u, noisy_p).unwrap() == SampleOutcome::TargetDone {
                    break;
                }
            }
        } else {
            for _ in 0..5 {
                let noisy_u = u * rng.random_range(0.97..1.03);
                let noisy_p = p * rng.random_range(0.97..1.03);
                ex.record_ambient(&target, noisy_u, noisy_p);
            }
        }
    }
    let model = match ex.refresh_predictions() {
        Some(m) => m,
        None => return f64::INFINITY,
    };
    let mut err = 0.0;
    for e in &all {
        let (u, _) = synthetic_truth(e);
        let pred = model.predict(e);
        err += ((pred.utility - u) / u).abs();
    }
    err / all.len() as f64
}

static EXPLORE_TABLE: Once = Once::new();

fn explore_quality_table() {
    EXPLORE_TABLE.call_once(|| {
        println!("\nAblation: exploration heuristics vs random target selection");
        println!("(mean relative utility-prediction error after N campaigns)");
        for n in [8usize, 15, 25] {
            let h: f64 = (0..5).map(|s| explore_error(true, n, s)).sum::<f64>() / 5.0;
            let r: f64 = (0..5).map(|s| explore_error(false, n, s)).sum::<f64>() / 5.0;
            println!("  {n:>3} campaigns: heuristic {:.3}  random {:.3}", h, r);
        }
        println!();
    });
}

fn bench_ablation_explore(c: &mut Criterion) {
    explore_quality_table();
    let hw = Platform::RaptorLake.hardware();
    let mut g = c.benchmark_group("ablation_explore");
    g.sample_size(10);
    g.bench_function("target_selection_refinement_stage", |b| {
        // Pre-measure enough points to be in the refinement stage, then
        // time one heuristic target selection.
        let cfg = ExplorationConfig {
            measurements_per_point: 1,
            ..Default::default()
        };
        let mut ex = Explorer::new(&hw.erv_shape(), &hw.capacity(), cfg).unwrap();
        for _ in 0..10 {
            if let Some(t) = ex.begin_target(&hw.capacity()) {
                let (u, p) = synthetic_truth(&t);
                ex.record_sample(u, p).unwrap();
            }
        }
        b.iter(|| {
            let t = ex.begin_target(&hw.capacity());
            black_box(t)
        })
    });
    g.finish();
}

// ---------------------------------------------------------------------
// EMA ablation
// ---------------------------------------------------------------------

static EMA_TABLE: Once = Once::new();

fn ema_quality_table() {
    EMA_TABLE.call_once(|| {
        println!("\nAblation: EMA smoothing factor under 10% measurement noise");
        println!("(abs error of the smoothed estimate after 20 samples; truth = 100)");
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for alpha in [0.05, 0.1, 0.3, 0.7, 1.0] {
            let mut errs = Vec::new();
            for _ in 0..200 {
                let mut ema = Ema::new(alpha);
                for _ in 0..20 {
                    ema.update(100.0 * rng.random_range(0.9..1.1));
                }
                errs.push((ema.value().unwrap() - 100.0).abs());
            }
            let mean = errs.iter().sum::<f64>() / errs.len() as f64;
            println!("  alpha {alpha:>4}: mean abs error {mean:.2}");
        }
        println!("(the paper uses alpha = 0.1)\n");
    });
}

fn bench_ablation_ema(c: &mut Criterion) {
    ema_quality_table();
    c.bench_function("ablation_ema_update", |b| {
        let mut ema = Ema::paper_default();
        let mut x = 0.0f64;
        b.iter(|| {
            x += 1.0;
            ema.update(black_box(x))
        })
    });
}

criterion_group!(
    benches,
    bench_ablation_alloc,
    bench_ablation_explore,
    bench_ablation_ema
);
criterion_main!(benches);
