//! Solver-engine microbenchmark: sweeps apps × options × kinds and
//! compares the incremental MMKP engine (cold and warm-started) against
//! the frozen reference solver, emitting `BENCH_solver.json`.
//!
//! Two measurements per configuration:
//!
//! * **cold** — a single one-shot solve, engine vs reference, on a
//!   congested instance (cheap options oversubscribe capacity so the
//!   subgradient schedule actually runs).
//! * **warm ticks** — a 32-tick RM-style sequence (arrival burst, cost
//!   drift, departure, re-arrival, with unchanged instances in between).
//!   The engine threads one [`WarmStart`] through all ticks; the
//!   reference re-solves every tick from scratch. `warm_speedup` is the
//!   reference total divided by the engine total.
//!
//! Run with `cargo bench -p harp-bench --bench solver`. Environment:
//!
//! * `HARP_SOLVER_BENCH_QUICK=1` — smoke mode: small configs, few reps
//!   (used by `ci.sh`; the compat criterion harness has no CLI parsing,
//!   so quick mode is an env var rather than a flag).
//! * `HARP_SOLVER_BENCH_JSON=path` — output path (defaults to the repo
//!   root `BENCH_solver.json`).
//!
//! The binary re-parses whatever it wrote and exits non-zero if the
//! JSON is malformed, so CI can gate on the artifact.

use criterion::{black_box, Criterion};
use harp_alloc::{reference, select, AllocOption, AllocRequest, SolverKind, WarmStart};
use harp_types::{AppId, ErvShape, ExtResourceVector, OpId, ResourceVector};
use serde::Deserialize;
use std::time::Instant;

/// The PR 3 committed headline (apps=32 × options=16 × kinds=3)
/// warm-engine time. The telemetry layer added on top of the solver must
/// not tax the disabled path: `bench_artifacts.rs` gates the committed
/// `obs.disabled_delta_pct` (fresh disabled-path run vs this anchor) at
/// +2%.
const PR3_BASELINE_WARM_ENGINE_NS: u128 = 2_757_343;

/// Shape the emitted JSON is checked against before it is written: the
/// bench re-parses its own output so CI can trust the committed artifact.
#[derive(Deserialize)]
struct CheckFile {
    quick: bool,
    rows: Vec<CheckRow>,
    obs: CheckObs,
}

#[derive(Deserialize)]
struct CheckObs {
    disabled_delta_pct: f64,
    enabled_overhead_pct: f64,
}

#[derive(Deserialize)]
struct CheckRow {
    apps: u64,
    options: u64,
    warm_speedup: f64,
}

/// One benched configuration plus its measurements.
struct Row {
    apps: usize,
    options: usize,
    kinds: usize,
    cold_engine_ns: u128,
    cold_reference_ns: u128,
    warm_ticks: usize,
    warm_engine_ns: u128,
    warm_reference_ns: u128,
    memo_hits: u64,
    certified: u64,
    full: u64,
}

impl Row {
    fn warm_speedup(&self) -> f64 {
        self.warm_reference_ns as f64 / (self.warm_engine_ns as f64).max(1.0)
    }
}

/// Deterministic congested instance: cheaper operating points demand more
/// cores (the classic MMKP shape), so the per-app minima oversubscribe
/// capacity and the solver has to trade cost against congestion.
fn requests(apps: usize, options: usize, kinds: usize, shape: &ErvShape) -> Vec<AllocRequest> {
    (0..apps)
        .map(|a| AllocRequest {
            app: AppId(a as u64 + 1),
            options: (0..options)
                .map(|o| {
                    let mut flat = vec![0u32; kinds];
                    flat[a % kinds] = (options - o) as u32;
                    flat[(a + o) % kinds] += ((a * 5 + o * 3) % 2) as u32;
                    AllocOption {
                        op: OpId(o),
                        cost: 1.0 + (o * 5) as f64 + ((a * 7 + o * 13) % 9) as f64 * 0.1,
                        erv: ExtResourceVector::from_flat(shape, &flat).expect("fits shape"),
                    }
                })
                .collect(),
        })
        .collect()
}

fn capacity_for(apps: usize, kinds: usize) -> ResourceVector {
    ResourceVector::new(vec![(apps * 2) as u32; kinds])
}

/// The RM-style tick schedule: 4 distinct instances (initial, drifted,
/// departed, drifted-again), each followed by a run of unchanged ticks.
fn tick_schedule(reqs: &[AllocRequest], ticks: usize) -> Vec<Vec<AllocRequest>> {
    let mut drifted = reqs.to_vec();
    for o in &mut drifted[0].options {
        o.cost *= 1.0 + 5e-4;
    }
    let mut departed = drifted.clone();
    departed.pop();
    let phases: [&[AllocRequest]; 4] = [reqs, &drifted, &departed, &drifted];
    (0..ticks)
        .map(|t| phases[(t * phases.len()) / ticks].to_vec())
        .collect()
}

/// Median of `reps` timed runs of `f`, in nanoseconds.
fn median_ns(reps: usize, mut f: impl FnMut()) -> u128 {
    f(); // warm-up
    let mut samples: Vec<u128> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn bench_config(apps: usize, options: usize, kinds: usize, reps: usize) -> Row {
    let shape = ErvShape::new(vec![1; kinds]);
    let reqs = requests(apps, options, kinds, &shape);
    let capacity = capacity_for(apps, kinds);

    let cold_engine_ns = median_ns(reps, || {
        black_box(select(&reqs, &capacity, SolverKind::Lagrangian, None)).ok();
    });
    let cold_reference_ns = median_ns(reps, || {
        black_box(reference::select(&reqs, &capacity, SolverKind::Lagrangian)).ok();
    });

    let warm_ticks = 32;
    let ticks = tick_schedule(&reqs, warm_ticks);
    let mut counters = (0u64, 0u64, 0u64);
    let warm_engine_ns = median_ns(reps, || {
        let mut warm = WarmStart::new();
        for tick in &ticks {
            black_box(select(
                tick,
                &capacity,
                SolverKind::Lagrangian,
                Some(&mut warm),
            ))
            .ok();
        }
        counters = (warm.memo_hits(), warm.certified_exits(), warm.full_solves());
    });
    let warm_reference_ns = median_ns(reps, || {
        for tick in &ticks {
            black_box(reference::select(tick, &capacity, SolverKind::Lagrangian)).ok();
        }
    });

    Row {
        apps,
        options,
        kinds,
        cold_engine_ns,
        cold_reference_ns,
        warm_ticks,
        warm_engine_ns,
        warm_reference_ns,
        memo_hits: counters.0,
        certified: counters.1,
        full: counters.2,
    }
}

/// Telemetry overhead on the headline warm-tick workload: the same
/// 32-tick sequence timed with instrumentation disabled (the default:
/// every callsite is one relaxed atomic load) and with the global
/// collector enabled.
struct ObsRow {
    apps: usize,
    options: usize,
    kinds: usize,
    disabled_ns: u128,
    enabled_ns: u128,
}

impl ObsRow {
    /// Signed drift of the disabled path vs the PR 3 anchor, in percent.
    fn disabled_delta_pct(&self) -> f64 {
        (self.disabled_ns as f64 - PR3_BASELINE_WARM_ENGINE_NS as f64)
            / PR3_BASELINE_WARM_ENGINE_NS as f64
            * 100.0
    }

    /// Cost of turning tracing on, in percent of the disabled run.
    fn enabled_overhead_pct(&self) -> f64 {
        (self.enabled_ns as f64 - self.disabled_ns as f64) / (self.disabled_ns as f64).max(1.0)
            * 100.0
    }
}

fn bench_obs_overhead(reps: usize) -> ObsRow {
    let (apps, options, kinds) = (32, 16, 3);
    let shape = ErvShape::new(vec![1; kinds]);
    let reqs = requests(apps, options, kinds, &shape);
    let capacity = capacity_for(apps, kinds);
    let ticks = tick_schedule(&reqs, 32);
    let mut warm_run = || {
        let mut warm = WarmStart::new();
        for tick in &ticks {
            black_box(select(
                tick,
                &capacity,
                SolverKind::Lagrangian,
                Some(&mut warm),
            ))
            .ok();
        }
    };
    assert!(
        !harp_obs::enabled(),
        "obs A/B needs a cold start: tracing already on"
    );
    // The effect being measured is a few percent of a ~2.5 ms workload, so
    // this A/B uses a much larger sample than the sweep rows.
    let reps = reps.max(5) * 5;
    let disabled_ns = median_ns(reps, &mut warm_run);
    harp_obs::enable_global();
    let enabled_ns = median_ns(reps, &mut warm_run);
    harp_obs::disable_global();
    harp_obs::reset_global();
    ObsRow {
        apps,
        options,
        kinds,
        disabled_ns,
        enabled_ns,
    }
}

fn render_json(quick: bool, rows: &[Row], obs: &ObsRow) -> String {
    let mut out = String::new();
    out.push_str(&format!("{{\n  \"quick\": {quick},\n  \"rows\": [\n"));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"apps\": {}, \"options\": {}, \"kinds\": {}, \
             \"cold_engine_ns\": {}, \"cold_reference_ns\": {}, \
             \"warm_ticks\": {}, \"warm_engine_ns\": {}, \"warm_reference_ns\": {}, \
             \"warm_speedup\": {:.3}, \
             \"memo_hits\": {}, \"certified\": {}, \"full\": {}}}{}\n",
            r.apps,
            r.options,
            r.kinds,
            r.cold_engine_ns,
            r.cold_reference_ns,
            r.warm_ticks,
            r.warm_engine_ns,
            r.warm_reference_ns,
            r.warm_speedup(),
            r.memo_hits,
            r.certified,
            r.full,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"obs\": {{\"apps\": {}, \"options\": {}, \"kinds\": {}, \
         \"baseline_pr3_warm_engine_ns\": {PR3_BASELINE_WARM_ENGINE_NS}, \
         \"disabled_warm_engine_ns\": {}, \"enabled_warm_engine_ns\": {}, \
         \"disabled_delta_pct\": {:.3}, \"enabled_overhead_pct\": {:.3}}}\n",
        obs.apps,
        obs.options,
        obs.kinds,
        obs.disabled_ns,
        obs.enabled_ns,
        obs.disabled_delta_pct(),
        obs.enabled_overhead_pct(),
    ));
    out.push_str("}\n");
    out
}

fn criterion_display(c: &mut Criterion) {
    let kinds = 3;
    let shape = ErvShape::new(vec![1; kinds]);
    let reqs = requests(16, 8, kinds, &shape);
    let capacity = capacity_for(16, kinds);
    let ticks = tick_schedule(&reqs, 32);
    let mut group = c.benchmark_group("solver");
    group.bench_function("cold_engine_16x8x3", |b| {
        b.iter(|| select(black_box(&reqs), &capacity, SolverKind::Lagrangian, None))
    });
    group.bench_function("cold_reference_16x8x3", |b| {
        b.iter(|| reference::select(black_box(&reqs), &capacity, SolverKind::Lagrangian))
    });
    group.bench_function("warm_32ticks_16x8x3", |b| {
        b.iter(|| {
            let mut warm = WarmStart::new();
            for tick in &ticks {
                select(
                    black_box(tick),
                    &capacity,
                    SolverKind::Lagrangian,
                    Some(&mut warm),
                )
                .ok();
            }
            warm.memo_hits()
        })
    });
    group.finish();
}

fn main() {
    let quick = std::env::var("HARP_SOLVER_BENCH_QUICK").is_ok();
    let (configs, reps): (&[(usize, usize, usize)], usize) = if quick {
        (&[(4, 4, 2), (16, 8, 3)], 3)
    } else {
        (
            &[(4, 4, 2), (8, 8, 2), (16, 8, 3), (16, 12, 4), (32, 16, 3)],
            9,
        )
    };

    if !quick {
        criterion_display(&mut Criterion::default());
    }

    let rows: Vec<Row> = configs
        .iter()
        .map(|&(apps, options, kinds)| {
            let row = bench_config(apps, options, kinds, reps);
            println!(
                "sweep {apps}x{options}x{kinds}: cold engine {} ns vs reference {} ns; \
                 warm {} ticks {} ns vs reference {} ns ({:.1}x, {} memo / {} certified / {} full)",
                row.cold_engine_ns,
                row.cold_reference_ns,
                row.warm_ticks,
                row.warm_engine_ns,
                row.warm_reference_ns,
                row.warm_speedup(),
                row.memo_hits,
                row.certified,
                row.full,
            );
            row
        })
        .collect();

    let obs = bench_obs_overhead(reps);
    println!(
        "obs overhead {}x{}x{}: disabled {} ns (PR3 baseline {} ns, {:+.2}%), \
         enabled {} ns ({:+.2}%)",
        obs.apps,
        obs.options,
        obs.kinds,
        obs.disabled_ns,
        PR3_BASELINE_WARM_ENGINE_NS,
        obs.disabled_delta_pct(),
        obs.enabled_ns,
        obs.enabled_overhead_pct(),
    );

    let json = render_json(quick, &rows, &obs);
    let parsed: CheckFile = match serde_json::from_str(&json) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("solver bench: generated JSON does not parse: {e}");
            std::process::exit(1);
        }
    };
    if parsed.quick != quick || parsed.rows.len() != rows.len() {
        eprintln!("solver bench: generated JSON does not round-trip");
        std::process::exit(1);
    }
    if parsed.obs.disabled_delta_pct > 2.0 {
        eprintln!(
            "solver bench: WARNING: disabled-path drift {:+.2}% exceeds the +2% gate \
             (obs overhead or machine noise)",
            parsed.obs.disabled_delta_pct
        );
    }
    if parsed.obs.enabled_overhead_pct > 50.0 {
        eprintln!(
            "solver bench: WARNING: enabled tracing costs {:+.2}% on the headline workload",
            parsed.obs.enabled_overhead_pct
        );
    }
    for r in &parsed.rows {
        if r.apps >= 16 && r.options >= 8 && r.warm_speedup < 3.0 {
            eprintln!(
                "solver bench: WARNING: warm speedup {:.2}x below 3x at {}x{}",
                r.warm_speedup, r.apps, r.options
            );
        }
    }
    let path = std::env::var("HARP_SOLVER_BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solver.json").to_string()
    });
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("solver bench: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");
}
