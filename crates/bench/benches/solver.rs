//! Solver-engine microbenchmark: sweeps apps × options × kinds and
//! compares the incremental MMKP engine (cold and warm-started) against
//! the frozen reference solver, emitting `BENCH_solver.json`.
//!
//! Two measurements per configuration:
//!
//! * **cold** — a single one-shot solve, engine vs reference, on a
//!   congested instance (cheap options oversubscribe capacity so the
//!   subgradient schedule actually runs).
//! * **warm ticks** — a 32-tick RM-style sequence (arrival burst, cost
//!   drift, departure, re-arrival, with unchanged instances in between).
//!   The engine threads one [`WarmStart`] through all ticks; the
//!   reference re-solves every tick from scratch. `warm_speedup` is the
//!   reference total divided by the engine total.
//!
//! Run with `cargo bench -p harp-bench --bench solver`. Environment:
//!
//! * `HARP_SOLVER_BENCH_QUICK=1` — smoke mode: small configs, few reps
//!   (used by `ci.sh`; the compat criterion harness has no CLI parsing,
//!   so quick mode is an env var rather than a flag).
//! * `HARP_SOLVER_BENCH_JSON=path` — output path (defaults to the repo
//!   root `BENCH_solver.json`).
//!
//! The binary re-parses whatever it wrote and exits non-zero if the
//! JSON is malformed, so CI can gate on the artifact.

use criterion::{black_box, Criterion};
use harp_alloc::{
    reference, select, select_opts, AllocOption, AllocRequest, Selection, SolveOpts, SolverKind,
    WarmStart,
};
use harp_types::{AppId, ErvShape, ExtResourceVector, OpId, ResourceVector};
use serde::Deserialize;
use std::time::Instant;

/// The committed headline (apps=32 × options=16 × kinds=3) warm-engine
/// time, re-anchored in PR 6 on the SoA lane engine (the PR 3 anchor of
/// 2 757 343 ns was measured on a different machine and made the signed
/// drift gate read −26%, i.e. it gated machine identity rather than obs
/// overhead), and again in PR 9 when the A/B workload grew a per-tick
/// energy-ledger charge (32-session largest-remainder apportionment, the
/// tick-path cost the RM now pays). The telemetry layer on top of the
/// solver must not tax the disabled path: `bench_artifacts.rs` gates the
/// committed `obs.disabled_delta_pct` (fresh disabled-path run vs this
/// anchor) at +2%. Re-anchor (and note it in EXPERIMENTS.md) whenever
/// the solver hot path legitimately changes.
const OBS_ANCHOR_WARM_ENGINE_NS: u128 = 1_551_432;

/// Shape the emitted JSON is checked against before it is written: the
/// bench re-parses its own output so CI can trust the committed artifact.
#[derive(Deserialize)]
struct CheckFile {
    quick: bool,
    host_threads: u64,
    rows: Vec<CheckRow>,
    par: Vec<CheckPar>,
    obs: CheckObs,
}

#[derive(Deserialize)]
struct CheckPar {
    apps: u64,
    speedup: f64,
    deterministic: bool,
}

#[derive(Deserialize)]
struct CheckObs {
    disabled_delta_pct: f64,
    enabled_overhead_pct: f64,
}

#[derive(Deserialize)]
struct CheckRow {
    apps: u64,
    options: u64,
    warm_speedup: f64,
}

/// One benched configuration plus its measurements.
struct Row {
    apps: usize,
    options: usize,
    kinds: usize,
    cold_engine_ns: u128,
    cold_reference_ns: u128,
    warm_ticks: usize,
    warm_engine_ns: u128,
    warm_reference_ns: u128,
    memo_hits: u64,
    certified: u64,
    full: u64,
}

impl Row {
    fn warm_speedup(&self) -> f64 {
        self.warm_reference_ns as f64 / (self.warm_engine_ns as f64).max(1.0)
    }
}

/// Deterministic congested instance: cheaper operating points demand more
/// cores (the classic MMKP shape), so the per-app minima oversubscribe
/// capacity and the solver has to trade cost against congestion.
fn requests(apps: usize, options: usize, kinds: usize, shape: &ErvShape) -> Vec<AllocRequest> {
    (0..apps)
        .map(|a| AllocRequest {
            app: AppId(a as u64 + 1),
            options: (0..options)
                .map(|o| {
                    let mut flat = vec![0u32; kinds];
                    flat[a % kinds] = (options - o) as u32;
                    flat[(a + o) % kinds] += ((a * 5 + o * 3) % 2) as u32;
                    AllocOption {
                        op: OpId(o),
                        cost: 1.0 + (o * 5) as f64 + ((a * 7 + o * 13) % 9) as f64 * 0.1,
                        erv: ExtResourceVector::from_flat(shape, &flat).expect("fits shape"),
                    }
                })
                .collect(),
        })
        .collect()
}

fn capacity_for(apps: usize, kinds: usize) -> ResourceVector {
    ResourceVector::new(vec![(apps * 2) as u32; kinds])
}

/// The RM-style tick schedule: 4 distinct instances (initial, drifted,
/// departed, drifted-again), each followed by a run of unchanged ticks.
fn tick_schedule(reqs: &[AllocRequest], ticks: usize) -> Vec<Vec<AllocRequest>> {
    let mut drifted = reqs.to_vec();
    for o in &mut drifted[0].options {
        o.cost *= 1.0 + 5e-4;
    }
    let mut departed = drifted.clone();
    departed.pop();
    let phases: [&[AllocRequest]; 4] = [reqs, &drifted, &departed, &drifted];
    (0..ticks)
        .map(|t| phases[(t * phases.len()) / ticks].to_vec())
        .collect()
}

/// Median of `reps` timed runs of `f`, in nanoseconds.
fn median_ns(reps: usize, mut f: impl FnMut()) -> u128 {
    f(); // warm-up
    let mut samples: Vec<u128> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn bench_config(apps: usize, options: usize, kinds: usize, reps: usize) -> Row {
    let shape = ErvShape::new(vec![1; kinds]);
    let reqs = requests(apps, options, kinds, &shape);
    let capacity = capacity_for(apps, kinds);

    let cold_engine_ns = median_ns(reps, || {
        black_box(select(&reqs, &capacity, SolverKind::Lagrangian, None)).ok();
    });
    let cold_reference_ns = median_ns(reps, || {
        black_box(reference::select(&reqs, &capacity, SolverKind::Lagrangian)).ok();
    });

    let warm_ticks = 32;
    let ticks = tick_schedule(&reqs, warm_ticks);
    let mut counters = (0u64, 0u64, 0u64);
    let warm_engine_ns = median_ns(reps, || {
        let mut warm = WarmStart::new();
        for tick in &ticks {
            black_box(select(
                tick,
                &capacity,
                SolverKind::Lagrangian,
                Some(&mut warm),
            ))
            .ok();
        }
        counters = (warm.memo_hits(), warm.certified_exits(), warm.full_solves());
    });
    let warm_reference_ns = median_ns(reps, || {
        for tick in &ticks {
            black_box(reference::select(tick, &capacity, SolverKind::Lagrangian)).ok();
        }
    });

    Row {
        apps,
        options,
        kinds,
        cold_engine_ns,
        cold_reference_ns,
        warm_ticks,
        warm_engine_ns,
        warm_reference_ns,
        memo_hits: counters.0,
        certified: counters.1,
        full: counters.2,
    }
}

/// One large-population tier of the parallel λ-search: a cold solve timed
/// serial (`threads = 1`) and on the chunk pool, plus a bit-identity
/// check across thread counts.
struct ParRow {
    apps: usize,
    options: usize,
    kinds: usize,
    threads: u32,
    serial_ns: u128,
    parallel_ns: u128,
    deterministic: bool,
}

impl ParRow {
    fn speedup(&self) -> f64 {
        self.serial_ns as f64 / (self.parallel_ns as f64).max(1.0)
    }
}

/// Compares two selections bit-for-bit: picks, total-cost bits, work
/// bits and outcome. Anything weaker would hide a reduction-order bug.
fn bit_identical(a: &Selection, b: &Selection) -> bool {
    a.picks == b.picks
        && a.cost.to_bits() == b.cost.to_bits()
        && a.work.to_bits() == b.work.to_bits()
        && a.outcome == b.outcome
}

fn bench_par(apps: usize, options: usize, kinds: usize, threads: u32, reps: usize) -> ParRow {
    let shape = ErvShape::new(vec![1; kinds]);
    let reqs = requests(apps, options, kinds, &shape);
    let capacity = capacity_for(apps, kinds);
    let solve = |threads: u32| {
        select_opts(
            &reqs,
            &capacity,
            SolverKind::Lagrangian,
            None,
            SolveOpts::threads(threads),
        )
        .expect("bench instance solves")
    };

    // Bit-identity across thread counts (cold solves), plus a short
    // warm-started tick sequence at 1 vs `threads` workers — the warm
    // path exercises repair/upgrade swap scoring, which reduces
    // cross-chunk.
    let serial_sel = solve(1);
    let mut deterministic =
        bit_identical(&serial_sel, &solve(2)) && bit_identical(&serial_sel, &solve(threads));
    let ticks = tick_schedule(&reqs, 8);
    let warm_seq = |threads: u32| -> (Vec<Selection>, (u64, u64, u64)) {
        let mut warm = WarmStart::new();
        let sels = ticks
            .iter()
            .map(|tick| {
                select_opts(
                    tick,
                    &capacity,
                    SolverKind::Lagrangian,
                    Some(&mut warm),
                    SolveOpts::threads(threads),
                )
                .expect("bench tick solves")
            })
            .collect();
        (
            sels,
            (warm.memo_hits(), warm.certified_exits(), warm.full_solves()),
        )
    };
    let (ser_sels, ser_stats) = warm_seq(1);
    let (par_sels, par_stats) = warm_seq(threads);
    deterministic &= ser_stats == par_stats
        && ser_sels.len() == par_sels.len()
        && ser_sels
            .iter()
            .zip(&par_sels)
            .all(|(a, b)| bit_identical(a, b));

    let serial_ns = median_ns(reps, || {
        black_box(solve(1));
    });
    let parallel_ns = median_ns(reps, || {
        black_box(solve(threads));
    });
    ParRow {
        apps,
        options,
        kinds,
        threads,
        serial_ns,
        parallel_ns,
        deterministic,
    }
}

/// Telemetry overhead on the headline warm-tick workload: the same
/// 32-tick sequence timed with instrumentation disabled (the default:
/// every callsite is one relaxed atomic load) and with the global
/// collector enabled.
struct ObsRow {
    apps: usize,
    options: usize,
    kinds: usize,
    disabled_ns: u128,
    enabled_ns: u128,
}

impl ObsRow {
    /// Signed drift of the disabled path vs the committed anchor, in
    /// percent.
    fn disabled_delta_pct(&self) -> f64 {
        (self.disabled_ns as f64 - OBS_ANCHOR_WARM_ENGINE_NS as f64)
            / OBS_ANCHOR_WARM_ENGINE_NS as f64
            * 100.0
    }

    /// Cost of turning tracing on, in percent of the disabled run.
    fn enabled_overhead_pct(&self) -> f64 {
        (self.enabled_ns as f64 - self.disabled_ns as f64) / (self.disabled_ns as f64).max(1.0)
            * 100.0
    }
}

fn bench_obs_overhead(reps: usize) -> ObsRow {
    let (apps, options, kinds) = (32, 16, 3);
    let shape = ErvShape::new(vec![1; kinds]);
    let reqs = requests(apps, options, kinds, &shape);
    let capacity = capacity_for(apps, kinds);
    let ticks = tick_schedule(&reqs, 32);
    // Attribution weights as the RM tick computes them (Σ_k γ_k·ΔT_k):
    // one strictly positive weight per headline app, so every ledger
    // charge runs the full 32-way largest-remainder apportionment.
    let weights: Vec<(AppId, f64)> = (0..apps)
        .map(|a| (AppId(a as u64), 1.0 + (a % 7) as f64 * 0.25))
        .collect();
    let mut ledger = harp_energy::EnergyLedger::new();
    let mut warm_run = || {
        let mut warm = WarmStart::new();
        for tick in &ticks {
            black_box(select(
                tick,
                &capacity,
                SolverKind::Lagrangian,
                Some(&mut warm),
            ))
            .ok();
            // The ledger rides the same tick path in the RM, so the A/B
            // charges it too — its integer apportionment must stay cheap
            // whether or not tracing is on.
            black_box(ledger.charge(black_box(0.0031), &weights));
        }
    };
    assert!(
        !harp_obs::enabled(),
        "obs A/B needs a cold start: tracing already on"
    );
    // The effect being measured is a few percent of a ~2 ms workload, so
    // this A/B uses a much larger sample than the sweep rows, plus extra
    // warm-up passes so neither side pays first-touch page faults or a
    // cold branch predictor.
    let reps = reps.max(5) * 5;
    for _ in 0..3 {
        warm_run();
    }
    let disabled_ns = median_ns(reps, &mut warm_run);
    harp_obs::enable_global();
    let enabled_ns = median_ns(reps, &mut warm_run);
    harp_obs::disable_global();
    harp_obs::reset_global();
    assert_eq!(
        ledger.conservation_error(),
        0,
        "A/B ledger stopped conserving"
    );
    ObsRow {
        apps,
        options,
        kinds,
        disabled_ns,
        enabled_ns,
    }
}

fn render_json(
    quick: bool,
    host_threads: usize,
    rows: &[Row],
    par: &[ParRow],
    obs: &ObsRow,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"quick\": {quick},\n  \"host_threads\": {host_threads},\n  \"rows\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"apps\": {}, \"options\": {}, \"kinds\": {}, \
             \"cold_engine_ns\": {}, \"cold_reference_ns\": {}, \
             \"warm_ticks\": {}, \"warm_engine_ns\": {}, \"warm_reference_ns\": {}, \
             \"warm_speedup\": {:.3}, \
             \"memo_hits\": {}, \"certified\": {}, \"full\": {}}}{}\n",
            r.apps,
            r.options,
            r.kinds,
            r.cold_engine_ns,
            r.cold_reference_ns,
            r.warm_ticks,
            r.warm_engine_ns,
            r.warm_reference_ns,
            r.warm_speedup(),
            r.memo_hits,
            r.certified,
            r.full,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"par\": [\n");
    for (i, p) in par.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"apps\": {}, \"options\": {}, \"kinds\": {}, \"threads\": {}, \
             \"serial_ns\": {}, \"parallel_ns\": {}, \"speedup\": {:.3}, \
             \"deterministic\": {}}}{}\n",
            p.apps,
            p.options,
            p.kinds,
            p.threads,
            p.serial_ns,
            p.parallel_ns,
            p.speedup(),
            p.deterministic,
            if i + 1 == par.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"obs\": {{\"apps\": {}, \"options\": {}, \"kinds\": {}, \
         \"anchor_warm_engine_ns\": {OBS_ANCHOR_WARM_ENGINE_NS}, \
         \"disabled_warm_engine_ns\": {}, \"enabled_warm_engine_ns\": {}, \
         \"disabled_delta_pct\": {:.3}, \"enabled_overhead_pct\": {:.3}}}\n",
        obs.apps,
        obs.options,
        obs.kinds,
        obs.disabled_ns,
        obs.enabled_ns,
        obs.disabled_delta_pct(),
        obs.enabled_overhead_pct(),
    ));
    out.push_str("}\n");
    out
}

fn criterion_display(c: &mut Criterion) {
    let kinds = 3;
    let shape = ErvShape::new(vec![1; kinds]);
    let reqs = requests(16, 8, kinds, &shape);
    let capacity = capacity_for(16, kinds);
    let ticks = tick_schedule(&reqs, 32);
    let mut group = c.benchmark_group("solver");
    group.bench_function("cold_engine_16x8x3", |b| {
        b.iter(|| select(black_box(&reqs), &capacity, SolverKind::Lagrangian, None))
    });
    group.bench_function("cold_reference_16x8x3", |b| {
        b.iter(|| reference::select(black_box(&reqs), &capacity, SolverKind::Lagrangian))
    });
    group.bench_function("warm_32ticks_16x8x3", |b| {
        b.iter(|| {
            let mut warm = WarmStart::new();
            for tick in &ticks {
                select(
                    black_box(tick),
                    &capacity,
                    SolverKind::Lagrangian,
                    Some(&mut warm),
                )
                .ok();
            }
            warm.memo_hits()
        })
    });
    group.finish();
}

fn main() {
    let quick = std::env::var("HARP_SOLVER_BENCH_QUICK").is_ok();
    let (configs, reps): (&[(usize, usize, usize)], usize) = if quick {
        (&[(4, 4, 2), (16, 8, 3)], 3)
    } else {
        (
            &[(4, 4, 2), (8, 8, 2), (16, 8, 3), (16, 12, 4), (32, 16, 3)],
            9,
        )
    };

    if !quick {
        criterion_display(&mut Criterion::default());
    }

    let rows: Vec<Row> = configs
        .iter()
        .map(|&(apps, options, kinds)| {
            let row = bench_config(apps, options, kinds, reps);
            println!(
                "sweep {apps}x{options}x{kinds}: cold engine {} ns vs reference {} ns; \
                 warm {} ticks {} ns vs reference {} ns ({:.1}x, {} memo / {} certified / {} full)",
                row.cold_engine_ns,
                row.cold_reference_ns,
                row.warm_ticks,
                row.warm_engine_ns,
                row.warm_reference_ns,
                row.warm_speedup(),
                row.memo_hits,
                row.certified,
                row.full,
            );
            row
        })
        .collect();

    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Parallel λ-search tiers: serial (threads = 1) vs the chunk pool at
    // the host's width (floor 2, so the pool path runs even on a
    // single-CPU host — there the row documents dispatch overhead and the
    // determinism bit rather than a speedup).
    let pool_threads = host_threads.max(2) as u32;
    let (par_configs, par_reps): (&[(usize, usize, usize)], usize) = if quick {
        (&[(256, 8, 3)], 1)
    } else {
        (&[(256, 8, 3), (1024, 8, 3), (4096, 8, 3)], 5)
    };
    let par: Vec<ParRow> = par_configs
        .iter()
        .map(|&(apps, options, kinds)| {
            let row = bench_par(apps, options, kinds, pool_threads, par_reps);
            println!(
                "par {apps}x{options}x{kinds}: serial {} ns vs {} threads {} ns \
                 ({:.2}x, deterministic: {})",
                row.serial_ns,
                row.threads,
                row.parallel_ns,
                row.speedup(),
                row.deterministic,
            );
            row
        })
        .collect();
    if let Some(bad) = par.iter().find(|p| !p.deterministic) {
        eprintln!(
            "solver bench: FATAL: parallel solve at {}x{}x{} is not bit-identical to serial",
            bad.apps, bad.options, bad.kinds
        );
        std::process::exit(1);
    }

    let obs = bench_obs_overhead(reps);
    println!(
        "obs overhead {}x{}x{}: disabled {} ns (anchor {} ns, {:+.2}%), \
         enabled {} ns ({:+.2}%)",
        obs.apps,
        obs.options,
        obs.kinds,
        obs.disabled_ns,
        OBS_ANCHOR_WARM_ENGINE_NS,
        obs.disabled_delta_pct(),
        obs.enabled_ns,
        obs.enabled_overhead_pct(),
    );

    let json = render_json(quick, host_threads, &rows, &par, &obs);
    let parsed: CheckFile = match serde_json::from_str(&json) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("solver bench: generated JSON does not parse: {e}");
            std::process::exit(1);
        }
    };
    if parsed.quick != quick
        || parsed.rows.len() != rows.len()
        || parsed.par.len() != par.len()
        || parsed.host_threads != host_threads as u64
    {
        eprintln!("solver bench: generated JSON does not round-trip");
        std::process::exit(1);
    }
    for p in &parsed.par {
        // Mirrors the committed-artifact gate in bench_artifacts.rs: a
        // real speedup is only demanded where the host can express one.
        if host_threads >= 4 && p.apps >= 4096 && p.speedup < 2.0 {
            eprintln!(
                "solver bench: WARNING: parallel speedup {:.2}x below 2x at {} apps \
                 on a {host_threads}-thread host",
                p.speedup, p.apps
            );
        }
        assert!(p.deterministic, "checked above");
    }
    if parsed.obs.disabled_delta_pct > 2.0 {
        eprintln!(
            "solver bench: WARNING: disabled-path drift {:+.2}% exceeds the +2% gate \
             (obs overhead or machine noise)",
            parsed.obs.disabled_delta_pct
        );
    }
    if parsed.obs.enabled_overhead_pct > 50.0 {
        eprintln!(
            "solver bench: WARNING: enabled tracing costs {:+.2}% on the headline workload",
            parsed.obs.enabled_overhead_pct
        );
    }
    for r in &parsed.rows {
        if r.apps >= 16 && r.options >= 8 && r.warm_speedup < 3.0 {
            eprintln!(
                "solver bench: WARNING: warm speedup {:.2}x below 3x at {}x{}",
                r.warm_speedup, r.apps, r.options
            );
        }
    }
    let path = std::env::var("HARP_SOLVER_BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solver.json").to_string()
    });
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("solver bench: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");
}
