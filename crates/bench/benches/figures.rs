//! One benchmark per paper table and figure.
//!
//! Each group first prints the (reduced) reproduced table once — so
//! `cargo bench` regenerates every result — and then times one
//! representative unit of the experiment with Criterion. Run the
//! `harp-bench` binaries (`fig6_intel` etc.) for the full-scale tables.

use criterion::{criterion_group, criterion_main, Criterion};
use harp_bench::runner::{run_scenario, ManagerKind, RunOptions};
use harp_bench::{dse, fig1, fig5, fig6, fig7, fig8, tables};
use harp_types::ExtResourceVector;
use harp_workload::{benchmark, scenarios, Platform, Scenario};
use std::hint::black_box;
use std::sync::Once;

static PRINT: Once = Once::new();

fn print_reduced_tables() {
    PRINT.call_once(|| {
        let outputs = [
            fig1::run(600.0).expect("fig1"),
            fig5::run(&fig5::Fig5Options::reduced()).expect("fig5"),
            fig6::run(&fig6::Fig6Options::reduced()).expect("fig6"),
            fig7::run(&fig7::Fig7Options::reduced()).expect("fig7"),
            fig8::run(&fig8::Fig8Options::reduced()).expect("fig8"),
            tables::governor_table(&tables::GovernorOptions::reduced()).expect("governor"),
            tables::overhead_table(
                &scenarios::intel_single()[..2],
                &scenarios::intel_multi()[..1],
                1,
            )
            .expect("overhead"),
            tables::attribution_table(&scenarios::intel_multi()[..2]).expect("attribution"),
        ];
        for o in outputs {
            println!("\n{o}");
        }
    });
}

fn bench_fig1_unit(c: &mut Criterion) {
    print_reduced_tables();
    let spec = benchmark(Platform::RaptorLake, "mg").unwrap();
    let shape = Platform::RaptorLake.hardware().erv_shape();
    let erv = ExtResourceVector::from_flat(&shape, &[0, 0, 8]).unwrap();
    let mut g = c.benchmark_group("fig1_sweep");
    g.sample_size(20);
    g.bench_function("measure_one_configuration", |b| {
        b.iter(|| {
            dse::measure_config(Platform::RaptorLake, black_box(&spec), &erv, 600.0, 1).unwrap()
        })
    });
    g.finish();
}

fn bench_fig5_unit(c: &mut Criterion) {
    print_reduced_tables();
    let spec = benchmark(Platform::RaptorLake, "ft").unwrap();
    let sweep = dse::sweep_app(Platform::RaptorLake, &spec, 600.0, 5).unwrap();
    let mut g = c.benchmark_group("fig5_models");
    g.sample_size(10);
    g.bench_function("poly2_cell_one_app", |b| {
        b.iter(|| {
            // One (model, size, seed) evaluation over a pre-measured sweep.
            let xs: Vec<Vec<f64>> = sweep.iter().take(20).map(|p| p.erv.features()).collect();
            let ys: Vec<f64> = sweep.iter().take(20).map(|p| p.nfc.utility).collect();
            let mut m = harp_model::PolynomialRegression::new(2);
            harp_model::Regressor::fit(&mut m, &xs, &ys).unwrap();
            sweep
                .iter()
                .map(|p| harp_model::Regressor::predict(&m, &p.erv.features()))
                .sum::<f64>()
        })
    });
    g.finish();
}

fn bench_fig6_unit(c: &mut Criterion) {
    print_reduced_tables();
    let sc = Scenario::of(Platform::RaptorLake, &["mg"]);
    let mut g = c.benchmark_group("fig6_intel");
    g.sample_size(10);
    g.bench_function("one_scenario_under_cfs", |b| {
        b.iter(|| {
            run_scenario(
                Platform::RaptorLake,
                black_box(&sc),
                ManagerKind::Cfs,
                &RunOptions::default(),
            )
            .unwrap()
        })
    });
    g.finish();
}

fn bench_fig7_unit(c: &mut Criterion) {
    print_reduced_tables();
    let sc = Scenario::of(Platform::Odroid, &["mg"]);
    let mut g = c.benchmark_group("fig7_odroid");
    g.sample_size(10);
    g.bench_function("one_scenario_under_eas", |b| {
        b.iter(|| {
            run_scenario(
                Platform::Odroid,
                black_box(&sc),
                ManagerKind::Eas,
                &RunOptions::default(),
            )
            .unwrap()
        })
    });
    g.finish();
}

fn bench_fig8_unit(c: &mut Criterion) {
    print_reduced_tables();
    let mut g = c.benchmark_group("fig8_learning");
    g.sample_size(10);
    let opts = fig8::Fig8Options::reduced();
    let (sc, multi) = &opts.scenarios[0];
    g.bench_function("one_learning_study", |b| {
        b.iter(|| fig8::study_scenario(black_box(sc), *multi, &opts).unwrap())
    });
    g.finish();
}

fn bench_tables_unit(c: &mut Criterion) {
    print_reduced_tables();
    let mut g = c.benchmark_group("in_text_tables");
    g.sample_size(10);
    let multis = vec![scenarios::intel_multi()[0].clone()];
    g.bench_function("attribution_one_scenario", |b| {
        b.iter(|| tables::attribution_mape(black_box(&multis)).unwrap())
    });
    let singles = vec![Scenario::of(Platform::RaptorLake, &["primes"])];
    let overhead_multis = vec![Scenario::of(Platform::RaptorLake, &["is", "primes"])];
    g.bench_function("overhead_one_pair", |b| {
        b.iter(|| tables::overhead(black_box(&singles), &overhead_multis, 1).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig1_unit,
    bench_fig5_unit,
    bench_fig6_unit,
    bench_fig7_unit,
    bench_fig8_unit,
    bench_tables_unit
);
criterion_main!(benches);
