//! Figure 1: performance and energy of `ep.C` and `mg.C` across
//! configurations on the Raptor Lake machine, with the Pareto-optimal
//! points (objectives: execution time, energy, P-cores, E-cores — all
//! minimized).

use crate::dse::{sweep_app, SweepPoint};
use harp_types::pareto::pareto_front_indices;
use harp_types::Result;
use harp_workload::{benchmark, Platform};

/// One row of the Fig. 1 dataset.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// The measured point.
    pub point: SweepPoint,
    /// Whether it is Pareto-optimal under the paper's four objectives.
    pub pareto: bool,
}

/// The Fig. 1 dataset of one application.
#[derive(Debug, Clone)]
pub struct Fig1Data {
    /// Application name.
    pub app: String,
    /// All measured configurations.
    pub rows: Vec<Fig1Row>,
}

impl Fig1Data {
    /// The Pareto-optimal rows.
    pub fn front(&self) -> Vec<&Fig1Row> {
        self.rows.iter().filter(|r| r.pareto).collect()
    }
}

/// Sweeps one application and marks its Pareto front.
///
/// # Errors
///
/// Propagates simulation errors or an unknown benchmark name.
pub fn sweep(app: &str, horizon_s: f64) -> Result<Fig1Data> {
    let spec = benchmark(Platform::RaptorLake, app).ok_or_else(|| {
        harp_types::HarpError::not_found(format!("benchmark '{app}' on Raptor Lake"))
    })?;
    let points = sweep_app(Platform::RaptorLake, &spec, horizon_s, 11)?;
    // Paper objectives: time, energy, #P-cores, #E-cores (all minimized).
    let objectives: Vec<Vec<f64>> = points
        .iter()
        .map(|p| {
            vec![
                p.time_s,
                p.energy_j,
                p.erv.cores_of_kind(0) as f64,
                p.erv.cores_of_kind(1) as f64,
            ]
        })
        .collect();
    let front: std::collections::HashSet<usize> =
        pareto_front_indices(&objectives).into_iter().collect();
    Ok(Fig1Data {
        app: app.to_string(),
        rows: points
            .into_iter()
            .enumerate()
            .map(|(i, point)| Fig1Row {
                point,
                pareto: front.contains(&i),
            })
            .collect(),
    })
}

/// Runs the full Fig. 1 experiment (`ep` and `mg`) and renders the paper's
/// data as a text table.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run(horizon_s: f64) -> Result<String> {
    let mut out = String::new();
    out.push_str("Figure 1: configuration sweeps on Intel Raptor Lake i9-13900K\n");
    out.push_str("(per configuration: execution time, energy; * = Pareto-optimal\n");
    out.push_str(" under {time, energy, #P-cores, #E-cores} minimization)\n\n");
    for app in ["ep", "mg"] {
        let data = sweep(app, horizon_s)?;
        out.push_str(&format!(
            "--- {}.C ---  ({} configurations, {} Pareto-optimal)\n",
            app,
            data.rows.len(),
            data.front().len()
        ));
        out.push_str("  ERV [P1,P2|E]     time[s]   energy[J]   util[G/s]  power[W]\n");
        for r in &data.rows {
            out.push_str(&format!(
                "  {}{:<14} {:8.2}  {:9.1}   {:8.2}  {:7.2}\n",
                if r.pareto { "*" } else { " " },
                r.point.erv.to_string(),
                r.point.time_s,
                r.point.energy_j,
                r.point.nfc.utility / 1e9,
                r.point.nfc.power,
            ));
        }
        out.push('\n');
    }
    Ok(out)
}

/// Checks the paper's qualitative claims on the sweep data; returns a list
/// of violated claims (empty = all hold).
pub fn check_claims(ep: &Fig1Data, mg: &Fig1Data) -> Vec<String> {
    let mut violations = Vec::new();
    // ep scales: the fastest configuration uses (nearly) the whole machine.
    let ep_fastest = ep
        .rows
        .iter()
        .min_by(|a, b| a.point.time_s.partial_cmp(&b.point.time_s).unwrap())
        .unwrap();
    if ep_fastest.point.erv.total_threads() < 24 {
        violations.push(format!(
            "ep's fastest config should use most of the machine, got {}",
            ep_fastest.point.erv
        ));
    }
    // mg flattens: its fastest config is at most ~35% faster than a
    // mid-size one, despite using far more resources.
    let mg_mid = mg
        .rows
        .iter()
        .filter(|r| (6..=10).contains(&r.point.erv.total_threads()))
        .min_by(|a, b| a.point.time_s.partial_cmp(&b.point.time_s).unwrap());
    let mg_fastest = mg
        .rows
        .iter()
        .min_by(|a, b| a.point.time_s.partial_cmp(&b.point.time_s).unwrap())
        .unwrap();
    if let Some(mid) = mg_mid {
        if mid.point.time_s > 1.5 * mg_fastest.point.time_s {
            violations.push(format!(
                "mg should be bandwidth-saturated: mid-size {}s vs best {}s",
                mid.point.time_s, mg_fastest.point.time_s
            ));
        }
    }
    // mg's minimum-energy configuration uses E-cores only.
    let mg_cheapest = mg
        .rows
        .iter()
        .min_by(|a, b| a.point.energy_j.partial_cmp(&b.point.energy_j).unwrap())
        .unwrap();
    if mg_cheapest.point.erv.cores_of_kind(0) > 0 {
        violations.push(format!(
            "mg's min-energy config should be E-core-only, got {}",
            mg_cheapest.point.erv
        ));
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_claims_hold_on_reduced_sweep() {
        let ep = sweep("ep", 600.0).unwrap();
        let mg = sweep("mg", 600.0).unwrap();
        assert!(!ep.front().is_empty());
        assert!(!mg.front().is_empty());
        let violations = check_claims(&ep, &mg);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
