//! Figure 5: regression-model comparison for runtime exploration (§5.2).
//!
//! For each of the evaluated applications, the paper pre-measures a
//! configuration grid on the Raptor Lake machine, trains each model
//! (polynomial degrees 1–3, a neural network, an SVM) on random subsets of
//! growing size (10 seeds), and reports: MAPE of the predicted IPS and
//! power, the Inverted Generational Distance between the predicted and
//! reference Pareto fronts, and the ratio of common front members.

use crate::dse::{sweep_app, SweepPoint};
use harp_model::{
    metrics::mape, MlpRegression, ModelKind, PolynomialRegression, Regressor, SvrRegression,
};
use harp_types::pareto::{common_ratio, igd, normalize_columns, pareto_front_indices};
use harp_types::Result;
use harp_workload::{suite, Platform};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Experiment options.
#[derive(Debug, Clone)]
pub struct Fig5Options {
    /// Number of applications from the Intel suite (paper: 15).
    pub apps: usize,
    /// Random seeds per (model, size) cell (paper: 10).
    pub seeds: u32,
    /// Training-set sizes to evaluate.
    pub train_sizes: Vec<usize>,
    /// Measurement horizon per configuration (simulated seconds).
    pub horizon_s: f64,
    /// Neural-network training epochs (smaller = faster experiment).
    pub nn_epochs: usize,
}

impl Default for Fig5Options {
    fn default() -> Self {
        Fig5Options {
            apps: 15,
            seeds: 10,
            train_sizes: vec![5, 10, 20, 40],
            horizon_s: 600.0,
            nn_epochs: 600,
        }
    }
}

impl Fig5Options {
    /// A reduced configuration for tests and micro-benchmarks.
    pub fn reduced() -> Self {
        Fig5Options {
            apps: 3,
            seeds: 2,
            train_sizes: vec![10, 25],
            horizon_s: 600.0,
            nn_epochs: 150,
        }
    }
}

/// One cell of the Fig. 5 result: a model at a training size, averaged over
/// applications and seeds.
#[derive(Debug, Clone)]
pub struct Fig5Cell {
    /// The regression model.
    pub model: ModelKind,
    /// Training-set size.
    pub train_size: usize,
    /// MAPE of the predicted utility (IPS), percent.
    pub mape_utility: f64,
    /// MAPE of the predicted power, percent.
    pub mape_power: f64,
    /// IGD between predicted and reference Pareto fronts (normalized
    /// objective space; lower is better).
    pub igd: f64,
    /// Ratio of reference-front configurations recovered by the predicted
    /// front (higher is better).
    pub common: f64,
}

fn make_model(kind: ModelKind, seed: u64, nn_epochs: usize) -> Box<dyn Regressor> {
    match kind {
        ModelKind::Poly(d) => Box::new(PolynomialRegression::new(d)),
        ModelKind::Nn => Box::new(MlpRegression::new(seed).with_epochs(nn_epochs)),
        ModelKind::Svm => Box::new(SvrRegression::new()),
        _ => unreachable!("unknown model kind"),
    }
}

/// Reference Pareto front of a measured sweep: maximize utility, minimize
/// power. Returns the indices into `points`.
fn reference_front(points: &[SweepPoint]) -> Vec<usize> {
    let objectives: Vec<Vec<f64>> = points
        .iter()
        .map(|p| vec![-p.nfc.utility, p.nfc.power])
        .collect();
    pareto_front_indices(&objectives)
}

/// Evaluates one (app sweep, model, train size, seed) combination.
fn evaluate_once(
    points: &[SweepPoint],
    kind: ModelKind,
    train_size: usize,
    seed: u64,
    nn_epochs: usize,
) -> Option<(f64, f64, f64, f64)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..points.len()).collect();
    indices.shuffle(&mut rng);
    let train: Vec<usize> = indices.into_iter().take(train_size).collect();
    let xs: Vec<Vec<f64>> = train.iter().map(|&i| points[i].erv.features()).collect();
    let us: Vec<f64> = train.iter().map(|&i| points[i].nfc.utility).collect();
    let ps: Vec<f64> = train.iter().map(|&i| points[i].nfc.power).collect();
    let mut mu = make_model(kind, seed, nn_epochs);
    let mut mp = make_model(kind, seed.wrapping_add(1), nn_epochs);
    mu.fit(&xs, &us).ok()?;
    mp.fit(&xs, &ps).ok()?;

    let pred_u: Vec<f64> = points
        .iter()
        .map(|p| mu.predict(&p.erv.features()))
        .collect();
    let pred_p: Vec<f64> = points
        .iter()
        .map(|p| mp.predict(&p.erv.features()))
        .collect();
    let act_u: Vec<f64> = points.iter().map(|p| p.nfc.utility).collect();
    let act_p: Vec<f64> = points.iter().map(|p| p.nfc.power).collect();
    let mape_u = mape(&pred_u, &act_u).ok()?;
    let mape_p = mape(&pred_p, &act_p).ok()?;

    // Predicted front: Pareto over *predicted* characteristics; quality is
    // judged in the measured objective space.
    let pred_objectives: Vec<Vec<f64>> = points
        .iter()
        .enumerate()
        .map(|(i, _)| vec![-pred_u[i], pred_p[i]])
        .collect();
    let pred_front = pareto_front_indices(&pred_objectives);
    let ref_front = reference_front(points);

    // Normalize the measured objective space across all points, then
    // compare front images.
    let measured: Vec<Vec<f64>> = points
        .iter()
        .map(|p| vec![-p.nfc.utility, p.nfc.power])
        .collect();
    let normalized = normalize_columns(&measured);
    let ref_image: Vec<Vec<f64>> = ref_front.iter().map(|&i| normalized[i].clone()).collect();
    let pred_image: Vec<Vec<f64>> = pred_front.iter().map(|&i| normalized[i].clone()).collect();
    let igd_val = igd(&ref_image, &pred_image);

    let ref_keys: Vec<&harp_types::ExtResourceVector> =
        ref_front.iter().map(|&i| &points[i].erv).collect();
    let pred_keys: Vec<&harp_types::ExtResourceVector> =
        pred_front.iter().map(|&i| &points[i].erv).collect();
    let common = common_ratio(&ref_keys, &pred_keys);

    Some((mape_u, mape_p, igd_val, common))
}

/// Runs the Fig. 5 experiment and returns all cells.
///
/// # Errors
///
/// Propagates simulation errors from the measurement sweeps.
pub fn run_cells(opts: &Fig5Options) -> Result<Vec<Fig5Cell>> {
    // Pre-measure the grids (shared across models/sizes/seeds).
    let specs: Vec<_> = suite(Platform::RaptorLake)
        .into_iter()
        .take(opts.apps)
        .collect();
    let mut sweeps = Vec::new();
    for s in &specs {
        sweeps.push(sweep_app(Platform::RaptorLake, s, opts.horizon_s, 5)?);
    }

    let mut cells = Vec::new();
    for kind in ModelKind::all_contenders() {
        for &size in &opts.train_sizes {
            let mut acc = [0.0f64; 4];
            let mut n = 0usize;
            for (a, sweep) in sweeps.iter().enumerate() {
                for seed in 0..opts.seeds {
                    let s = (a as u64) * 1000 + seed as u64;
                    if let Some((mu, mp, g, c)) =
                        evaluate_once(sweep, kind, size, s, opts.nn_epochs)
                    {
                        acc[0] += mu;
                        acc[1] += mp;
                        acc[2] += g;
                        acc[3] += c;
                        n += 1;
                    }
                }
            }
            if n > 0 {
                cells.push(Fig5Cell {
                    model: kind,
                    train_size: size,
                    mape_utility: acc[0] / n as f64,
                    mape_power: acc[1] / n as f64,
                    igd: acc[2] / n as f64,
                    common: acc[3] / n as f64,
                });
            }
        }
    }
    Ok(cells)
}

/// Runs the experiment and renders the paper-style table.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run(opts: &Fig5Options) -> Result<String> {
    let cells = run_cells(opts)?;
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 5: regression-model comparison ({} apps, {} seeds)\n\n",
        opts.apps, opts.seeds
    ));
    out.push_str("  model   n_train   MAPE(IPS)%   MAPE(Power)%    IGD     common\n");
    for c in &cells {
        out.push_str(&format!(
            "  {:<6}  {:>6}    {:>9.1}    {:>10.1}   {:>6.3}   {:>6.2}\n",
            c.model.to_string(),
            c.train_size,
            c.mape_utility,
            c.mape_power,
            c.igd,
            c.common
        ));
    }
    out.push_str(
        "\n(paper finding: Poly2/Poly3 align best with the reference front;\n \
         Poly2 converges by ~20 training points and is HARP's runtime model)\n",
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_experiment_shows_poly2_competitive() {
        let cells = run_cells(&Fig5Options::reduced()).unwrap();
        assert!(!cells.is_empty());
        // At the largest reduced size, Poly2's utility MAPE should beat the
        // SVM's (the paper's qualitative result).
        let biggest = *Fig5Options::reduced().train_sizes.last().unwrap();
        let get = |kind: ModelKind| {
            cells
                .iter()
                .find(|c| c.model == kind && c.train_size == biggest)
                .map(|c| c.mape_utility)
        };
        let poly2 = get(ModelKind::Poly(2)).unwrap();
        let svm = get(ModelKind::Svm).unwrap();
        assert!(
            poly2 < svm,
            "Poly2 MAPE {poly2:.1}% should beat SVM {svm:.1}%"
        );
        // All metrics are finite and sane.
        for c in &cells {
            assert!(c.mape_utility.is_finite());
            assert!(c.igd.is_finite());
            assert!((0.0..=1.0).contains(&c.common));
        }
    }
}
