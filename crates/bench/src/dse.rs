//! Offline design-space exploration (paper §3.2.1): measure an
//! application's utility and power on a grid of configurations, producing
//! the operating-point tables that *HARP (Offline)* allocates from and the
//! raw data behind Fig. 1 and Fig. 5.

use harp_sim::{
    Affinity, AppSpec, LaunchOpts, Manager, MgrEvent, SimConfig, SimState, Simulation, SECOND,
};
use harp_types::{
    CoreKind, ExtResourceVector, NonFunctional, OperatingPoint, OperatingPointTable, Result,
};
use harp_workload::Platform;
use std::collections::HashMap;

/// One measured configuration of the sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The configuration.
    pub erv: ExtResourceVector,
    /// Measured instant characteristics (utility = work/s, power = W of
    /// attributed dynamic power).
    pub nfc: NonFunctional,
    /// Full-run execution time in seconds (Fig. 1 dot size).
    pub time_s: f64,
    /// Full-run total energy in joules (Fig. 1 dot colour).
    pub energy_j: f64,
}

/// Pins an application to a concrete configuration for the measurement.
struct PinTo {
    erv: ExtResourceVector,
}

impl Manager for PinTo {
    fn on_event(&mut self, st: &mut SimState, ev: MgrEvent) {
        if let MgrEvent::AppStarted { app, .. } = ev {
            let hw = st.hw().clone();
            // First N cores of each kind, threads per the ERV histogram.
            let mut cores = Vec::new();
            for kind in 0..hw.num_kinds() {
                let all = hw.cores_of_kind(CoreKind(kind)).expect("valid kind");
                cores.extend(all.into_iter().take(self.erv.cores_of_kind(kind) as usize));
            }
            let threads =
                harp_alloc::hw_threads_for(&self.erv, &cores, &hw).expect("erv fits machine");
            if threads.is_empty() {
                return;
            }
            let team = threads.len() as u32;
            st.set_app_affinity(app, Affinity::from_threads(threads))
                .expect("nonempty mask");
            st.set_team_size(app, team).expect("live app");
        }
    }
}

/// Measures one configuration: runs the application alone, pinned and
/// sized to `erv`. `horizon_s` is a safety cap — measurements should span
/// a full run (serial and parallel phases alike), otherwise short horizons
/// only observe the startup phase and every configuration looks identical.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn measure_config(
    platform: Platform,
    spec: &AppSpec,
    erv: &ExtResourceVector,
    horizon_s: f64,
    seed: u64,
) -> Result<SweepPoint> {
    let hw = platform.hardware();
    let mut sim = Simulation::new(
        hw,
        SimConfig {
            seed,
            horizon_ns: Some((horizon_s * SECOND as f64) as u64),
            ..SimConfig::default()
        },
    );
    sim.add_arrival(0, spec.clone(), LaunchOpts::fixed_team(1));
    let mut mgr = PinTo { erv: erv.clone() };
    let report = sim.run(&mut mgr)?;
    // Characteristics: the completed record if the app finished within the
    // horizon, otherwise the partial record of the capped run.
    let record = report
        .apps
        .first()
        .or_else(|| report.partial.first())
        .cloned();
    let (time_s, work) = match record {
        Some(a) => (a.duration_s().max(1e-9), a.work_done),
        None => (report.makespan_s().max(1e-9), 0.0),
    };
    let utility = work / time_s.max(1e-9);
    // EnergAt attribution of a solo application charges it the entire
    // package energy (static power included) — see harp-energy.
    let power = report.total_energy_j / time_s.max(1e-9);
    Ok(SweepPoint {
        erv: erv.clone(),
        nfc: NonFunctional::new(utility, power),
        time_s,
        energy_j: report.total_energy_j,
    })
}

/// The configuration grid of a platform: a coarse but covering subset of
/// the extended-resource-vector space (full enumeration on the small
/// Odroid, a structured grid on Raptor Lake).
pub fn sweep_grid(platform: Platform) -> Vec<ExtResourceVector> {
    let hw = platform.hardware();
    let shape = hw.erv_shape();
    match platform {
        Platform::Odroid => ExtResourceVector::enumerate(&shape, &hw.capacity())
            .expect("valid shape")
            .into_iter()
            .filter(|e| !e.is_zero())
            .collect(),
        Platform::RaptorLake => {
            let mut out = Vec::new();
            for p1 in [0u32, 1, 2] {
                for p2 in [0u32, 1, 2, 4, 6, 8] {
                    if p1 + p2 > 8 {
                        continue;
                    }
                    for e in [0u32, 1, 2, 4, 6, 8, 12, 16] {
                        if p1 == 0 && p2 == 0 && e == 0 {
                            continue;
                        }
                        out.push(
                            ExtResourceVector::from_flat(&shape, &[p1, p2, e])
                                .expect("grid point fits shape"),
                        );
                    }
                }
            }
            out
        }
    }
}

/// Sweeps an application over the platform grid, producing its offline
/// operating-point table and the raw sweep data. Grid points are
/// independent simulations, so they are measured on the worker pool
/// ([`crate::jobs::parallel_map`]); results come back in grid order with
/// per-point seeds, identical to a serial sweep.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn sweep_app(
    platform: Platform,
    spec: &AppSpec,
    horizon_s: f64,
    seed: u64,
) -> Result<Vec<SweepPoint>> {
    let grid: Vec<(u64, ExtResourceVector)> = sweep_grid(platform)
        .into_iter()
        .enumerate()
        .map(|(i, e)| (i as u64, e))
        .collect();
    crate::jobs::parallel_map(&grid, |(i, erv)| {
        measure_config(platform, spec, erv, horizon_s, seed.wrapping_add(*i))
    })
    .into_iter()
    .collect()
}

/// Distils a sweep into the application's offline operating-point table
/// (configurations that made progress, in grid order).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn sweep_table(
    platform: Platform,
    spec: &AppSpec,
    horizon_s: f64,
    seed: u64,
) -> Result<OperatingPointTable> {
    let sweep = sweep_app(platform, spec, horizon_s, seed)?;
    Ok(sweep
        .into_iter()
        .filter(|p| p.nfc.utility > 0.0)
        .map(|p| OperatingPoint::new(p.erv, p.nfc))
        .collect())
}

/// Builds the offline profile store for a set of applications (the
/// description files of *HARP (Offline)*). Each application's table comes
/// from the shared profile cache ([`crate::cache`]), so repeated requests
/// — within one binary or, with spilling enabled, across binaries — cost
/// one sweep total.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn offline_profiles(
    platform: Platform,
    specs: &[AppSpec],
    horizon_s: f64,
) -> Result<HashMap<String, OperatingPointTable>> {
    let mut out = HashMap::new();
    for spec in specs {
        if out.contains_key(&spec.name) {
            continue;
        }
        let table = crate::cache::offline_table(platform, spec, horizon_s, 17)?;
        out.insert(spec.name.clone(), table);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_workload::benchmark;

    #[test]
    fn grids_cover_the_space() {
        let intel = sweep_grid(Platform::RaptorLake);
        assert!(intel.len() > 80, "{}", intel.len());
        assert!(intel.iter().all(|e| !e.is_zero()));
        let odroid = sweep_grid(Platform::Odroid);
        assert_eq!(odroid.len(), 24); // 5*5 - 1
    }

    #[test]
    fn measurement_produces_sane_characteristics() {
        let spec = benchmark(Platform::RaptorLake, "ep").unwrap();
        let hw = Platform::RaptorLake.hardware();
        let shape = hw.erv_shape();
        let small = ExtResourceVector::from_flat(&shape, &[0, 2, 0]).unwrap();
        let large = ExtResourceVector::from_flat(&shape, &[0, 8, 8]).unwrap();
        let m_small = measure_config(Platform::RaptorLake, &spec, &small, 600.0, 1).unwrap();
        let m_large = measure_config(Platform::RaptorLake, &spec, &large, 600.0, 1).unwrap();
        assert!(m_small.nfc.utility > 0.0);
        assert!(
            m_large.nfc.utility > 2.0 * m_small.nfc.utility,
            "ep should scale: {} vs {}",
            m_large.nfc.utility,
            m_small.nfc.utility
        );
        assert!(m_large.nfc.power > m_small.nfc.power);
    }

    #[test]
    fn offline_profile_has_many_points() {
        let spec = benchmark(Platform::Odroid, "ep").unwrap();
        let profiles = offline_profiles(Platform::Odroid, &[spec], 600.0).unwrap();
        let t = &profiles["ep"];
        assert!(t.measured_count() >= 20, "{}", t.measured_count());
        assert!(t.max_utility() > 0.0);
    }
}
