//! The experiment harness: every table and figure of the HARP evaluation
//! (paper §6), regenerated against the simulated machines.
//!
//! | Experiment | Paper | Module | Binary |
//! |---|---|---|---|
//! | Fig. 1 | per-configuration time/energy + Pareto front of `ep.C`/`mg.C` | [`fig1`] | `fig1_sweep` |
//! | Fig. 5 | regression-model comparison (MAPE, IGD, common ratio) | [`fig5`] | `fig5_models` |
//! | Fig. 6 | HARP/ITD/Offline/NoScaling vs CFS on Raptor Lake | [`fig6`] | `fig6_intel` |
//! | Fig. 7 | HARP (Offline) vs EAS on the Odroid XU3-E | [`fig7`] | `fig7_odroid` |
//! | Fig. 8 | learning-phase snapshots, time-to-stable | [`fig8`] | `fig8_learning` |
//! | §6.3.3 | frequency-governor study | [`tables`] | `tab_governor` |
//! | §6.6 | RM overhead | [`tables`] | `tab_overhead` |
//! | §5.1 | energy-attribution accuracy (MAPE 8.76 %) | [`tables`] | `tab_attribution` |
//! | headline | avg 12 % time / 28 % energy | [`tables`] | `headline_summary` |
//! | daemon storm | reactor connection-storm throughput (DESIGN.md §12) | [`storm`] | `storm_bench` |
//!
//! The shared machinery lives in [`runner`] (scenario execution under any
//! manager, improvement factors), [`dse`] (offline design-space
//! exploration producing operating-point profiles), [`jobs`] (the
//! evaluation-cell worker pool: every figure enumerates its cells as
//! [`jobs::Job`]s and executes them in parallel with deterministic,
//! bit-identical reassembly — pool size via `HARP_BENCH_THREADS`), and
//! [`cache`] (the content-addressed profile cache sharing DSE sweeps and
//! warm-up learning runs across experiments and, optionally, processes).
//!
//! Absolute numbers depend on the calibrated simulator, not the authors'
//! testbed; the harness asserts and reports the *shape* of every result
//! (who wins, by roughly what factor). `EXPERIMENTS.md` records
//! paper-vs-measured values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod dse;
pub mod fig1;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod jobs;
pub mod runner;
pub mod storm;
pub mod tables;

/// Formats an improvement factor the way the paper's figures label bars.
pub fn fmt_factor(f: f64) -> String {
    format!("{f:.2}x")
}

#[cfg(test)]
mod tests {
    #[test]
    fn factor_formatting() {
        assert_eq!(super::fmt_factor(1.339), "1.34x");
        assert_eq!(super::fmt_factor(0.5), "0.50x");
    }
}
