//! Figure 7: HARP (Offline) vs the Linux Energy-Aware Scheduler on the
//! Odroid XU3-E (§6.4).
//!
//! The Odroid cannot track performance counters on both clusters at once,
//! so only the offline variant is evaluated there — operating points come
//! from a design-space-exploration sweep, and EAS is the baseline.

use crate::dse::offline_profiles;
use crate::jobs::{fold_repetitions, repetition_jobs, run_jobs};
use crate::runner::{improvement, Improvement, ManagerKind, RunOptions};
use harp_model::metrics::geometric_mean;
use harp_types::Result;
use harp_workload::{scenarios, Platform, Scenario};

/// Experiment options.
#[derive(Debug, Clone)]
pub struct Fig7Options {
    /// Repetitions per scenario (paper: 10).
    pub reps: u32,
    /// Measurement horizon per DSE configuration (simulated seconds).
    pub dse_horizon_s: f64,
    /// Single-application scenarios.
    pub singles: Vec<Scenario>,
    /// Multi-application scenarios.
    pub multis: Vec<Scenario>,
}

impl Default for Fig7Options {
    fn default() -> Self {
        Fig7Options {
            reps: 3,
            dse_horizon_s: 600.0,
            singles: scenarios::odroid_single(),
            multis: scenarios::odroid_multi(),
        }
    }
}

impl Fig7Options {
    /// A reduced configuration for tests and micro-benchmarks.
    pub fn reduced() -> Self {
        Fig7Options {
            reps: 1,
            dse_horizon_s: 600.0,
            singles: vec![
                Scenario::of(Platform::Odroid, &["mg"]),
                Scenario::of(Platform::Odroid, &["mandelbrot"]),
                Scenario::of(Platform::Odroid, &["mandelbrot-static"]),
            ],
            multis: vec![Scenario::of(Platform::Odroid, &["is", "mg"])],
        }
    }
}

/// Result of one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioRow {
    /// Scenario name.
    pub scenario: String,
    /// Whether it is a multi-application scenario.
    pub multi: bool,
    /// EAS makespan (the gray boxes of the figure).
    pub eas_makespan_s: f64,
    /// Improvement of HARP (Offline) over EAS.
    pub harp: Improvement,
}

/// Runs the experiment, one row per scenario.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_rows(opts: &Fig7Options) -> Result<Vec<ScenarioRow>> {
    let mut all_apps = Vec::new();
    for s in opts.singles.iter().chain(&opts.multis) {
        for a in &s.apps {
            all_apps.push(a.clone());
        }
    }
    let offline = offline_profiles(Platform::Odroid, &all_apps, opts.dse_horizon_s)?;

    let scens: Vec<(&Scenario, bool)> = opts
        .singles
        .iter()
        .map(|s| (s, false))
        .chain(opts.multis.iter().map(|s| (s, true)))
        .collect();

    // One flat job set — per scenario the EAS baseline group then the
    // HARP (Offline) group — executed on the worker pool and folded in
    // enumeration order (bit-identical to the serial path).
    let base_opts = RunOptions {
        governor: harp_platform::Governor::Schedutil,
        ..RunOptions::default()
    };
    let mut hopts = base_opts.clone();
    hopts.profiles = Some(offline);
    let mut jobs = Vec::new();
    for (scenario, _) in &scens {
        jobs.extend(repetition_jobs(
            "fig7",
            Platform::Odroid,
            scenario,
            ManagerKind::Eas,
            &base_opts,
            opts.reps,
        ));
        jobs.extend(repetition_jobs(
            "fig7",
            Platform::Odroid,
            scenario,
            ManagerKind::HarpOffline,
            &hopts,
            opts.reps,
        ));
    }
    let metrics = run_jobs(&jobs)?;

    let reps = opts.reps.max(1) as usize;
    let mut groups = metrics.chunks(reps);
    let mut rows = Vec::new();
    for (scenario, multi) in scens {
        let eas = fold_repetitions(groups.next().expect("EAS group per scenario"));
        let harp = fold_repetitions(groups.next().expect("HARP group per scenario"));
        rows.push(ScenarioRow {
            scenario: scenario.name.clone(),
            multi,
            eas_makespan_s: eas.makespan_s,
            harp: improvement(eas, harp),
        });
    }
    Ok(rows)
}

/// Geometric means over a group.
pub fn geomean_of(rows: &[ScenarioRow], multi: bool) -> Option<Improvement> {
    let group: Vec<&ScenarioRow> = rows.iter().filter(|r| r.multi == multi).collect();
    Some(Improvement {
        time: geometric_mean(&group.iter().map(|r| r.harp.time).collect::<Vec<_>>()).ok()?,
        energy: geometric_mean(&group.iter().map(|r| r.harp.energy).collect::<Vec<_>>()).ok()?,
    })
}

/// Renders the paper-style table.
pub fn render(rows: &[ScenarioRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 7: HARP (Offline) improvement over EAS — Odroid XU3-E\n\
         (time x / energy x; >1 is better; [EAS makespan])\n\n",
    );
    for group in [false, true] {
        out.push_str(if group {
            "--- multi-application scenarios ---\n"
        } else {
            "--- single-application scenarios ---\n"
        });
        out.push_str("  scenario                EAS[s]     HARP(Offline)\n");
        for r in rows.iter().filter(|r| r.multi == group) {
            out.push_str(&format!(
                "  {:<22} {:7.2}     {:4.2}/{:4.2}\n",
                r.scenario, r.eas_makespan_s, r.harp.time, r.harp.energy
            ));
        }
        if let Some(g) = geomean_of(rows, group) {
            out.push_str(&format!(
                "  geomean                           {:4.2}/{:4.2}\n",
                g.time, g.energy
            ));
        }
        out.push('\n');
    }
    out.push_str(
        "(paper geomeans — single: 1.07/1.27; multi: 1.20/1.38;\n \
         ep+ft regresses in both metrics due to cluster reassignments)\n",
    );
    out
}

/// Runs and renders.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run(opts: &Fig7Options) -> Result<String> {
    Ok(render(&run_rows(opts)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_fig7_shapes_hold() {
        let rows = run_rows(&Fig7Options::reduced()).unwrap();
        assert_eq!(rows.len(), 4);
        // mg: offline HARP should save energy on the big.LITTLE board.
        let mg = rows.iter().find(|r| r.scenario == "mg").unwrap();
        assert!(mg.harp.energy > 1.0, "mg {:?}", mg.harp);
        // The adaptive mandelbrot should benefit at least as much as the
        // static variant (which HARP can only place, not resize).
        let adaptive = rows.iter().find(|r| r.scenario == "mandelbrot").unwrap();
        let fixed = rows
            .iter()
            .find(|r| r.scenario == "mandelbrot-static")
            .unwrap();
        assert!(
            adaptive.harp.energy >= fixed.harp.energy * 0.95,
            "adaptive {:?} vs static {:?}",
            adaptive.harp,
            fixed.harp
        );
        let table = render(&rows);
        assert!(table.contains("geomean"));
    }
}
