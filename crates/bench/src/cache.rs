//! Content-addressed cache of operating-point profiles.
//!
//! Two kinds of profile generation dominate the harness's wall-clock: the
//! offline DSE sweep of an application (§3.2.1, reused by Fig. 1, Fig. 5,
//! Fig. 6's *HARP (Offline)*, Fig. 7, the governor table and the headline
//! summary) and the Fig. 6-style warm-up learning run of a scenario. Both
//! are pure functions of `(platform, input spec, parameters)`, so the
//! harness computes each **once per process** and shares the result —
//! keyed by a content hash over the platform, the serialized specification
//! and the generation parameters.
//!
//! With a spill directory configured (see [`set_spill_dir`]; the evaluation
//! binaries default to `target/harp-profile-cache/` unless
//! `HARP_PROFILE_CACHE=0`), results are additionally persisted as JSON so
//! consecutive binaries reuse them. Entries are keyed by content, so a
//! stale directory can only ever *miss*, never return wrong data for the
//! simulator's current calibration — but after deliberately changing
//! simulator physics, delete the directory to reclaim the disk.
//!
//! Concurrency: every key has its own entry lock, so distinct profiles are
//! computed in parallel (e.g. by [`crate::jobs::parallel_map`] workers)
//! while concurrent requests for the *same* key block and then hit.

use crate::runner::ProfileStore;
use harp_sim::{AppSpec, SimTime};
use harp_types::{OperatingPointTable, Result};
use harp_workload::{Platform, Scenario};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A cached generation result.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum CacheValue {
    /// An offline DSE table (one application).
    Table(OperatingPointTable),
    /// A learned profile store (one scenario warm-up run).
    Store(ProfileStore),
}

#[derive(Default)]
struct CacheInner {
    /// Per-key entry slots; the outer lock is held only to look up/insert
    /// the `Arc`, never while computing.
    entries: HashMap<String, Arc<Mutex<Option<CacheValue>>>>,
}

static CACHE: OnceLock<Mutex<CacheInner>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static SPILL_DIR: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();

fn cache() -> &'static Mutex<CacheInner> {
    CACHE.get_or_init(Mutex::default)
}

fn spill_dir_slot() -> &'static Mutex<Option<PathBuf>> {
    SPILL_DIR.get_or_init(Mutex::default)
}

/// Number of cache hits (in-memory or spilled) since the last [`reset`].
pub fn hits() -> u64 {
    HITS.load(Ordering::Relaxed)
}

/// Number of cache misses (full computations) since the last [`reset`].
pub fn misses() -> u64 {
    MISSES.load(Ordering::Relaxed)
}

/// Clears the in-memory cache and the hit/miss counters (the spill
/// directory, if any, is left untouched).
pub fn reset() {
    cache().lock().expect("cache lock").entries.clear();
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

/// Configures the JSON spill directory. `None` (the library default)
/// disables spilling, keeping tests hermetic; the evaluation binaries
/// enable it via [`default_spill`].
pub fn set_spill_dir(dir: Option<PathBuf>) {
    *spill_dir_slot().lock().expect("spill-dir lock") = dir;
}

/// The spill directory the evaluation binaries use:
/// `HARP_PROFILE_CACHE_DIR` if set, else `target/harp-profile-cache/`,
/// or `None` if `HARP_PROFILE_CACHE=0` disables spilling.
pub fn default_spill() -> Option<PathBuf> {
    if std::env::var("HARP_PROFILE_CACHE").is_ok_and(|v| v == "0") {
        return None;
    }
    if let Ok(dir) = std::env::var("HARP_PROFILE_CACHE_DIR") {
        if !dir.is_empty() {
            return Some(PathBuf::from(dir));
        }
    }
    Some(PathBuf::from("target/harp-profile-cache"))
}

/// FNV-1a over the canonical description of a cache entry.
fn fnv1a(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for b in part.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Separator so ("ab","c") and ("a","bc") hash differently.
        h ^= 0x1f;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn key_for(kind: &str, platform: Platform, content: &str, params: &str) -> String {
    let hash = fnv1a(&[kind, &format!("{platform:?}"), content, params]);
    format!("{kind}-{platform:?}-{hash:016x}").to_lowercase()
}

/// Looks up `key`, computing and inserting on miss. Errors are returned
/// but never cached, so a transient failure does not poison the entry.
fn get_or_compute(key: &str, compute: impl FnOnce() -> Result<CacheValue>) -> Result<CacheValue> {
    let slot = {
        let mut inner = cache().lock().expect("cache lock");
        Arc::clone(inner.entries.entry(key.to_string()).or_default())
    };
    let mut entry = slot.lock().expect("entry lock");
    if let Some(v) = entry.as_ref() {
        HITS.fetch_add(1, Ordering::Relaxed);
        return Ok(v.clone());
    }
    if let Some(v) = load_spilled(key) {
        HITS.fetch_add(1, Ordering::Relaxed);
        *entry = Some(v.clone());
        return Ok(v);
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let v = compute()?;
    *entry = Some(v.clone());
    spill(key, &v);
    Ok(v)
}

fn spill_path(key: &str) -> Option<PathBuf> {
    spill_dir_slot()
        .lock()
        .expect("spill-dir lock")
        .as_ref()
        .map(|d| d.join(format!("{key}.json")))
}

fn load_spilled(key: &str) -> Option<CacheValue> {
    let path = spill_path(key)?;
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

/// Best-effort persistence: I/O failures only cost future processes a
/// recomputation, so they are ignored.
fn spill(key: &str, value: &CacheValue) {
    let Some(path) = spill_path(key) else {
        return;
    };
    let Ok(text) = serde_json::to_string(value) else {
        return;
    };
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let _ = std::fs::write(path, text);
}

/// The offline DSE table of one application: [`crate::dse::sweep_app`]
/// filtered to useful points, computed once per (platform, spec,
/// parameters).
///
/// # Errors
///
/// Propagates simulation errors (which are never cached).
pub fn offline_table(
    platform: Platform,
    spec: &AppSpec,
    horizon_s: f64,
    seed: u64,
) -> Result<OperatingPointTable> {
    let content = serde_json::to_string(spec).unwrap_or_else(|_| format!("{spec:?}"));
    let params = format!("h={horizon_s};s={seed}");
    let key = key_for("dse", platform, &content, &params);
    let v = get_or_compute(&key, || {
        let table = crate::dse::sweep_table(platform, spec, horizon_s, seed)?;
        Ok(CacheValue::Table(table))
    })?;
    match v {
        CacheValue::Table(t) => Ok(t),
        CacheValue::Store(_) => unreachable!("dse key holds a table"),
    }
}

/// The learned profiles of one scenario warm-up run
/// ([`crate::runner::learn_profiles`]), computed once per (platform,
/// scenario, warm-up, seed).
///
/// # Errors
///
/// Propagates simulation errors (which are never cached).
pub fn learned_profiles(
    platform: Platform,
    scenario: &Scenario,
    warmup: SimTime,
    seed: u64,
) -> Result<ProfileStore> {
    let content =
        serde_json::to_string(&scenario.apps).unwrap_or_else(|_| format!("{:?}", scenario.apps));
    let params = format!("w={warmup};s={seed};n={}", scenario.name);
    let key = key_for("learn", platform, &content, &params);
    let v = get_or_compute(&key, || {
        let store = crate::runner::learn_profiles(platform, scenario, warmup, seed)?;
        Ok(CacheValue::Store(store))
    })?;
    match v {
        CacheValue::Store(s) => Ok(s),
        CacheValue::Table(_) => unreachable!("learn key holds a store"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_separates_part_boundaries() {
        assert_ne!(fnv1a(&["ab", "c"]), fnv1a(&["a", "bc"]));
        assert_ne!(fnv1a(&["a"]), fnv1a(&["a", ""]));
    }

    #[test]
    fn keys_differ_by_every_component() {
        let spec = harp_workload::benchmark(Platform::RaptorLake, "ep").unwrap();
        let content = serde_json::to_string(&spec).unwrap();
        let a = key_for("dse", Platform::RaptorLake, &content, "h=600;s=17");
        let b = key_for("dse", Platform::Odroid, &content, "h=600;s=17");
        let c = key_for("dse", Platform::RaptorLake, &content, "h=600;s=18");
        let d = key_for("learn", Platform::RaptorLake, &content, "h=600;s=17");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }
}
