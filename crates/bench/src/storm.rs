//! Connection-storm benchmark: many short-lived sessions hammering a
//! live reactor daemon (`storm_bench` binary, DESIGN.md §12).
//!
//! Each storm session walks the full protocol lifecycle against a real
//! Unix-socket daemon — connect, `Register`, wait for the ack, submit a
//! two-point profile, wait for at least one `Activate`, `Exit`, drain —
//! and verifies the per-session oracle as it goes:
//!
//! * exactly one `RegisterAck` (a duplicate would mean the reactor
//!   dispatched the same registration twice),
//! * at least one `Activate` (zero would mean the RM's directive for
//!   this session was lost between `route` and the session's shard), and
//! * no transport error before the client's own `Exit`.
//!
//! Sessions run through a **sliding concurrency window**: `window`
//! worker threads each churn `sessions / window` lifecycles
//! back-to-back, so the daemon always sees about `window` live sessions
//! while total connection churn reaches the tier size. Throughput is
//! reported as completed session lifecycles per second; because every
//! register/submit/exit triggers a reallocation that re-broadcasts
//! directives to every live session, per-session cost is O(window) and
//! a healthy daemon holds the same rate at 512 and 10 000 sessions
//! (the `bench_artifacts` gate on the committed `BENCH_harness.json`).

use harp_proto::frame;
use harp_proto::{AdaptivityType, Message, Register, SubmitPoints, WirePoint};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Per-session read timeout. Generous: a loaded single-core CI box runs
/// hundreds of client threads against a multi-shard daemon, but a
/// healthy daemon answers in milliseconds — half a minute of silence
/// means the session's traffic is gone, not late.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Hard cap on the concurrency window (threads and live connections).
pub const MAX_WINDOW: usize = 256;

/// What one session lifecycle observed.
#[derive(Debug, Default, Clone, Copy)]
struct SessionOutcome {
    acks: u64,
    activates: u64,
    error: bool,
}

/// Aggregated oracle counts for one storm tier.
#[derive(Debug, Default, Clone, Copy)]
pub struct TierTotals {
    /// Session lifecycles attempted.
    pub sessions: u64,
    /// `RegisterAck`s observed across all sessions.
    pub acks: u64,
    /// `Activate`s observed across all sessions.
    pub activates: u64,
    /// Sessions that completed without error but never saw an
    /// `Activate`: a lost directive.
    pub lost: u64,
    /// Sessions that saw more than one `RegisterAck`: a duplicated
    /// directive.
    pub duplicated: u64,
    /// Sessions that hit a transport error (timeout, unexpected EOF)
    /// before their own `Exit`.
    pub errors: u64,
}

/// One storm tier's result: oracle counts plus wall-clock throughput.
#[derive(Debug, Clone, Copy)]
pub struct TierResult {
    /// Aggregated oracle counts.
    pub totals: TierTotals,
    /// Wall-clock seconds from first connect to last drain.
    pub wall_s: f64,
    /// Completed lifecycles per second (`sessions / wall_s`).
    pub sessions_per_sec: f64,
}

impl TierResult {
    /// True when every per-session oracle held.
    pub fn clean(&self) -> bool {
        self.totals.lost == 0 && self.totals.duplicated == 0 && self.totals.errors == 0
    }
}

/// Cumulative per-reactor-shard counters, read from the harp-obs
/// metrics registry (`daemon.shard{N}.*`).
#[derive(Debug, Default, Clone)]
pub struct ShardSnapshot {
    /// Connections accepted per shard (index = shard id). Shards the
    /// daemon never spawned read 0.
    pub accepted: Vec<u64>,
    /// Frames dispatched, summed across shards.
    pub frames: u64,
    /// Socket flushes, summed across shards.
    pub flushes: u64,
    /// Peer hangups observed, summed across shards.
    pub hangups: u64,
}

/// Reads the current per-shard counters from the metrics registry.
pub fn shard_snapshot() -> ShardSnapshot {
    let snap = harp_obs::metrics::snapshot();
    let mut s = ShardSnapshot::default();
    for i in 0..8 {
        s.accepted
            .push(snap.counter(&format!("daemon.shard{i}.accepted")));
        s.frames += snap.counter(&format!("daemon.shard{i}.frames"));
        s.flushes += snap.counter(&format!("daemon.shard{i}.flushes"));
        s.hangups += snap.counter(&format!("daemon.shard{i}.hangups"));
    }
    s
}

/// The fixed two-point profile every storm session submits. Matches the
/// shape of `HardwareDescription::raptor_lake()` (3 ERV slots): a
/// 4-P-core point and an 8-E-core point, so the solver always has a
/// real trade-off to weigh.
fn storm_points(app_id: u64) -> SubmitPoints {
    SubmitPoints {
        app_id,
        smt_widths: vec![2, 1],
        points: vec![
            WirePoint {
                erv_flat: vec![0, 4, 0],
                utility: 3.0e10,
                power: 40.0,
            },
            WirePoint {
                erv_flat: vec![0, 0, 8],
                utility: 2.5e10,
                power: 15.0,
            },
        ],
    }
}

/// One full session lifecycle against the daemon at `socket`.
fn run_session(socket: &Path) -> SessionOutcome {
    let mut out = SessionOutcome::default();
    let Ok(stream) = std::os::unix::net::UnixStream::connect(socket) else {
        out.error = true;
        return out;
    };
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let Ok(mut reader) = stream.try_clone() else {
        out.error = true;
        return out;
    };
    if frame::write_frame(
        &stream,
        &Message::Register(Register {
            pid: 0,
            app_name: "storm".into(),
            adaptivity: AdaptivityType::Scalable,
            provides_utility: false,
        }),
    )
    .is_err()
    {
        out.error = true;
        return out;
    }

    // Phase 1: the ack. Activations for the provisional grant may
    // interleave ahead of it.
    let mut app_id = None;
    while app_id.is_none() {
        match frame::read_frame(&mut reader) {
            Ok(Some(Message::RegisterAck(ack))) => {
                out.acks += 1;
                app_id = Some(ack.app_id);
            }
            Ok(Some(Message::Activate(_))) => out.activates += 1,
            Ok(Some(_)) => {}
            Ok(None) | Err(_) => {
                out.error = true;
                return out;
            }
        }
    }
    let id = app_id.expect("loop exits with an id");

    // Phase 2: submit the profile, then require at least one activation.
    if frame::write_frame(&stream, &Message::SubmitPoints(storm_points(id))).is_err() {
        out.error = true;
        return out;
    }
    while out.activates == 0 {
        match frame::read_frame(&mut reader) {
            Ok(Some(Message::RegisterAck(_))) => out.acks += 1,
            Ok(Some(Message::Activate(_))) => out.activates += 1,
            Ok(Some(_)) => {}
            Ok(None) | Err(_) => {
                out.error = true;
                return out;
            }
        }
    }

    // Phase 3: exit and drain until the daemon closes the socket. A
    // duplicated ack or a stale activation for this session would
    // surface here; torn frames at EOF are expected (the daemon severs
    // after processing the Exit) and not an oracle violation.
    let _ = frame::write_frame(&stream, &Message::Exit { app_id: id });
    loop {
        match frame::read_frame(&mut reader) {
            Ok(Some(Message::RegisterAck(_))) => out.acks += 1,
            Ok(Some(Message::Activate(_))) => out.activates += 1,
            Ok(Some(_)) => {}
            Ok(None) | Err(_) => break,
        }
    }
    out
}

/// Runs one storm tier: `sessions` lifecycles through a sliding window
/// of at most `window` concurrent connections against the daemon at
/// `socket`.
pub fn run_tier(socket: &Path, sessions: u64, window: usize) -> TierResult {
    let window = window.clamp(1, MAX_WINDOW).min(sessions.max(1) as usize);
    let start = Instant::now();
    let mut handles = Vec::with_capacity(window);
    for w in 0..window as u64 {
        let per = sessions / window as u64 + u64::from(w < sessions % window as u64);
        let socket: PathBuf = socket.to_path_buf();
        handles.push(std::thread::spawn(move || {
            let mut tot = TierTotals::default();
            for _ in 0..per {
                let o = run_session(&socket);
                tot.sessions += 1;
                tot.acks += o.acks;
                tot.activates += o.activates;
                tot.errors += u64::from(o.error);
                tot.lost += u64::from(!o.error && o.activates == 0);
                tot.duplicated += u64::from(o.acks > 1);
            }
            tot
        }));
    }
    let mut totals = TierTotals::default();
    for h in handles {
        let t = h.join().unwrap_or_else(|_| TierTotals {
            // A panicked worker forfeits its whole share as errors so
            // the oracle cannot silently pass on a crashed thread.
            sessions: sessions / window as u64,
            errors: sessions / window as u64,
            ..TierTotals::default()
        });
        totals.sessions += t.sessions;
        totals.acks += t.acks;
        totals.activates += t.activates;
        totals.lost += t.lost;
        totals.duplicated += t.duplicated;
        totals.errors += t.errors;
    }
    let wall_s = start.elapsed().as_secs_f64();
    TierResult {
        totals,
        wall_s,
        sessions_per_sec: totals.sessions as f64 / wall_s.max(1e-9),
    }
}
