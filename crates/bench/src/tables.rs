//! The in-text tables of the evaluation: the frequency-governor study
//! (§6.3.3), the RM overhead (§6.6), the energy-attribution accuracy
//! (§5.1), and the headline summary of the abstract.

use crate::dse::offline_profiles;
use crate::jobs::{fold_repetitions, parallel_map, repetition_jobs, run_jobs};
use crate::runner::{improvement, run_with_manager, ManagerKind, ProfileStore, RunOptions};
use crate::{fig6, fig7};
use harp_energy::EnergyAttributor;
use harp_model::metrics::geometric_mean;
use harp_platform::Governor;
use harp_sim::{Manager, MgrEvent, SimState, SECOND};
use harp_types::{AppId, Result};
use harp_workload::{Platform, Scenario};
use std::collections::HashMap;

// ---------------------------------------------------------------------
// §6.3.3 — influence of frequency scaling
// ---------------------------------------------------------------------

/// Options of the governor study.
#[derive(Debug, Clone)]
pub struct GovernorOptions {
    /// Scenarios evaluated under both governors.
    pub scenarios: Vec<Scenario>,
    /// Repetitions.
    pub reps: u32,
    /// Warmup for online learning (simulated seconds).
    pub warmup_s: u64,
    /// DSE horizon per configuration.
    pub dse_horizon_s: f64,
}

impl Default for GovernorOptions {
    fn default() -> Self {
        GovernorOptions {
            scenarios: vec![
                Scenario::of(Platform::RaptorLake, &["mg"]),
                Scenario::of(Platform::RaptorLake, &["ep"]),
                Scenario::of(Platform::RaptorLake, &["cg", "ep", "ft"]),
                Scenario::of(Platform::RaptorLake, &["mg", "sp", "ua"]),
            ],
            reps: 2,
            warmup_s: 90,
            dse_horizon_s: 600.0,
        }
    }
}

impl GovernorOptions {
    /// Reduced configuration for tests.
    pub fn reduced() -> Self {
        GovernorOptions {
            scenarios: vec![
                Scenario::of(Platform::RaptorLake, &["mg"]),
                Scenario::of(Platform::RaptorLake, &["cg", "ep", "ft"]),
            ],
            reps: 1,
            warmup_s: 60,
            dse_horizon_s: 600.0,
        }
    }
}

/// Aggregate improvements of one HARP variant under one governor.
#[derive(Debug, Clone)]
pub struct GovernorCell {
    /// The governor.
    pub governor: Governor,
    /// The HARP variant.
    pub variant: ManagerKind,
    /// Geomean time improvement over CFS (same governor).
    pub time: f64,
    /// Geomean energy improvement over CFS (same governor).
    pub energy: f64,
}

/// Runs the governor study.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn governor_cells(opts: &GovernorOptions) -> Result<Vec<GovernorCell>> {
    let mut all_apps = Vec::new();
    for s in &opts.scenarios {
        all_apps.extend(s.apps.iter().cloned());
    }
    let offline = offline_profiles(Platform::RaptorLake, &all_apps, opts.dse_horizon_s)?;

    // Warm-up learning wave for the online variant (one run per scenario,
    // shared via the profile cache across both governors).
    let learned: Vec<ProfileStore> = parallel_map(&opts.scenarios, |scenario| {
        crate::cache::learned_profiles(Platform::RaptorLake, scenario, opts.warmup_s * SECOND, 29)
    })
    .into_iter()
    .collect::<Result<_>>()?;

    const VARIANTS: [ManagerKind; 2] = [ManagerKind::Harp, ManagerKind::HarpOffline];

    // One flat job set per governor: the shared CFS baseline group of each
    // scenario, then each variant's group. Folded in enumeration order.
    let mut jobs = Vec::new();
    for governor in [Governor::Powersave, Governor::Performance] {
        let base_opts = RunOptions {
            governor,
            ..RunOptions::default()
        };
        for scenario in &opts.scenarios {
            jobs.extend(repetition_jobs(
                "tab_governor",
                Platform::RaptorLake,
                scenario,
                ManagerKind::Cfs,
                &base_opts,
                opts.reps,
            ));
        }
        for variant in VARIANTS {
            for (scenario, learned) in opts.scenarios.iter().zip(&learned) {
                let mut vopts = base_opts.clone();
                vopts.profiles = Some(match variant {
                    ManagerKind::HarpOffline => offline.clone(),
                    _ => learned.clone(),
                });
                jobs.extend(repetition_jobs(
                    "tab_governor",
                    Platform::RaptorLake,
                    scenario,
                    variant,
                    &vopts,
                    opts.reps,
                ));
            }
        }
    }
    let metrics = run_jobs(&jobs)?;

    let reps = opts.reps.max(1) as usize;
    let mut groups = metrics.chunks(reps);
    let mut cells = Vec::new();
    for governor in [Governor::Powersave, Governor::Performance] {
        let cfs: Vec<_> = opts
            .scenarios
            .iter()
            .map(|_| fold_repetitions(groups.next().expect("CFS group per scenario")))
            .collect();
        for variant in VARIANTS {
            let mut times = Vec::new();
            let mut energies = Vec::new();
            for cfs in &cfs {
                let harp = fold_repetitions(groups.next().expect("variant group per scenario"));
                let imp = improvement(*cfs, harp);
                times.push(imp.time);
                energies.push(imp.energy);
            }
            cells.push(GovernorCell {
                governor,
                variant,
                time: geometric_mean(&times)?,
                energy: geometric_mean(&energies)?,
            });
        }
    }
    Ok(cells)
}

/// Runs and renders the §6.3.3 table.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn governor_table(opts: &GovernorOptions) -> Result<String> {
    let cells = governor_cells(opts)?;
    let mut out = String::new();
    out.push_str("§6.3.3: influence of the frequency-scaling governor\n\n");
    out.push_str("  governor      variant          time x   energy x\n");
    for c in &cells {
        out.push_str(&format!(
            "  {:<12}  {:<15}  {:5.2}    {:5.2}\n",
            c.governor.to_string(),
            c.variant.to_string(),
            c.time,
            c.energy
        ));
    }
    out.push_str(
        "\n(paper: powersave HARP 1.14/1.42, performance HARP 1.20/1.44;\n \
         powersave Offline 1.34/1.58, performance Offline 1.36/1.61 —\n \
         i.e. the governor has only a minor effect)\n",
    );
    Ok(out)
}

// ---------------------------------------------------------------------
// §6.6 — performance overhead of HARP
// ---------------------------------------------------------------------

/// Overhead study result.
#[derive(Debug, Clone)]
pub struct OverheadResult {
    /// Mean single-application overhead (fraction, e.g. 0.01 = 1 %).
    pub single: f64,
    /// Mean multi-application overhead.
    pub multi: f64,
}

/// Runs the §6.6 overhead study: HARP with all machinery running but
/// actuation disabled, compared to plain CFS.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn overhead(singles: &[Scenario], multis: &[Scenario], reps: u32) -> Result<OverheadResult> {
    // One flat job set across both groups: per scenario the CFS baseline
    // then the overhead-only variant, folded in enumeration order.
    let opts = RunOptions::default();
    let mut jobs = Vec::new();
    for s in singles.iter().chain(multis) {
        for kind in [ManagerKind::Cfs, ManagerKind::HarpOverheadOnly] {
            jobs.extend(repetition_jobs(
                "tab_overhead",
                Platform::RaptorLake,
                s,
                kind,
                &opts,
                reps,
            ));
        }
    }
    let metrics = run_jobs(&jobs)?;

    let mut groups = metrics.chunks(reps.max(1) as usize);
    let mut measure = |n: usize| -> f64 {
        let mut overheads = Vec::new();
        for _ in 0..n {
            let base = fold_repetitions(groups.next().expect("CFS group per scenario"));
            let taxed = fold_repetitions(groups.next().expect("taxed group per scenario"));
            overheads.push((taxed.makespan_s / base.makespan_s - 1.0).max(0.0));
        }
        overheads.iter().sum::<f64>() / overheads.len().max(1) as f64
    };
    Ok(OverheadResult {
        single: measure(singles.len()),
        multi: measure(multis.len()),
    })
}

/// Runs and renders the overhead table.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn overhead_table(singles: &[Scenario], multis: &[Scenario], reps: u32) -> Result<String> {
    let r = overhead(singles, multis, reps)?;
    Ok(format!(
        "§6.6: performance overhead of HARP (monitoring + exploration +\n\
         communication, actuation disabled)\n\n\
         \x20 single-application scenarios: {:.2}%   (paper: <1%)\n\
         \x20 multi-application scenarios:  {:.2}%   (paper: ≈2.5%)\n",
        r.single * 100.0,
        r.multi * 100.0
    ))
}

// ---------------------------------------------------------------------
// §5.1 — energy-attribution accuracy
// ---------------------------------------------------------------------

/// A manager that only samples counters and runs the energy attribution —
/// used to score attribution accuracy against the simulator ground truth.
struct AttributionProbe {
    att: EnergyAttributor,
    last_energy: f64,
    last_cpu: HashMap<AppId, Vec<f64>>,
    last_t: u64,
    results: Vec<(String, f64, f64)>, // (app, attributed, truth)
    truths: HashMap<AppId, String>,
}

impl AttributionProbe {
    fn new(hw: &harp_platform::HardwareDescription) -> Self {
        AttributionProbe {
            att: EnergyAttributor::dynamic_only(hw),
            last_energy: 0.0,
            last_cpu: HashMap::new(),
            last_t: 0,
            results: Vec::new(),
            truths: HashMap::new(),
        }
    }

    fn sample(&mut self, st: &mut SimState) {
        let now = st.now();
        let dt = (now - self.last_t) as f64 / 1e9;
        if dt <= 0.0 {
            return;
        }
        self.last_t = now;
        let e = st.package_energy();
        let de = e - self.last_energy;
        self.last_energy = e;
        let mut deltas = Vec::new();
        for &app in st.app_ids() {
            let cpu = st.app_cpu_time(app);
            let prev = self
                .last_cpu
                .get(&app)
                .cloned()
                .unwrap_or_else(|| vec![0.0; cpu.len()]);
            let d: Vec<f64> = cpu.iter().zip(&prev).map(|(a, b)| a - b).collect();
            self.last_cpu.insert(app, cpu);
            deltas.push((app, d));
        }
        self.att.update(dt, de, &deltas);
    }
}

impl Manager for AttributionProbe {
    fn on_event(&mut self, st: &mut SimState, ev: MgrEvent) {
        match ev {
            MgrEvent::AppStarted { app, name } => {
                self.truths.insert(app, name);
                st.set_timer(st.now() + 10_000_000, 1);
            }
            MgrEvent::Timer { .. } => {
                self.sample(st);
                if !st.app_ids().is_empty() {
                    st.set_timer(st.now() + 10_000_000, 1);
                }
            }
            MgrEvent::AppExited { app } => {
                self.sample(st);
                let name = self.truths.remove(&app).unwrap_or_default();
                let attributed = self.att.attributed_energy(app);
                let truth = st.true_app_energy(app);
                self.results.push((name, attributed, truth));
                self.att.remove(app);
            }
            _ => {}
        }
    }
}

/// Runs the attribution-accuracy study over multi-application scenarios and
/// returns the overall MAPE (percent).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn attribution_mape(scenarios: &[Scenario]) -> Result<f64> {
    let hw = Platform::RaptorLake.hardware();
    let mut attributed = Vec::new();
    let mut truth = Vec::new();
    for s in scenarios {
        let mut probe = AttributionProbe::new(&hw);
        run_with_manager(Platform::RaptorLake, s, &RunOptions::default(), &mut probe)?;
        for (_, a, t) in &probe.results {
            if *t > 0.0 {
                attributed.push(*a);
                truth.push(*t);
            }
        }
    }
    harp_model::metrics::mape(&attributed, &truth)
}

/// Runs and renders the §5.1 validation.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn attribution_table(scenarios: &[Scenario]) -> Result<String> {
    let m = attribution_mape(scenarios)?;
    Ok(format!(
        "§5.1: per-application energy-attribution accuracy\n\n\
         \x20 MAPE vs ground truth across {} multi-application scenarios: {:.2}%\n\
         \x20 (paper: 8.76% vs isolated executions)\n",
        scenarios.len(),
        m
    ))
}

// ---------------------------------------------------------------------
// Headline summary
// ---------------------------------------------------------------------

/// Computes the headline numbers (abstract: 12 % faster, 28 % less energy
/// on average across both systems) from full Fig. 6 + Fig. 7 runs.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn headline(fig6_opts: &fig6::Fig6Options, fig7_opts: &fig7::Fig7Options) -> Result<String> {
    let rows6 = fig6::run_rows(fig6_opts)?;
    let rows7 = fig7::run_rows(fig7_opts)?;
    headline_from_rows(&rows6, &rows7)
}

/// Renders the headline summary from already-computed Fig. 6 and Fig. 7
/// rows (the `headline_summary` binary computes the rows itself so it can
/// time them serial-vs-parallel and compare the outputs).
///
/// # Errors
///
/// Returns an error if the rows are empty (no geometric mean).
pub fn headline_from_rows(
    rows6: &[fig6::ScenarioRow],
    rows7: &[fig7::ScenarioRow],
) -> Result<String> {
    // Intel: the online-HARP variant (single + multi); Odroid: offline.
    let mut times = Vec::new();
    let mut energies = Vec::new();
    for r in rows6 {
        if let Some((_, imp)) = r.variants.iter().find(|(k, _)| *k == ManagerKind::Harp) {
            times.push(imp.time);
            energies.push(imp.energy);
        }
    }
    for r in rows7 {
        times.push(r.harp.time);
        energies.push(r.harp.energy);
    }
    let t = geometric_mean(&times)?;
    let e = geometric_mean(&energies)?;
    Ok(format!(
        "Headline (abstract): average improvement of HARP across both systems\n\n\
         \x20 execution time: {:+.1}%   (paper: ≈ +12%)\n\
         \x20 energy:         {:+.1}%   (paper: ≈ +28%)\n",
        (t - 1.0) * 100.0,
        (e - 1.0) * 100.0
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_workload::scenarios;

    #[test]
    fn overhead_is_small() {
        let singles = vec![Scenario::of(Platform::RaptorLake, &["ep"])];
        let multis = vec![Scenario::of(Platform::RaptorLake, &["cg", "ft"])];
        let r = overhead(&singles, &multis, 1).unwrap();
        assert!(r.single < 0.05, "single overhead {:.3}", r.single);
        assert!(r.multi < 0.08, "multi overhead {:.3}", r.multi);
    }

    #[test]
    fn attribution_accuracy_matches_paper_ballpark() {
        let scen = vec![scenarios::intel_multi()[0].clone()];
        let m = attribution_mape(&scen).unwrap();
        assert!(m < 25.0, "attribution MAPE {m:.1}% too large");
    }
}
