//! Regenerates Figure 6: improvement factors over CFS on Raptor Lake.
use harp_bench::fig6::{run, Fig6Options};
fn main() {
    harp_bench::cache::set_spill_dir(harp_bench::cache::default_spill());
    let reduced = std::env::args().any(|a| a == "--reduced");
    let opts = if reduced {
        Fig6Options::reduced()
    } else {
        Fig6Options::default()
    };
    match run(&opts) {
        Ok(table) => print!("{table}"),
        Err(e) => {
            eprintln!("fig6_intel: {e}");
            std::process::exit(1);
        }
    }
}
