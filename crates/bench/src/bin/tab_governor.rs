//! Regenerates the §6.3.3 frequency-governor study.
use harp_bench::tables::{governor_table, GovernorOptions};
fn main() {
    harp_bench::cache::set_spill_dir(harp_bench::cache::default_spill());
    let reduced = std::env::args().any(|a| a == "--reduced");
    let opts = if reduced {
        GovernorOptions::reduced()
    } else {
        GovernorOptions::default()
    };
    match governor_table(&opts) {
        Ok(table) => print!("{table}"),
        Err(e) => {
            eprintln!("tab_governor: {e}");
            std::process::exit(1);
        }
    }
}
