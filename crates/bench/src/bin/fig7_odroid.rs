//! Regenerates Figure 7: HARP (Offline) vs EAS on the Odroid XU3-E.
use harp_bench::fig7::{run, Fig7Options};
fn main() {
    harp_bench::cache::set_spill_dir(harp_bench::cache::default_spill());
    let reduced = std::env::args().any(|a| a == "--reduced");
    let opts = if reduced {
        Fig7Options::reduced()
    } else {
        Fig7Options::default()
    };
    match run(&opts) {
        Ok(table) => print!("{table}"),
        Err(e) => {
            eprintln!("fig7_odroid: {e}");
            std::process::exit(1);
        }
    }
}
