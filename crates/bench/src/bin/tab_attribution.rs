//! Regenerates the §5.1 energy-attribution validation.
use harp_bench::tables::attribution_table;
use harp_workload::scenarios;
fn main() {
    let reduced = std::env::args().any(|a| a == "--reduced");
    let multis = if reduced {
        scenarios::intel_multi()[..2].to_vec()
    } else {
        scenarios::intel_multi()
    };
    match attribution_table(&multis) {
        Ok(table) => print!("{table}"),
        Err(e) => {
            eprintln!("tab_attribution: {e}");
            std::process::exit(1);
        }
    }
}
