//! Regenerates the §6.6 overhead study.
use harp_bench::tables::overhead_table;
use harp_workload::scenarios;
fn main() {
    harp_bench::cache::set_spill_dir(harp_bench::cache::default_spill());
    let reduced = std::env::args().any(|a| a == "--reduced");
    let (singles, multis) = if reduced {
        (
            scenarios::intel_single()[..3].to_vec(),
            scenarios::intel_multi()[..2].to_vec(),
        )
    } else {
        (scenarios::intel_single(), scenarios::intel_multi())
    };
    match overhead_table(&singles, &multis, if reduced { 1 } else { 3 }) {
        Ok(table) => print!("{table}"),
        Err(e) => {
            eprintln!("tab_overhead: {e}");
            std::process::exit(1);
        }
    }
    // Real solver cost next to the modeled overhead (printed after the
    // table so the rendered study stays wall-clock free).
    let s = harp_alloc::stats::snapshot();
    println!(
        "\nSolver: {} solves in {:.1} ms wall ({} memo hits, {} certified early exits, \
         {} full, {} dominated options pruned)",
        s.solves,
        s.wall_ms(),
        s.memo_hits,
        s.certified,
        s.full,
        s.pruned_options
    );
}
