//! Regenerates Figure 5: the regression-model comparison.
use harp_bench::fig5::{run, Fig5Options};
fn main() {
    let reduced = std::env::args().any(|a| a == "--reduced");
    let opts = if reduced {
        Fig5Options::reduced()
    } else {
        Fig5Options::default()
    };
    match run(&opts) {
        Ok(table) => print!("{table}"),
        Err(e) => {
            eprintln!("fig5_models: {e}");
            std::process::exit(1);
        }
    }
}
