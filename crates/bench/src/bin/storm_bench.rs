//! Connection-storm benchmark driver: boots a multi-shard reactor
//! daemon, churns session lifecycles through a sliding concurrency
//! window, and merges a `storm` section into `BENCH_harness.json`
//! (see DESIGN.md §12 and EXPERIMENTS.md for methodology).
//!
//! Tiers: 512 and 10 000 sessions by default; `HARP_STORM_QUICK=1`
//! runs the 512-session mini-storm alone (the ci.sh gate);
//! `HARP_STORM_100K=1` adds the 100 000-session tier. The window
//! defaults to 64 concurrent connections (`HARP_STORM_WINDOW`), the
//! daemon to 4 reactor shards (`HARP_STORM_SHARDS`). Output path:
//! `HARP_STORM_JSON`, else `BENCH_harness.json`; all other keys in an
//! existing file are preserved (read-modify-write).
//!
//! Exits non-zero when any tier loses or duplicates a directive, any
//! session errors, the global collector drops an event, or the
//! 10k-tier throughput falls below half the 512-tier rate.

use harp_bench::storm;
use harp_daemon::{DaemonConfig, HarpDaemon};
use harp_platform::HardwareDescription;
use serde_json::JsonValue as V;

fn obj(fields: Vec<(&str, V)>) -> V {
    V::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Inserts or replaces `key` in an object (no-op on non-objects).
fn set_key(doc: &mut V, key: &str, val: V) {
    if let V::Obj(fields) = doc {
        if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
            slot.1 = val;
        } else {
            fields.push((key.to_string(), val));
        }
    }
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| v == "1")
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let quick = env_flag("HARP_STORM_QUICK");
    let tiers: Vec<u64> = if quick {
        vec![512]
    } else if env_flag("HARP_STORM_100K") {
        vec![512, 10_000, 100_000]
    } else {
        vec![512, 10_000]
    };
    let window = env_usize("HARP_STORM_WINDOW", 64);
    let shards = env_usize("HARP_STORM_SHARDS", 4);

    // Tracing stays on for the whole storm: the bench doubles as a
    // soak test that the event pipeline keeps up (events_dropped == 0
    // is gated downstream).
    harp_obs::enable_global();

    let socket = std::env::temp_dir().join(format!("harp-storm-{}.sock", std::process::id()));
    let hw = HardwareDescription::raptor_lake();
    let daemon = match HarpDaemon::start(DaemonConfig::new(&socket, hw).with_shards(shards)) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("storm_bench: cannot start daemon: {e}");
            std::process::exit(1);
        }
    };

    let mut results = Vec::new();
    for &n in &tiers {
        let r = storm::run_tier(&socket, n, window);
        println!(
            "storm {n:>6} sessions: {:.1}/s over {:.2}s (acks {}, activates {}, \
             lost {}, duplicated {}, errors {})",
            r.sessions_per_sec,
            r.wall_s,
            r.totals.acks,
            r.totals.activates,
            r.totals.lost,
            r.totals.duplicated,
            r.totals.errors
        );
        results.push((n, r));
    }
    let shard_counters = storm::shard_snapshot();
    daemon.shutdown();
    let _ = std::fs::remove_file(&socket);

    harp_obs::disable_global();
    let dump = harp_obs::dump_global(false);
    let events_recorded = harp_obs::render::parse_dump(&dump)
        .map(|d| d.recorded)
        .unwrap_or(0);
    let events_dropped = harp_obs::global_dropped();
    println!(
        "storm shards: accepted {:?}, frames {}, flushes {}, hangups {} \
         ({events_recorded} events traced, {events_dropped} dropped)",
        shard_counters.accepted,
        shard_counters.frames,
        shard_counters.flushes,
        shard_counters.hangups
    );

    let tiers_json: Vec<V> = results
        .iter()
        .map(|(n, r)| {
            obj(vec![
                ("sessions", V::UInt(*n)),
                ("wall_s", V::Float((r.wall_s * 1000.0).round() / 1000.0)),
                (
                    "sessions_per_sec",
                    V::Float((r.sessions_per_sec * 10.0).round() / 10.0),
                ),
                ("acks", V::UInt(r.totals.acks)),
                ("activates", V::UInt(r.totals.activates)),
                ("lost", V::UInt(r.totals.lost)),
                ("duplicated", V::UInt(r.totals.duplicated)),
                ("errors", V::UInt(r.totals.errors)),
            ])
        })
        .collect();
    let storm_section = obj(vec![
        ("quick", V::Bool(quick)),
        ("window", V::UInt(window as u64)),
        ("shards", V::UInt(shards as u64)),
        ("tiers", V::Arr(tiers_json)),
        (
            "shard_counters",
            obj(vec![
                (
                    "accepted",
                    V::Arr(
                        shard_counters
                            .accepted
                            .iter()
                            .map(|&c| V::UInt(c))
                            .collect(),
                    ),
                ),
                ("frames", V::UInt(shard_counters.frames)),
                ("flushes", V::UInt(shard_counters.flushes)),
                ("hangups", V::UInt(shard_counters.hangups)),
            ]),
        ),
        ("events_recorded", V::UInt(events_recorded)),
        ("events_dropped", V::UInt(events_dropped)),
    ]);

    let path = std::env::var("HARP_STORM_JSON")
        .or_else(|_| std::env::var("HARP_BENCH_JSON"))
        .unwrap_or_else(|_| "BENCH_harness.json".to_string());
    let mut doc: V = std::fs::read_to_string(&path)
        .ok()
        .and_then(|t| serde_json::from_str(&t).ok())
        .unwrap_or(V::Obj(Vec::new()));
    if !matches!(doc, V::Obj(_)) {
        doc = V::Obj(Vec::new());
    }
    set_key(&mut doc, "storm", storm_section);
    let mut rendered = serde_json::to_string_pretty(&doc).expect("serializable");
    rendered.push('\n');
    if let Err(e) = std::fs::write(&path, rendered) {
        eprintln!("storm_bench: cannot write {path}: {e}");
        std::process::exit(1);
    }

    let mut failed = false;
    for (n, r) in &results {
        if !r.clean() {
            eprintln!(
                "storm_bench: oracle violated at {n} sessions \
                 (lost {}, duplicated {}, errors {})",
                r.totals.lost, r.totals.duplicated, r.totals.errors
            );
            failed = true;
        }
    }
    if events_dropped > 0 {
        eprintln!("storm_bench: global collector dropped {events_dropped} events");
        failed = true;
    }
    let rate = |want: u64| {
        results
            .iter()
            .find(|(n, _)| *n == want)
            .map(|(_, r)| r.sessions_per_sec)
    };
    if let (Some(base), Some(big)) = (rate(512), rate(10_000)) {
        if big < base * 0.5 {
            eprintln!(
                "storm_bench: 10k-session throughput {big:.1}/s fell below half \
                 the 512-session rate {base:.1}/s"
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
