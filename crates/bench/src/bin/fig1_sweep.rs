//! Regenerates Figure 1: configuration sweeps of `ep.C` and `mg.C` with
//! Pareto-optimal points. Pass `--reduced` for a quick run.
fn main() {
    let reduced = std::env::args().any(|a| a == "--reduced");
    let horizon = if reduced { 120.0 } else { 600.0 };
    match harp_bench::fig1::run(horizon) {
        Ok(table) => print!("{table}"),
        Err(e) => {
            eprintln!("fig1_sweep: {e}");
            std::process::exit(1);
        }
    }
}
