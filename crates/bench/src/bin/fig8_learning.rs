//! Regenerates Figure 8: behaviour during the learning phase plus
//! time-to-stable statistics.
use harp_bench::fig8::{run, Fig8Options};
fn main() {
    let reduced = std::env::args().any(|a| a == "--reduced");
    let opts = if reduced {
        Fig8Options::reduced()
    } else {
        Fig8Options::default()
    };
    match run(&opts) {
        Ok(table) => print!("{table}"),
        Err(e) => {
            eprintln!("fig8_learning: {e}");
            std::process::exit(1);
        }
    }
}
