//! Trace-engine benchmark driver: measures the seeded workload generator
//! at 10k+ arrivals per simulated window, the canonical-text round trip,
//! and whole-trace oracle-checked replays through `harp-testkit`, then
//! merges a `trace_bench` section into `BENCH_harness.json` (see
//! DESIGN.md §13 and EXPERIMENTS.md for methodology).
//!
//! Tiers: generation at 10 000 and 50 000 arrivals per shape by default;
//! `HARP_TRACE_BENCH_QUICK=1` runs the 10k generation tier and a smaller
//! replay alone (the ci.sh gate). Output path: `HARP_TRACE_BENCH_JSON`,
//! else `HARP_BENCH_JSON`, else `BENCH_harness.json`; all other keys in
//! an existing file are preserved (read-modify-write).
//!
//! Exits non-zero when any generated trace fails to round-trip through
//! the canonical text, any replay violates a testkit oracle, or two
//! replays of the same trace disagree on the RM state fingerprint.

use harp_testkit::replay::replay_trace_with;
use harp_workload::{generate_trace, Trace, TraceGenConfig, TraceShape};
use serde_json::JsonValue as V;
use std::time::Instant;

fn obj(fields: Vec<(&str, V)>) -> V {
    V::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Inserts or replaces `key` in an object (no-op on non-objects).
fn set_key(doc: &mut V, key: &str, val: V) {
    if let V::Obj(fields) = doc {
        if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
            slot.1 = val;
        } else {
            fields.push((key.to_string(), val));
        }
    }
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| v == "1")
}

const SHAPES: [TraceShape; 3] = [
    TraceShape::Diurnal,
    TraceShape::FlashCrowd,
    TraceShape::HeavyTailChurn,
];

fn main() {
    let quick = env_flag("HARP_TRACE_BENCH_QUICK");
    let gen_tiers: &[u32] = if quick { &[10_000] } else { &[10_000, 50_000] };
    let replay_arrivals: u32 = if quick { 60 } else { 200 };
    let mut failed = false;

    // Generation + canonical round trip, per shape and arrival tier.
    let mut gen_rows = Vec::new();
    for shape in SHAPES {
        for &arrivals in gen_tiers {
            let cfg = TraceGenConfig {
                seed: 7,
                arrivals,
                shape,
                ..TraceGenConfig::default()
            };
            let t0 = Instant::now();
            let trace = generate_trace(shape.as_str(), &cfg);
            let gen_ns = t0.elapsed().as_nanos() as u64;
            let events = trace.events.len() as u64;

            let t1 = Instant::now();
            let text = trace.to_canonical_text();
            let parsed = Trace::parse(&text);
            let round_trip_ns = t1.elapsed().as_nanos() as u64;
            let round_trip_ok = parsed.as_ref().is_ok_and(|p| *p == trace);
            if !round_trip_ok {
                eprintln!(
                    "trace_bench: {} x{arrivals} failed the canonical round trip",
                    shape.as_str()
                );
                failed = true;
            }
            let events_per_sec = events as f64 * 1e9 / gen_ns.max(1) as f64;
            println!(
                "gen {:>16} x{arrivals:>6}: {events:>6} events in {:.2} ms \
                 ({:.0} events/s, {} bytes canonical)",
                shape.as_str(),
                gen_ns as f64 / 1e6,
                events_per_sec,
                text.len()
            );
            gen_rows.push(obj(vec![
                ("shape", V::Str(shape.as_str().to_string())),
                ("arrivals", V::UInt(arrivals as u64)),
                ("events", V::UInt(events)),
                ("gen_ns", V::UInt(gen_ns)),
                ("events_per_sec", V::Float(events_per_sec.round())),
                ("canonical_bytes", V::UInt(text.len() as u64)),
                ("round_trip_ns", V::UInt(round_trip_ns)),
                ("round_trip_ok", V::Bool(round_trip_ok)),
            ]));
        }
    }

    // Oracle-checked replays, per shape: replay twice, require a clean
    // oracle and a stable fingerprint.
    let mut replay_rows = Vec::new();
    for shape in SHAPES {
        let cfg = TraceGenConfig {
            seed: 7,
            arrivals: replay_arrivals,
            window_ns: 20_000_000_000,
            shape,
            ..TraceGenConfig::default()
        };
        let trace = generate_trace(shape.as_str(), &cfg);
        let events = trace.events.len() as u64;
        let t0 = Instant::now();
        let report = replay_trace_with(&trace, 0);
        let replay_ns = t0.elapsed().as_nanos() as u64;
        let again = replay_trace_with(&trace, 0);
        let deterministic = again == report;
        if !report.passed() {
            eprintln!(
                "trace_bench: {} replay violated the oracle: {:?}",
                shape.as_str(),
                &report.violations[..report.violations.len().min(3)]
            );
            failed = true;
        }
        if !deterministic {
            eprintln!(
                "trace_bench: {} replay fingerprint drifted between runs \
                 ({} vs {})",
                shape.as_str(),
                report.fingerprint_hex(),
                again.fingerprint_hex()
            );
            failed = true;
        }
        let events_per_sec = events as f64 * 1e9 / replay_ns.max(1) as f64;
        println!(
            "replay {:>16} x{replay_arrivals:>4}: {events:>5} events, {} ticks, \
             {} directives in {:.1} ms ({:.0} events/s, fingerprint {})",
            shape.as_str(),
            report.ticks,
            report.directives,
            replay_ns as f64 / 1e6,
            events_per_sec,
            report.fingerprint_hex()
        );
        replay_rows.push(obj(vec![
            ("shape", V::Str(shape.as_str().to_string())),
            ("arrivals", V::UInt(replay_arrivals as u64)),
            ("events", V::UInt(events)),
            ("ticks", V::UInt(report.ticks as u64)),
            ("directives", V::UInt(report.directives as u64)),
            ("replay_ns", V::UInt(replay_ns)),
            ("events_per_sec", V::Float(events_per_sec.round())),
            ("fingerprint", V::Str(report.fingerprint_hex())),
            ("violations", V::UInt(report.violations.len() as u64)),
            ("quiesced", V::Bool(report.quiesced)),
            ("deterministic", V::Bool(deterministic)),
        ]));
    }

    let section = obj(vec![
        ("quick", V::Bool(quick)),
        ("generation", V::Arr(gen_rows)),
        ("replay", V::Arr(replay_rows)),
    ]);

    let path = std::env::var("HARP_TRACE_BENCH_JSON")
        .or_else(|_| std::env::var("HARP_BENCH_JSON"))
        .unwrap_or_else(|_| "BENCH_harness.json".to_string());
    let mut doc: V = std::fs::read_to_string(&path)
        .ok()
        .and_then(|t| serde_json::from_str(&t).ok())
        .unwrap_or(V::Obj(Vec::new()));
    if !matches!(doc, V::Obj(_)) {
        doc = V::Obj(Vec::new());
    }
    set_key(&mut doc, "trace_bench", section);
    let mut rendered = serde_json::to_string_pretty(&doc).expect("serializable");
    rendered.push('\n');
    if let Err(e) = std::fs::write(&path, rendered) {
        eprintln!("trace_bench: cannot write {path}: {e}");
        std::process::exit(1);
    }

    if failed {
        std::process::exit(1);
    }
}
