//! Regenerates the abstract's headline numbers from full Fig. 6 + Fig. 7
//! runs (slow; pass `--reduced` for a coarse estimate).
use harp_bench::tables::headline;
use harp_bench::{fig6::Fig6Options, fig7::Fig7Options};
fn main() {
    let reduced = std::env::args().any(|a| a == "--reduced");
    let (o6, o7) = if reduced {
        (Fig6Options::reduced(), Fig7Options::reduced())
    } else {
        (Fig6Options::default(), Fig7Options::default())
    };
    match headline(&o6, &o7) {
        Ok(table) => print!("{table}"),
        Err(e) => {
            eprintln!("headline_summary: {e}");
            std::process::exit(1);
        }
    }
}
