//! Regenerates the abstract's headline numbers from full Fig. 6 + Fig. 7
//! runs (slow; pass `--reduced` for a coarse estimate).
//!
//! The binary doubles as the harness's own benchmark: it computes both
//! figures twice — once serially (1 worker) and once on the full worker
//! pool — verifies the rendered tables are byte-identical, and writes the
//! wall-clock and profile-cache statistics to `BENCH_harness.json`
//! (machine-readable; path overridable via `HARP_BENCH_JSON`). Both
//! passes start from a cold in-memory cache with disk spilling disabled,
//! so the comparison measures the worker pool alone. Timings are
//! median-of-N after an untimed warm-up pass (one-shot A/B timing made
//! the later configuration look faster than the earlier one).
use harp_bench::tables::headline_from_rows;
use harp_bench::{cache, fig6, fig7, jobs};
use std::time::Instant;

struct Pass {
    fig6_s: f64,
    fig7_s: f64,
    hits: u64,
    misses: u64,
    rows6: Vec<fig6::ScenarioRow>,
    rows7: Vec<fig7::ScenarioRow>,
}

fn run_pass(o6: &fig6::Fig6Options, o7: &fig7::Fig7Options) -> Result<Pass, harp_types::HarpError> {
    cache::reset();
    let t = Instant::now();
    let rows6 = fig6::run_rows(o6)?;
    let fig6_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let rows7 = fig7::run_rows(o7)?;
    let fig7_s = t.elapsed().as_secs_f64();
    Ok(Pass {
        fig6_s,
        fig7_s,
        hits: cache::hits(),
        misses: cache::misses(),
        rows6,
        rows7,
    })
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

/// Runs `reps` passes and reports the median per-figure wall time (rows
/// and cache statistics come from the last pass; every pass produces
/// identical rows by construction). One-shot timings made the A/B
/// sections below order-sensitive: whichever configuration ran first
/// paid the process's warm-up (first-touch pages, lazy statics) and the
/// comparison read as a spurious speedup for the later one — the
/// committed artifact once claimed tracing was 24% *faster* than not
/// tracing.
fn run_pass_median(
    reps: usize,
    o6: &fig6::Fig6Options,
    o7: &fig7::Fig7Options,
) -> Result<Pass, harp_types::HarpError> {
    let mut f6 = Vec::new();
    let mut f7 = Vec::new();
    let mut last = None;
    for _ in 0..reps.max(1) {
        let p = run_pass(o6, o7)?;
        f6.push(p.fig6_s);
        f7.push(p.fig7_s);
        last = Some(p);
    }
    let mut p = last.expect("reps >= 1");
    p.fig6_s = median(f6);
    p.fig7_s = median(f7);
    Ok(p)
}

fn main() {
    let reduced = std::env::args().any(|a| a == "--reduced");
    let (o6, o7) = if reduced {
        (fig6::Fig6Options::reduced(), fig7::Fig7Options::reduced())
    } else {
        (fig6::Fig6Options::default(), fig7::Fig7Options::default())
    };

    // Reduced passes are seconds, so a median-of-3 is affordable; the
    // full figures take minutes per pass and rely on the warm-up pass
    // alone.
    let reps = if reduced { 3 } else { 1 };

    // Cold cache, no spill: time the worker pool itself.
    cache::set_spill_dir(None);
    jobs::set_worker_override(Some(1));
    // Untimed warm-up so the first timed configuration doesn't absorb
    // process start-up costs (see `run_pass_median`).
    if let Err(e) = run_pass(&o6, &o7) {
        eprintln!("headline_summary (warm-up pass): {e}");
        std::process::exit(1);
    }
    let serial = match run_pass_median(reps, &o6, &o7) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("headline_summary (serial pass): {e}");
            std::process::exit(1);
        }
    };
    jobs::set_worker_override(None);
    let workers = jobs::worker_count();
    let parallel = match run_pass_median(reps, &o6, &o7) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("headline_summary (parallel pass): {e}");
            std::process::exit(1);
        }
    };

    // Third configuration with the harp-obs global collector on: records
    // what end-to-end tracing costs the harness, and that it cannot
    // perturb the simulated results.
    harp_obs::enable_global();
    let traced = match run_pass_median(reps, &o6, &o7) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("headline_summary (traced pass): {e}");
            std::process::exit(1);
        }
    };
    harp_obs::disable_global();
    let telemetry = harp_obs::dump_global(false);
    let events_recorded = harp_obs::render::parse_dump(&telemetry)
        .map(|d| d.recorded)
        .unwrap_or(0);
    let events_dropped = harp_obs::global_dropped();
    harp_obs::reset_global();

    let identical = fig6::render(&serial.rows6) == fig6::render(&parallel.rows6)
        && fig7::render(&serial.rows7) == fig7::render(&parallel.rows7);
    if !identical {
        eprintln!("headline_summary: parallel output differs from serial output");
    }
    let traced_identical = fig6::render(&traced.rows6) == fig6::render(&parallel.rows6)
        && fig7::render(&traced.rows7) == fig7::render(&parallel.rows7);
    if !traced_identical {
        eprintln!("headline_summary: tracing perturbed the rendered output");
    }

    match headline_from_rows(&parallel.rows6, &parallel.rows7) {
        Ok(table) => print!("{table}"),
        Err(e) => {
            eprintln!("headline_summary: {e}");
            std::process::exit(1);
        }
    }

    let serial_total = serial.fig6_s + serial.fig7_s;
    let parallel_total = parallel.fig6_s + parallel.fig7_s;
    let traced_total = traced.fig6_s + traced.fig7_s;
    let obs_overhead_pct = (traced_total - parallel_total) / parallel_total.max(1e-9) * 100.0;
    // Normalize the tracing cost by event volume: the percentage alone
    // reads as alarming (+33% on a seconds-long reduced run) when the
    // honest unit is "a few microseconds per recorded event".
    let per_event_ns = if events_recorded > 0 {
        (traced_total - parallel_total) * 1e9 / events_recorded as f64
    } else {
        0.0
    };
    println!(
        "\nHarness: serial {serial_total:.1}s vs {workers} workers {parallel_total:.1}s \
         ({:.2}x speedup, outputs {})",
        serial_total / parallel_total.max(1e-9),
        if identical { "identical" } else { "DIFFERENT" }
    );
    println!(
        "Tracing: {traced_total:.1}s with the collector on ({obs_overhead_pct:+.1}%, \
         {per_event_ns:.0} ns/event over {events_recorded} events, \
         {events_dropped} dropped, outputs {})",
        if traced_identical {
            "identical"
        } else {
            "DIFFERENT"
        }
    );
    // Aggregate solver cost across both passes (printed, never rendered
    // into the byte-compared tables).
    let s = harp_alloc::stats::snapshot();
    println!(
        "Solver: {} solves in {:.1} ms wall ({} memo hits, {} certified early exits, {} full)",
        s.solves,
        s.wall_ms(),
        s.memo_hits,
        s.certified,
        s.full
    );

    let json = format!(
        "{{\n  \"reduced\": {reduced},\n  \"workers\": {workers},\n  \"figures\": [\n    \
         {{\"figure\": \"fig6\", \"serial_s\": {:.3}, \"parallel_s\": {:.3}}},\n    \
         {{\"figure\": \"fig7\", \"serial_s\": {:.3}, \"parallel_s\": {:.3}}}\n  ],\n  \
         \"total\": {{\"serial_s\": {serial_total:.3}, \"parallel_s\": {parallel_total:.3}, \
         \"speedup\": {:.3}}},\n  \
         \"cache\": {{\"serial\": {{\"hits\": {}, \"misses\": {}}}, \
         \"parallel\": {{\"hits\": {}, \"misses\": {}}}}},\n  \
         \"obs\": {{\"disabled_s\": {parallel_total:.3}, \"enabled_s\": {traced_total:.3}, \
         \"overhead_pct\": {obs_overhead_pct:.3}, \"per_event_ns\": {per_event_ns:.1}, \
         \"events_recorded\": {events_recorded}, \
         \"events_dropped\": {events_dropped}, \"outputs_identical\": {traced_identical}}},\n  \
         \"outputs_identical\": {identical}\n}}\n",
        serial.fig6_s,
        parallel.fig6_s,
        serial.fig7_s,
        parallel.fig7_s,
        serial_total / parallel_total.max(1e-9),
        serial.hits,
        serial.misses,
        parallel.hits,
        parallel.misses,
    );
    let path =
        std::env::var("HARP_BENCH_JSON").unwrap_or_else(|_| "BENCH_harness.json".to_string());
    // Read-modify-write: the `storm` section belongs to `storm_bench`;
    // regenerating the headline numbers must not erase it.
    let mut doc: serde_json::JsonValue =
        serde_json::from_str(&json).expect("self-built headline JSON parses");
    let prev_storm = std::fs::read_to_string(&path)
        .ok()
        .and_then(|t| serde_json::from_str::<serde_json::JsonValue>(&t).ok())
        .and_then(|prev| prev.get("storm").cloned());
    if let (serde_json::JsonValue::Obj(fields), Some(storm)) = (&mut doc, prev_storm) {
        fields.push(("storm".to_string(), storm));
    }
    let mut rendered = serde_json::to_string_pretty(&doc).expect("serializable");
    rendered.push('\n');
    if let Err(e) = std::fs::write(&path, rendered) {
        eprintln!("headline_summary: cannot write {path}: {e}");
    }
    if !identical || !traced_identical {
        std::process::exit(1);
    }
}
