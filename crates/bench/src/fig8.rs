//! Figure 8: HARP during the learning phase (§6.5).
//!
//! Each scenario runs online with applications restarting continuously; the
//! RM's operating-point tables are snapshotted every 5 s. Each snapshot is
//! then evaluated like an offline profile (scenario re-run, improvement
//! over CFS), and the background stage (learning vs stable) is recorded.
//! The paper reports time-to-stable of 29.8 ± 5.9 s (single-application)
//! and 36.6 ± 8.0 s (multi-application).

use crate::runner::{improvement, run_scenario, Improvement, ManagerKind, RunOptions};
use harp_model::metrics::{mean, std_dev};
use harp_sched::HarpSimManager;
use harp_sim::{LaunchOpts, Manager, MgrEvent, SimConfig, SimState, SimTime, Simulation, SECOND};
use harp_types::{OperatingPointTable, Result};
use harp_workload::{Platform, Scenario};
use std::collections::HashMap;

const SNAP_TIMER: u64 = 0x5AAF;

/// One 5-second snapshot of the learning run.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Snapshot time (seconds since scenario start).
    pub t_s: f64,
    /// Whether every application had reached the stable stage.
    pub all_stable: bool,
    /// The operating-point tables at this moment.
    pub profiles: HashMap<String, OperatingPointTable>,
}

/// Snapshot + evaluated improvement over CFS.
#[derive(Debug, Clone)]
pub struct EvaluatedSnapshot {
    /// Snapshot time (seconds).
    pub t_s: f64,
    /// Whether the RM considered all applications stable.
    pub all_stable: bool,
    /// Improvement of HARP-with-these-tables over CFS.
    pub improvement: Improvement,
}

/// Result of one scenario's learning study.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Scenario name.
    pub scenario: String,
    /// Whether multi-application.
    pub multi: bool,
    /// Evaluated snapshots in time order.
    pub points: Vec<EvaluatedSnapshot>,
    /// Time (seconds) at which all applications first became stable.
    pub time_to_stable_s: Option<f64>,
}

/// Wraps the HARP manager and snapshots its RM state periodically.
struct SnapshotManager {
    inner: HarpSimManager,
    every: SimTime,
    armed: bool,
    snapshots: Vec<Snapshot>,
}

impl SnapshotManager {
    fn new(every: SimTime) -> Self {
        SnapshotManager {
            inner: HarpSimManager::online(),
            every,
            armed: false,
            snapshots: Vec::new(),
        }
    }

    fn take_snapshot(&mut self, st: &SimState) {
        if let Some(rm) = self.inner.rm() {
            self.snapshots.push(Snapshot {
                t_s: st.now() as f64 / 1e9,
                all_stable: rm.all_stable(),
                profiles: rm.snapshot_profiles(),
            });
        }
    }
}

impl Manager for SnapshotManager {
    fn on_event(&mut self, st: &mut SimState, ev: MgrEvent) {
        match ev {
            MgrEvent::Timer { id } if id == SNAP_TIMER => {
                self.take_snapshot(st);
                if !st.app_ids().is_empty() {
                    st.set_timer(st.now() + self.every, SNAP_TIMER);
                }
            }
            ev => {
                if let MgrEvent::AppStarted { .. } = ev {
                    if !self.armed {
                        self.armed = true;
                        st.set_timer(st.now() + self.every, SNAP_TIMER);
                    }
                }
                self.inner.on_event(st, ev);
            }
        }
    }
}

/// Experiment options.
#[derive(Debug, Clone)]
pub struct Fig8Options {
    /// Learning horizon per scenario (simulated seconds).
    pub horizon_s: u64,
    /// Snapshot interval (paper: 5 s).
    pub snapshot_every_s: u64,
    /// Scenarios to study.
    pub scenarios: Vec<(Scenario, bool)>,
}

impl Default for Fig8Options {
    fn default() -> Self {
        let singles = ["bt", "ep", "ft", "lu", "mg"]
            .iter()
            .map(|n| (Scenario::of(Platform::RaptorLake, &[n]), false));
        let multis = [
            vec!["is", "lu"],
            vec!["cg", "ep", "ft"],
            vec!["bt", "cg", "ft", "is", "lu"],
        ]
        .into_iter()
        .map(|names| (Scenario::of(Platform::RaptorLake, &names.to_vec()), true));
        Fig8Options {
            horizon_s: 120,
            snapshot_every_s: 5,
            scenarios: singles.chain(multis).collect(),
        }
    }
}

impl Fig8Options {
    /// Reduced configuration for tests.
    pub fn reduced() -> Self {
        Fig8Options {
            horizon_s: 60,
            snapshot_every_s: 10,
            scenarios: vec![(Scenario::of(Platform::RaptorLake, &["mg"]), false)],
        }
    }
}

/// Runs the learning study for one scenario.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn study_scenario(scenario: &Scenario, multi: bool, opts: &Fig8Options) -> Result<Fig8Row> {
    let horizon = opts.horizon_s * SECOND;
    let mut sim = Simulation::new(
        Platform::RaptorLake.hardware(),
        SimConfig {
            seed: 31,
            horizon_ns: Some(horizon),
            governor: harp_platform::Governor::Powersave,
            ..SimConfig::default()
        },
    );
    for app in &scenario.apps {
        sim.add_arrival(
            0,
            app.clone(),
            LaunchOpts::all_hw_threads().restart_until(horizon),
        );
    }
    let mut mgr = SnapshotManager::new(opts.snapshot_every_s * SECOND);
    sim.run(&mut mgr)?;

    // Baseline for the improvement factors.
    let base = run_scenario(
        Platform::RaptorLake,
        scenario,
        ManagerKind::Cfs,
        &RunOptions::default(),
    )?;

    let mut points = Vec::new();
    let mut time_to_stable = None;
    for snap in &mgr.snapshots {
        if snap.all_stable && time_to_stable.is_none() {
            time_to_stable = Some(snap.t_s);
        }
        let vopts = RunOptions {
            profiles: Some(snap.profiles.clone()),
            ..Default::default()
        };
        let metrics = run_scenario(Platform::RaptorLake, scenario, ManagerKind::Harp, &vopts)?;
        points.push(EvaluatedSnapshot {
            t_s: snap.t_s,
            all_stable: snap.all_stable,
            improvement: improvement(base, metrics),
        });
    }
    Ok(Fig8Row {
        scenario: scenario.name.clone(),
        multi,
        points,
        time_to_stable_s: time_to_stable,
    })
}

/// Runs all scenarios of the study. Each scenario's learning run and
/// snapshot evaluations are independent of the others, so scenarios run on
/// the worker pool; rows come back in scenario order, identical to the
/// serial path.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_rows(opts: &Fig8Options) -> Result<Vec<Fig8Row>> {
    crate::jobs::parallel_map(&opts.scenarios, |(scenario, multi)| {
        study_scenario(scenario, *multi, opts)
    })
    .into_iter()
    .collect()
}

/// Mean ± std of time-to-stable for a group.
pub fn time_to_stable_stats(rows: &[Fig8Row], multi: bool) -> Option<(f64, f64)> {
    let times: Vec<f64> = rows
        .iter()
        .filter(|r| r.multi == multi)
        .filter_map(|r| r.time_to_stable_s)
        .collect();
    Some((mean(&times).ok()?, std_dev(&times).ok()?))
}

/// Renders the paper-style series.
pub fn render(rows: &[Fig8Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 8: improvement over CFS during the learning phase\n\
         (each dot = one 5s operating-point-table snapshot; S = stable stage)\n\n",
    );
    for r in rows {
        out.push_str(&format!(
            "--- {}{} ---  (stable after {})\n",
            r.scenario,
            if r.multi { " [multi]" } else { "" },
            r.time_to_stable_s
                .map(|t| format!("{t:.1}s"))
                .unwrap_or_else(|| "never (horizon reached)".into())
        ));
        out.push_str("    t[s]   stage   time-factor  energy-factor\n");
        for p in &r.points {
            out.push_str(&format!(
                "  {:6.1}   {}      {:6.2}       {:6.2}\n",
                p.t_s,
                if p.all_stable { "S" } else { "L" },
                p.improvement.time,
                p.improvement.energy
            ));
        }
        out.push('\n');
    }
    for (multi, label, paper) in [
        (false, "single-application", "29.8 ± 5.9 s"),
        (true, "multi-application", "36.6 ± 8.0 s"),
    ] {
        if let Some((m, s)) = time_to_stable_stats(rows, multi) {
            out.push_str(&format!(
                "time-to-stable {label}: {m:.1} ± {s:.1} s   (paper: {paper})\n"
            ));
        }
    }
    out
}

/// Runs and renders.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run(opts: &Fig8Options) -> Result<String> {
    Ok(render(&run_rows(opts)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learning_progresses_to_stable_and_improves() {
        let rows = run_rows(&Fig8Options::reduced()).unwrap();
        let r = &rows[0];
        assert!(r.points.len() >= 3, "{} snapshots", r.points.len());
        // mg alone should reach the stable stage within the 60s horizon.
        assert!(
            r.time_to_stable_s.is_some(),
            "never stabilized in {} snapshots",
            r.points.len()
        );
        // Late snapshots should beat early ones on energy (learning works).
        let first = &r.points[0];
        let last = r.points.last().unwrap();
        assert!(
            last.improvement.energy >= first.improvement.energy * 0.9,
            "energy got much worse while learning: {first:?} -> {last:?}"
        );
        assert!(
            last.improvement.energy > 1.0,
            "stable mg tables should save energy: {:?}",
            last.improvement
        );
    }
}
