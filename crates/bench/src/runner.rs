//! Scenario execution under each evaluated resource manager.

use harp_platform::Governor;
use harp_sched::{CfsManager, EasManager, HarpManagerConfig, HarpSimManager, ItdManager};
use harp_sim::{LaunchOpts, Manager, RunReport, SimConfig, SimTime, Simulation, SECOND};
use harp_types::{OperatingPointTable, Result};
use harp_workload::{Platform, Scenario};
use std::collections::HashMap;

/// The resource managers compared in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ManagerKind {
    /// Linux CFS (the Fig. 6 baseline).
    Cfs,
    /// Linux EAS (the Fig. 7 baseline).
    Eas,
    /// The ITD-based allocator.
    Itd,
    /// HARP with online-learned (stable) operating points.
    Harp,
    /// HARP with offline-generated operating points.
    HarpOffline,
    /// HARP without application adaptation (*HARP (No Scaling)*).
    HarpNoScaling,
    /// HARP with monitoring and communication but no actuation (§6.6).
    HarpOverheadOnly,
}

impl std::fmt::Display for ManagerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ManagerKind::Cfs => "CFS",
            ManagerKind::Eas => "EAS",
            ManagerKind::Itd => "ITD",
            ManagerKind::Harp => "HARP",
            ManagerKind::HarpOffline => "HARP (Offline)",
            ManagerKind::HarpNoScaling => "HARP (No Scaling)",
            ManagerKind::HarpOverheadOnly => "HARP (overhead only)",
        };
        f.write_str(s)
    }
}

/// Profiles (operating-point tables keyed by application name) preloaded
/// into HARP variants.
pub type ProfileStore = HashMap<String, OperatingPointTable>;

/// Metrics of one scenario execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunMetrics {
    /// Scenario makespan in seconds.
    pub makespan_s: f64,
    /// Total package energy in joules.
    pub energy_j: f64,
}

impl RunMetrics {
    fn from_report(r: &RunReport) -> Self {
        RunMetrics {
            makespan_s: r.makespan_s(),
            energy_j: r.total_energy_j,
        }
    }
}

/// Improvement factors over a baseline (the paper's y-axes): `>1` means the
/// variant is faster / consumes less energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Improvement {
    /// Execution-time improvement factor.
    pub time: f64,
    /// Energy improvement factor.
    pub energy: f64,
}

/// Computes improvement factors of `variant` over `baseline`.
pub fn improvement(baseline: RunMetrics, variant: RunMetrics) -> Improvement {
    Improvement {
        time: baseline.makespan_s / variant.makespan_s,
        energy: baseline.energy_j / variant.energy_j,
    }
}

/// Options of one scenario execution.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Random seed (per repetition).
    pub seed: u64,
    /// Frequency governor.
    pub governor: Governor,
    /// Profiles for the HARP variants (offline tables or pre-learned).
    pub profiles: Option<ProfileStore>,
    /// Simulation horizon (safety stop).
    pub horizon: Option<SimTime>,
    /// Worker-pool width for the RM's MMKP solver (`0`/`1` = serial;
    /// metrics are bit-identical either way). Defaults to
    /// `HARP_SOLVER_THREADS` when set.
    pub solver_threads: u32,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            seed: 1,
            governor: Governor::Powersave,
            profiles: None,
            horizon: Some(600 * SECOND),
            solver_threads: std::env::var("HARP_SOLVER_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
        }
    }
}

fn sim_for(platform: Platform, scenario: &Scenario, opts: &RunOptions) -> Simulation {
    let mut sim = Simulation::new(
        platform.hardware(),
        SimConfig {
            seed: opts.seed,
            governor: opts.governor,
            horizon_ns: opts.horizon,
            ..SimConfig::default()
        },
    );
    for app in &scenario.apps {
        sim.add_arrival(0, app.clone(), LaunchOpts::all_hw_threads());
    }
    sim
}

fn harp_manager(kind: ManagerKind, opts: &RunOptions, platform: Platform) -> HarpSimManager {
    let mut cfg = HarpManagerConfig::default();
    cfg.rm.solver_threads = opts.solver_threads;
    match kind {
        ManagerKind::Harp => {}
        ManagerKind::HarpOffline => cfg.rm.offline = true,
        ManagerKind::HarpNoScaling => cfg.scaling = false,
        ManagerKind::HarpOverheadOnly => cfg.actuation = false,
        _ => unreachable!("harp_manager called for {kind}"),
    }
    let mut mgr = HarpSimManager::new(cfg);
    if let Some(profiles) = &opts.profiles {
        let rm = mgr.init_rm(platform.hardware());
        for (name, table) in profiles {
            rm.load_profile(name.clone(), table.clone());
        }
    }
    mgr
}

/// Runs one scenario under one manager and returns its metrics.
///
/// # Errors
///
/// Propagates simulation errors (invalid specs).
pub fn run_scenario(
    platform: Platform,
    scenario: &Scenario,
    kind: ManagerKind,
    opts: &RunOptions,
) -> Result<RunMetrics> {
    let mut sim = sim_for(platform, scenario, opts);
    let report = match kind {
        ManagerKind::Cfs => sim.run(&mut CfsManager::new())?,
        ManagerKind::Eas => sim.run(&mut EasManager::new())?,
        ManagerKind::Itd => sim.run(&mut ItdManager::new())?,
        _ => {
            let mut mgr = harp_manager(kind, opts, platform);
            sim.run(&mut mgr)?
        }
    };
    Ok(RunMetrics::from_report(&report))
}

/// Runs a scenario `reps` times with distinct seeds and averages the
/// metrics (the paper averages ten repetitions).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_repeated(
    platform: Platform,
    scenario: &Scenario,
    kind: ManagerKind,
    opts: &RunOptions,
    reps: u32,
) -> Result<RunMetrics> {
    let mut time = 0.0;
    let mut energy = 0.0;
    for rep in 0..reps.max(1) {
        let mut o = opts.clone();
        o.seed = opts.seed.wrapping_add(rep as u64 * 7919);
        let m = run_scenario(platform, scenario, kind, &o)?;
        time += m.makespan_s;
        energy += m.energy_j;
    }
    let n = reps.max(1) as f64;
    Ok(RunMetrics {
        makespan_s: time / n,
        energy_j: energy / n,
    })
}

/// Learns operating points for a scenario by running it online with
/// restarts for `warmup` simulated time, then returns the learned profiles
/// — how the Fig. 6 "HARP" bars obtain their *stable* operating points
/// (§6.3: "we show the performance of HARP with stable operating points").
///
/// # Errors
///
/// Propagates simulation errors.
pub fn learn_profiles(
    platform: Platform,
    scenario: &Scenario,
    warmup: SimTime,
    seed: u64,
) -> Result<ProfileStore> {
    let mut sim = Simulation::new(
        platform.hardware(),
        SimConfig {
            seed,
            governor: Governor::Powersave,
            horizon_ns: Some(warmup),
            ..SimConfig::default()
        },
    );
    for app in &scenario.apps {
        sim.add_arrival(
            0,
            app.clone(),
            LaunchOpts::all_hw_threads().restart_until(warmup),
        );
    }
    let mut mgr = HarpSimManager::online();
    sim.run(&mut mgr)?;
    Ok(mgr
        .rm()
        .map(|rm| rm.snapshot_profiles())
        .unwrap_or_default())
}

/// Convenience: run a scenario under a custom manager (ablations, tests).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_with_manager(
    platform: Platform,
    scenario: &Scenario,
    opts: &RunOptions,
    mgr: &mut dyn Manager,
) -> Result<RunReport> {
    let mut sim = sim_for(platform, scenario, opts);
    sim.run(mgr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_workload::scenarios;

    #[test]
    fn cfs_run_produces_metrics() {
        let sc = Scenario::of(Platform::RaptorLake, &["ep"]);
        let m = run_scenario(
            Platform::RaptorLake,
            &sc,
            ManagerKind::Cfs,
            &RunOptions::default(),
        )
        .unwrap();
        assert!(m.makespan_s > 0.5 && m.makespan_s < 10.0);
        assert!(m.energy_j > 0.0);
    }

    #[test]
    fn improvement_factors_are_ratios() {
        let base = RunMetrics {
            makespan_s: 10.0,
            energy_j: 100.0,
        };
        let var = RunMetrics {
            makespan_s: 5.0,
            energy_j: 200.0,
        };
        let imp = improvement(base, var);
        assert_eq!(imp.time, 2.0);
        assert_eq!(imp.energy, 0.5);
    }

    #[test]
    fn repeated_runs_average() {
        let sc = Scenario::of(Platform::RaptorLake, &["primes"]);
        let m = run_repeated(
            Platform::RaptorLake,
            &sc,
            ManagerKind::Cfs,
            &RunOptions::default(),
            3,
        )
        .unwrap();
        assert!(m.makespan_s > 0.0);
    }

    #[test]
    fn learned_profiles_are_nonempty() {
        let sc = Scenario::of(Platform::RaptorLake, &["mg"]);
        let profiles = learn_profiles(Platform::RaptorLake, &sc, 40 * SECOND, 3).unwrap();
        let table = profiles.get("mg").expect("mg profile learned");
        assert!(
            table.measured_count() >= 5,
            "only {} measured points",
            table.measured_count()
        );
    }

    #[test]
    fn harp_beats_cfs_on_a_multi_scenario() {
        // End-to-end sanity for the harness: a memory+compute pair, HARP
        // with learned points vs CFS.
        let sc = &scenarios::intel_multi()[2]; // cg+ep+ft
        let opts = RunOptions::default();
        let base = run_scenario(Platform::RaptorLake, sc, ManagerKind::Cfs, &opts).unwrap();
        let profiles = learn_profiles(Platform::RaptorLake, sc, 90 * SECOND, 5).unwrap();
        let mut opts2 = opts.clone();
        opts2.profiles = Some(profiles);
        let harp = run_scenario(Platform::RaptorLake, sc, ManagerKind::Harp, &opts2).unwrap();
        let imp = improvement(base, harp);
        assert!(
            imp.energy > 1.0,
            "HARP should save energy on cg+ep+ft: {imp:?}"
        );
    }
}
