//! Figure 6: improvement factors over CFS on the Intel Raptor Lake machine
//! (§6.3) — ITD, HARP (stable online-learned points), HARP (Offline), and
//! HARP (No Scaling), for every single- and multi-application scenario,
//! with geometric means per group.

use crate::dse::offline_profiles;
use crate::jobs::{fold_repetitions, parallel_map, repetition_jobs, run_jobs};
use crate::runner::{improvement, Improvement, ManagerKind, ProfileStore, RunOptions};
use harp_model::metrics::geometric_mean;
use harp_sim::SECOND;
use harp_types::Result;
use harp_workload::{scenarios, Platform, Scenario};

/// Experiment options.
#[derive(Debug, Clone)]
pub struct Fig6Options {
    /// Repetitions per scenario (paper: 10).
    pub reps: u32,
    /// Online-learning warmup per scenario (simulated seconds).
    pub warmup_s: u64,
    /// Measurement horizon per DSE configuration (simulated seconds).
    pub dse_horizon_s: f64,
    /// Single-application scenarios.
    pub singles: Vec<Scenario>,
    /// Multi-application scenarios.
    pub multis: Vec<Scenario>,
}

impl Default for Fig6Options {
    fn default() -> Self {
        Fig6Options {
            reps: 3,
            warmup_s: 240,
            dse_horizon_s: 600.0,
            singles: scenarios::intel_single(),
            multis: scenarios::intel_multi(),
        }
    }
}

impl Fig6Options {
    /// A reduced configuration for tests and micro-benchmarks.
    pub fn reduced() -> Self {
        Fig6Options {
            reps: 1,
            warmup_s: 90,
            dse_horizon_s: 600.0,
            singles: vec![
                Scenario::of(Platform::RaptorLake, &["mg"]),
                Scenario::of(Platform::RaptorLake, &["binpack"]),
            ],
            multis: vec![Scenario::of(Platform::RaptorLake, &["cg", "ep", "ft"])],
        }
    }
}

/// Result of one scenario: improvement factors of each variant over CFS.
#[derive(Debug, Clone)]
pub struct ScenarioRow {
    /// Scenario name.
    pub scenario: String,
    /// Whether it is a multi-application scenario.
    pub multi: bool,
    /// CFS makespan (the gray boxes of the paper's figure).
    pub cfs_makespan_s: f64,
    /// `(variant, improvement over CFS)` in presentation order.
    pub variants: Vec<(ManagerKind, Improvement)>,
}

const VARIANTS: [ManagerKind; 4] = [
    ManagerKind::Itd,
    ManagerKind::Harp,
    ManagerKind::HarpOffline,
    ManagerKind::HarpNoScaling,
];

/// Runs the full experiment, returning one row per scenario.
///
/// Three waves, each saturating the worker pool: the shared offline DSE
/// (one internally-parallel sweep per distinct application, via the
/// profile cache), the per-scenario warm-up learning runs, and finally one
/// flat job set with every (scenario, manager, repetition) cell. Results
/// are folded in enumeration order, so the rows are bit-identical to the
/// serial path.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_rows(opts: &Fig6Options) -> Result<Vec<ScenarioRow>> {
    // Offline profiles are shared across scenarios (one DSE per app).
    let mut all_apps = Vec::new();
    for s in opts.singles.iter().chain(&opts.multis) {
        for a in &s.apps {
            all_apps.push(a.clone());
        }
    }
    let offline = offline_profiles(Platform::RaptorLake, &all_apps, opts.dse_horizon_s)?;

    let scens: Vec<(&Scenario, bool)> = opts
        .singles
        .iter()
        .map(|s| (s, false))
        .chain(opts.multis.iter().map(|s| (s, true)))
        .collect();

    // Warm-up learning wave: one independent run per scenario, shared
    // through the profile cache with any other consumer of the same
    // (scenario, warm-up, seed) table.
    let learned: Vec<ProfileStore> = parallel_map(&scens, |(scenario, _)| {
        crate::cache::learned_profiles(Platform::RaptorLake, scenario, opts.warmup_s * SECOND, 23)
    })
    .into_iter()
    .collect::<Result<_>>()?;

    // Flat measurement wave: per scenario, the CFS baseline group then
    // each variant's group, every repetition its own job.
    let base_opts = RunOptions::default();
    let mut jobs = Vec::new();
    for ((scenario, _), learned) in scens.iter().zip(&learned) {
        jobs.extend(repetition_jobs(
            "fig6",
            Platform::RaptorLake,
            scenario,
            ManagerKind::Cfs,
            &base_opts,
            opts.reps,
        ));
        for kind in VARIANTS {
            let mut vopts = base_opts.clone();
            vopts.profiles = match kind {
                ManagerKind::HarpOffline => Some(offline.clone()),
                ManagerKind::Harp | ManagerKind::HarpNoScaling => Some(learned.clone()),
                _ => None,
            };
            jobs.extend(repetition_jobs(
                "fig6",
                Platform::RaptorLake,
                scenario,
                kind,
                &vopts,
                opts.reps,
            ));
        }
    }
    let metrics = run_jobs(&jobs)?;

    // Deterministic reassembly: groups come back in enumeration order.
    let reps = opts.reps.max(1) as usize;
    let mut groups = metrics.chunks(reps);
    let mut rows = Vec::new();
    for (scenario, multi) in scens {
        let cfs = fold_repetitions(groups.next().expect("CFS group per scenario"));
        let mut variants = Vec::new();
        for kind in VARIANTS {
            let m = fold_repetitions(groups.next().expect("variant group per scenario"));
            variants.push((kind, improvement(cfs, m)));
        }
        rows.push(ScenarioRow {
            scenario: scenario.name.clone(),
            multi,
            cfs_makespan_s: cfs.makespan_s,
            variants,
        });
    }
    Ok(rows)
}

/// Geometric-mean improvements of one variant over a scenario group.
pub fn geomean_of(rows: &[ScenarioRow], kind: ManagerKind, multi: bool) -> Option<Improvement> {
    let times: Vec<f64> = rows
        .iter()
        .filter(|r| r.multi == multi)
        .filter_map(|r| r.variants.iter().find(|(k, _)| *k == kind))
        .map(|(_, i)| i.time)
        .collect();
    let energies: Vec<f64> = rows
        .iter()
        .filter(|r| r.multi == multi)
        .filter_map(|r| r.variants.iter().find(|(k, _)| *k == kind))
        .map(|(_, i)| i.energy)
        .collect();
    Some(Improvement {
        time: geometric_mean(&times).ok()?,
        energy: geometric_mean(&energies).ok()?,
    })
}

/// Renders rows + geometric means as the paper-style table.
pub fn render(rows: &[ScenarioRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 6: improvement factors over CFS — Intel Raptor Lake i9-13900K\n\
         (time x / energy x; >1 is better; [CFS makespan])\n\n",
    );
    for group in [false, true] {
        out.push_str(if group {
            "--- multi-application scenarios ---\n"
        } else {
            "--- single-application scenarios ---\n"
        });
        out.push_str(
            "  scenario              CFS[s]   ITD          HARP         HARP(Offl)   HARP(NoScal)\n",
        );
        for r in rows.iter().filter(|r| r.multi == group) {
            out.push_str(&format!("  {:<20} {:7.2}", r.scenario, r.cfs_makespan_s));
            for (_, imp) in &r.variants {
                out.push_str(&format!("  {:4.2}/{:4.2} ", imp.time, imp.energy));
            }
            out.push('\n');
        }
        out.push_str("  geomean                     ");
        for kind in VARIANTS {
            if let Some(g) = geomean_of(rows, kind, group) {
                out.push_str(&format!("  {:4.2}/{:4.2} ", g.time, g.energy));
            }
        }
        out.push_str("\n\n");
    }
    out.push_str(
        "(paper geomeans — single: ITD 1.02/1.04, HARP 0.92/1.34, Offline 1.22/1.44,\n \
         NoScaling 0.60/0.74; multi: ITD 0.84/0.88, HARP 1.40/1.52, Offline 1.58/1.73,\n \
         NoScaling 0.52/0.74)\n",
    );
    out
}

/// Runs the experiment and renders the table.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run(opts: &Fig6Options) -> Result<String> {
    Ok(render(&run_rows(opts)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_fig6_shapes_hold() {
        let rows = run_rows(&Fig6Options::reduced()).unwrap();
        assert_eq!(rows.len(), 3);
        // mg: HARP should save energy vs CFS.
        let mg = rows.iter().find(|r| r.scenario == "mg").unwrap();
        let harp = mg
            .variants
            .iter()
            .find(|(k, _)| *k == ManagerKind::Harp)
            .unwrap()
            .1;
        assert!(harp.energy > 1.0, "mg HARP energy factor {:?}", harp);
        // binpack: HARP should be much faster than CFS (paper: 6.9x).
        let bp = rows.iter().find(|r| r.scenario == "binpack").unwrap();
        let harp_bp = bp
            .variants
            .iter()
            .find(|(k, _)| *k == ManagerKind::Harp)
            .unwrap()
            .1;
        assert!(
            harp_bp.time > 2.0,
            "binpack HARP speedup {:?} (paper ≈6.9x)",
            harp_bp
        );
        // Offline beats or matches online HARP on the multi scenario's energy.
        let multi = rows.iter().find(|r| r.multi).unwrap();
        let get = |kind| multi.variants.iter().find(|(k, _)| *k == kind).unwrap().1;
        let offline = get(ManagerKind::HarpOffline);
        let noscale = get(ManagerKind::HarpNoScaling);
        assert!(
            offline.energy > noscale.energy,
            "offline {offline:?} should beat no-scaling {noscale:?}"
        );
        let table = render(&rows);
        assert!(table.contains("geomean"));
    }
}
