//! Parallel execution of the evaluation job set.
//!
//! Every cell of the evaluation — one (figure, scenario, manager,
//! repetition) tuple — is an independent simulation, so the harness
//! enumerates them as [`Job`]s and executes the set on a fixed-size worker
//! pool. Results are reassembled **in job order**, and each job carries a
//! fully resolved seed, so the output is bit-identical to the serial path
//! for any worker count.
//!
//! The pool size comes from, in priority order:
//!
//! 1. [`set_worker_override`] (used by tests and the `headline_summary`
//!    serial-vs-parallel measurement),
//! 2. the `HARP_BENCH_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].

use crate::runner::{run_scenario, ManagerKind, RunMetrics, RunOptions};
use harp_types::Result;
use harp_workload::{Platform, Scenario};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// One evaluation cell: a single simulation run with a fully resolved seed.
#[derive(Debug, Clone)]
pub struct Job {
    /// The figure or table this cell belongs to (labelling/reporting only;
    /// does not influence execution).
    pub figure: &'static str,
    /// Target platform.
    pub platform: Platform,
    /// The workload scenario.
    pub scenario: Scenario,
    /// The resource manager under test.
    pub manager: ManagerKind,
    /// Repetition index within the cell's averaging group.
    pub repetition: u32,
    /// Fully resolved RNG seed of this repetition (already combined with
    /// the repetition index; overrides `opts.seed`).
    pub seed: u64,
    /// Governor, profiles and horizon for this cell.
    pub opts: RunOptions,
}

impl Job {
    /// Executes the cell.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn run(&self) -> Result<RunMetrics> {
        let mut opts = self.opts.clone();
        opts.seed = self.seed;
        run_scenario(self.platform, &self.scenario, self.manager, &opts)
    }
}

/// Enumerates the repetition jobs of one cell exactly as
/// [`crate::runner::run_repeated`] would execute them: repetition `r` uses
/// seed `opts.seed + r * 7919` (wrapping).
pub fn repetition_jobs(
    figure: &'static str,
    platform: Platform,
    scenario: &Scenario,
    manager: ManagerKind,
    opts: &RunOptions,
    reps: u32,
) -> Vec<Job> {
    (0..reps.max(1))
        .map(|rep| Job {
            figure,
            platform,
            scenario: scenario.clone(),
            manager,
            repetition: rep,
            seed: opts.seed.wrapping_add(rep as u64 * 7919),
            opts: opts.clone(),
        })
        .collect()
}

/// Averages the metrics of one repetition group in repetition order —
/// the same left-to-right summation as [`crate::runner::run_repeated`],
/// so the folded result is bit-identical to the serial path.
pub fn fold_repetitions(metrics: &[RunMetrics]) -> RunMetrics {
    let mut time = 0.0;
    let mut energy = 0.0;
    for m in metrics {
        time += m.makespan_s;
        energy += m.energy_j;
    }
    let n = metrics.len().max(1) as f64;
    RunMetrics {
        makespan_s: time / n,
        energy_j: energy / n,
    }
}

/// Runs a job set on the worker pool, returning metrics **in job order**.
///
/// # Errors
///
/// Returns the error of the first (lowest-index) failing job.
pub fn run_jobs(jobs: &[Job]) -> Result<Vec<RunMetrics>> {
    parallel_map(jobs, Job::run).into_iter().collect()
}

/// `0` means "no override".
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker-pool size for this process, taking precedence over
/// `HARP_BENCH_THREADS`. `None` (or `Some(0)`) removes the override.
///
/// This exists so tests and the `headline_summary` serial-vs-parallel
/// comparison can vary the pool size without mutating the process
/// environment (which is racy under a multi-threaded test runner).
pub fn set_worker_override(workers: Option<usize>) {
    WORKER_OVERRIDE.store(workers.unwrap_or(0), Ordering::SeqCst);
}

/// The worker-pool size used by [`run_jobs`]/[`parallel_map`]: the
/// override if set, else `HARP_BENCH_THREADS` if set to a positive
/// integer, else the machine's available parallelism.
pub fn worker_count() -> usize {
    let o = WORKER_OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    if let Ok(v) = std::env::var("HARP_BENCH_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item on the worker pool and returns the results in
/// item order (deterministic reassembly: workers pull indices from a shared
/// counter and send `(index, result)` back over a channel; the results are
/// slotted by index, so ordering — and therefore every downstream fold —
/// is independent of the worker count and of scheduling).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = worker_count().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                if tx.send((i, r)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|o| o.expect("every index was claimed by exactly one worker"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        set_worker_override(Some(7));
        let out = parallel_map(&items, |&x| x * x);
        set_worker_override(None);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn repetition_jobs_mirror_run_repeated_seeds() {
        let sc = Scenario::of(Platform::RaptorLake, &["ep"]);
        let opts = RunOptions {
            seed: 42,
            ..RunOptions::default()
        };
        let jobs = repetition_jobs("t", Platform::RaptorLake, &sc, ManagerKind::Cfs, &opts, 3);
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].seed, 42);
        assert_eq!(jobs[1].seed, 42 + 7919);
        assert_eq!(jobs[2].seed, 42 + 2 * 7919);
    }

    #[test]
    fn fold_matches_manual_average() {
        let ms = [
            RunMetrics {
                makespan_s: 1.0,
                energy_j: 10.0,
            },
            RunMetrics {
                makespan_s: 3.0,
                energy_j: 30.0,
            },
        ];
        let m = fold_repetitions(&ms);
        assert_eq!(m.makespan_s, 2.0);
        assert_eq!(m.energy_j, 20.0);
    }
}
