//! Guards on the committed benchmark artifacts: `BENCH_solver.json` must
//! stay parseable, keep demonstrating the warm-start speedup the solver
//! engine was built for (≥ 3x on every row with at least 16 apps and 8
//! operating points), and carry the parallel λ-search tiers with their
//! determinism bit set. Regenerate the artifact with
//! `cargo bench -p harp-bench --bench solver` after solver changes.

use serde::Deserialize;

#[derive(Deserialize)]
struct BenchFile {
    quick: bool,
    host_threads: u64,
    rows: Vec<Row>,
    par: Vec<ParRow>,
    obs: ObsSection,
}

#[derive(Deserialize)]
struct ObsSection {
    apps: u64,
    options: u64,
    anchor_warm_engine_ns: u64,
    disabled_warm_engine_ns: u64,
    enabled_warm_engine_ns: u64,
    disabled_delta_pct: f64,
    enabled_overhead_pct: f64,
}

#[derive(Deserialize)]
struct Row {
    apps: u64,
    options: u64,
    kinds: u64,
    warm_ticks: u64,
    warm_speedup: f64,
    memo_hits: u64,
    certified: u64,
    full: u64,
}

#[derive(Deserialize)]
struct ParRow {
    apps: u64,
    options: u64,
    kinds: u64,
    threads: u64,
    serial_ns: u64,
    parallel_ns: u64,
    speedup: f64,
    deterministic: bool,
}

fn load() -> BenchFile {
    let text = include_str!("../../../BENCH_solver.json");
    serde_json::from_str(text).expect("BENCH_solver.json parses")
}

#[test]
fn committed_solver_bench_parses_and_meets_speedup_floor() {
    let file = load();
    assert!(!file.quick, "committed artifact must come from a full run");
    assert!(!file.rows.is_empty(), "artifact has no rows");
    let mut large_rows = 0;
    for r in &file.rows {
        assert!(r.kinds >= 2, "solver rows must be heterogeneous");
        assert_eq!(
            r.memo_hits + r.certified + r.full,
            r.warm_ticks,
            "every warm tick must be accounted for ({}x{}x{})",
            r.apps,
            r.options,
            r.kinds
        );
        if r.apps >= 16 && r.options >= 8 {
            large_rows += 1;
            assert!(
                r.warm_speedup >= 3.0,
                "warm speedup {:.2}x below the 3x floor at {}x{}x{}",
                r.warm_speedup,
                r.apps,
                r.options,
                r.kinds
            );
        }
    }
    assert!(
        large_rows >= 1,
        "artifact needs at least one row with >= 16 apps and >= 8 options"
    );
}

/// The parallel λ-search tiers: the committed artifact must cover the
/// 256/1024/4096-app populations, every tier must have passed the
/// bit-identity check against serial, and — on hosts that can actually
/// express parallelism (≥ 4 hardware threads) — the 4096-app tier must
/// show at least a 2x speedup over serial. On narrower hosts (this
/// artifact may be regenerated inside a 1-CPU container) a speedup is
/// physically impossible, so the gate degrades to a no-pathology floor:
/// dispatch overhead may not halve throughput.
#[test]
fn committed_parallel_tiers_are_deterministic_and_scale() {
    let file = load();
    for apps in [256u64, 1024, 4096] {
        assert!(
            file.par.iter().any(|p| p.apps == apps),
            "artifact is missing the {apps}-app parallel tier"
        );
    }
    for p in &file.par {
        assert!(
            p.deterministic,
            "parallel tier {}x{}x{} lost bit-identity with serial",
            p.apps, p.options, p.kinds
        );
        assert!(
            p.threads >= 2,
            "parallel tier {}x{}x{} ran with {} thread(s) — not a parallel measurement",
            p.apps,
            p.options,
            p.kinds,
            p.threads
        );
        // The committed speedup must match its inputs (artifact not
        // hand-edited).
        let recomputed = p.serial_ns as f64 / (p.parallel_ns as f64).max(1.0);
        assert!(
            (recomputed - p.speedup).abs() < 0.01,
            "speedup {} disagrees with its inputs ({recomputed:.3}) at {} apps",
            p.speedup,
            p.apps
        );
        if file.host_threads >= 4 {
            if p.apps >= 4096 {
                assert!(
                    p.speedup >= 2.0,
                    "parallel speedup {:.2}x below the 2x floor at {} apps on a \
                     {}-thread host",
                    p.speedup,
                    p.apps,
                    file.host_threads
                );
            }
        } else {
            assert!(
                p.speedup >= 0.5,
                "parallel dispatch overhead halved throughput at {} apps \
                 ({:.2}x on a {}-thread host)",
                p.apps,
                p.speedup,
                file.host_threads
            );
        }
    }
}

/// The observability layer must be free when disabled: the committed
/// artifact's headline warm run (instrumentation compiled in, collector
/// off) may not regress more than 2% against the committed anchor.
/// Signed gate — being faster always passes. The anchor was re-measured
/// in PR 6 on the SoA lane engine (the PR 3 value came from a different
/// machine, which made the gate read machine identity, not obs
/// overhead).
#[test]
fn committed_obs_overhead_is_within_gate() {
    let file = load();
    let obs = &file.obs;
    assert_eq!(
        (obs.apps, obs.options),
        (32, 16),
        "obs A/B must run the headline configuration"
    );
    assert_eq!(
        obs.anchor_warm_engine_ns, 1_880_631,
        "obs anchor changed — re-measure deliberately and update this gate \
         together with the bench constant"
    );
    assert!(
        obs.disabled_delta_pct <= 2.0,
        "disabled-instrumentation solver run drifted {:+.2}% (> +2%) from the anchor \
         ({} ns vs {} ns) — the telemetry layer is taxing the disabled path",
        obs.disabled_delta_pct,
        obs.disabled_warm_engine_ns,
        obs.anchor_warm_engine_ns
    );
    // The recomputed delta must match what the bench wrote (artifact not
    // hand-edited).
    let recomputed = (obs.disabled_warm_engine_ns as f64 - obs.anchor_warm_engine_ns as f64)
        / obs.anchor_warm_engine_ns as f64
        * 100.0;
    assert!(
        (recomputed - obs.disabled_delta_pct).abs() < 0.01,
        "disabled_delta_pct {} disagrees with its inputs ({recomputed:.3})",
        obs.disabled_delta_pct
    );
    // Enabled tracing is allowed to cost something, but a blow-up here
    // means the hot path regressed (lock contention, allocation, ...).
    assert!(
        obs.enabled_overhead_pct < 25.0,
        "enabled tracing costs {:+.2}% on the headline workload ({} ns vs {} ns)",
        obs.enabled_overhead_pct,
        obs.enabled_warm_engine_ns,
        obs.disabled_warm_engine_ns
    );
}
