//! Guards on the committed benchmark artifacts: `BENCH_solver.json` must
//! stay parseable, keep demonstrating the warm-start speedup the solver
//! engine was built for (≥ 3x on every row with at least 16 apps and 8
//! operating points), and carry the parallel λ-search tiers with their
//! determinism bit set. Regenerate the artifact with
//! `cargo bench -p harp-bench --bench solver` after solver changes.
//!
//! `BENCH_harness.json` is gated too: the connection-storm section (from
//! `cargo run --release -p harp-bench --bin storm_bench`) must show a
//! clean oracle — zero lost or duplicated directives, zero dropped
//! events — at both the 512- and 10k-session tiers with no throughput
//! collapse between them, and the obs section (from `headline_summary
//! --reduced`) must carry the per-event tracing cost in nanoseconds.

use serde::Deserialize;

#[derive(Deserialize)]
struct BenchFile {
    quick: bool,
    host_threads: u64,
    rows: Vec<Row>,
    par: Vec<ParRow>,
    obs: ObsSection,
}

#[derive(Deserialize)]
struct ObsSection {
    apps: u64,
    options: u64,
    anchor_warm_engine_ns: u64,
    disabled_warm_engine_ns: u64,
    enabled_warm_engine_ns: u64,
    disabled_delta_pct: f64,
    enabled_overhead_pct: f64,
}

#[derive(Deserialize)]
struct Row {
    apps: u64,
    options: u64,
    kinds: u64,
    warm_ticks: u64,
    warm_speedup: f64,
    memo_hits: u64,
    certified: u64,
    full: u64,
}

#[derive(Deserialize)]
struct ParRow {
    apps: u64,
    options: u64,
    kinds: u64,
    threads: u64,
    serial_ns: u64,
    parallel_ns: u64,
    speedup: f64,
    deterministic: bool,
}

#[derive(Deserialize)]
struct HarnessFile {
    obs: HarnessObs,
    storm: StormSection,
    trace_bench: TraceBenchSection,
}

#[derive(Deserialize)]
struct TraceBenchSection {
    quick: bool,
    generation: Vec<TraceGenRow>,
    replay: Vec<TraceReplayRow>,
}

#[derive(Deserialize)]
struct TraceGenRow {
    shape: String,
    arrivals: u64,
    events: u64,
    gen_ns: u64,
    events_per_sec: f64,
    canonical_bytes: u64,
    round_trip_ok: bool,
}

#[derive(Deserialize)]
struct TraceReplayRow {
    shape: String,
    events: u64,
    ticks: u64,
    directives: u64,
    fingerprint: String,
    violations: u64,
    quiesced: bool,
    deterministic: bool,
}

#[derive(Deserialize)]
struct HarnessObs {
    disabled_s: f64,
    enabled_s: f64,
    per_event_ns: f64,
    events_recorded: u64,
    events_dropped: u64,
    outputs_identical: bool,
}

#[derive(Deserialize)]
struct StormSection {
    quick: bool,
    shards: u64,
    tiers: Vec<StormTier>,
    shard_counters: StormShardCounters,
    events_dropped: u64,
}

#[derive(Deserialize)]
struct StormShardCounters {
    accepted: Vec<u64>,
    frames: u64,
}

#[derive(Deserialize)]
struct StormTier {
    sessions: u64,
    wall_s: f64,
    sessions_per_sec: f64,
    acks: u64,
    activates: u64,
    lost: u64,
    duplicated: u64,
    errors: u64,
}

fn load() -> BenchFile {
    let text = include_str!("../../../BENCH_solver.json");
    serde_json::from_str(text).expect("BENCH_solver.json parses")
}

fn load_harness() -> HarnessFile {
    let text = include_str!("../../../BENCH_harness.json");
    serde_json::from_str(text).expect("BENCH_harness.json parses")
}

#[test]
fn committed_solver_bench_parses_and_meets_speedup_floor() {
    let file = load();
    assert!(!file.quick, "committed artifact must come from a full run");
    assert!(!file.rows.is_empty(), "artifact has no rows");
    let mut large_rows = 0;
    for r in &file.rows {
        assert!(r.kinds >= 2, "solver rows must be heterogeneous");
        assert_eq!(
            r.memo_hits + r.certified + r.full,
            r.warm_ticks,
            "every warm tick must be accounted for ({}x{}x{})",
            r.apps,
            r.options,
            r.kinds
        );
        if r.apps >= 16 && r.options >= 8 {
            large_rows += 1;
            assert!(
                r.warm_speedup >= 3.0,
                "warm speedup {:.2}x below the 3x floor at {}x{}x{}",
                r.warm_speedup,
                r.apps,
                r.options,
                r.kinds
            );
        }
    }
    assert!(
        large_rows >= 1,
        "artifact needs at least one row with >= 16 apps and >= 8 options"
    );
}

/// The parallel λ-search tiers: the committed artifact must cover the
/// 256/1024/4096-app populations, every tier must have passed the
/// bit-identity check against serial, and — on hosts that can actually
/// express parallelism (≥ 4 hardware threads) — the 4096-app tier must
/// show at least a 2x speedup over serial. On narrower hosts (this
/// artifact may be regenerated inside a 1-CPU container) a speedup is
/// physically impossible, so the gate degrades to a no-pathology floor:
/// dispatch overhead may not halve throughput.
#[test]
fn committed_parallel_tiers_are_deterministic_and_scale() {
    let file = load();
    for apps in [256u64, 1024, 4096] {
        assert!(
            file.par.iter().any(|p| p.apps == apps),
            "artifact is missing the {apps}-app parallel tier"
        );
    }
    for p in &file.par {
        assert!(
            p.deterministic,
            "parallel tier {}x{}x{} lost bit-identity with serial",
            p.apps, p.options, p.kinds
        );
        assert!(
            p.threads >= 2,
            "parallel tier {}x{}x{} ran with {} thread(s) — not a parallel measurement",
            p.apps,
            p.options,
            p.kinds,
            p.threads
        );
        // The committed speedup must match its inputs (artifact not
        // hand-edited).
        let recomputed = p.serial_ns as f64 / (p.parallel_ns as f64).max(1.0);
        assert!(
            (recomputed - p.speedup).abs() < 0.01,
            "speedup {} disagrees with its inputs ({recomputed:.3}) at {} apps",
            p.speedup,
            p.apps
        );
        if file.host_threads >= 4 {
            if p.apps >= 4096 {
                assert!(
                    p.speedup >= 2.0,
                    "parallel speedup {:.2}x below the 2x floor at {} apps on a \
                     {}-thread host",
                    p.speedup,
                    p.apps,
                    file.host_threads
                );
            }
        } else {
            assert!(
                p.speedup >= 0.5,
                "parallel dispatch overhead halved throughput at {} apps \
                 ({:.2}x on a {}-thread host)",
                p.apps,
                p.speedup,
                file.host_threads
            );
        }
    }
}

/// The observability layer must be free when disabled: the committed
/// artifact's headline warm run (instrumentation compiled in, collector
/// off) may not regress more than 2% against the committed anchor.
/// Signed gate — being faster always passes. The anchor was re-measured
/// in PR 6 on the SoA lane engine (the PR 3 value came from a different
/// machine, which made the gate read machine identity, not obs
/// overhead), and again in PR 9 when the A/B workload grew the per-tick
/// energy-ledger charge the RM tick path now pays.
#[test]
fn committed_obs_overhead_is_within_gate() {
    let file = load();
    let obs = &file.obs;
    assert_eq!(
        (obs.apps, obs.options),
        (32, 16),
        "obs A/B must run the headline configuration"
    );
    assert_eq!(
        obs.anchor_warm_engine_ns, 1_551_432,
        "obs anchor changed — re-measure deliberately and update this gate \
         together with the bench constant"
    );
    assert!(
        obs.disabled_delta_pct <= 2.0,
        "disabled-instrumentation solver run drifted {:+.2}% (> +2%) from the anchor \
         ({} ns vs {} ns) — the telemetry layer is taxing the disabled path",
        obs.disabled_delta_pct,
        obs.disabled_warm_engine_ns,
        obs.anchor_warm_engine_ns
    );
    // The recomputed delta must match what the bench wrote (artifact not
    // hand-edited).
    let recomputed = (obs.disabled_warm_engine_ns as f64 - obs.anchor_warm_engine_ns as f64)
        / obs.anchor_warm_engine_ns as f64
        * 100.0;
    assert!(
        (recomputed - obs.disabled_delta_pct).abs() < 0.01,
        "disabled_delta_pct {} disagrees with its inputs ({recomputed:.3})",
        obs.disabled_delta_pct
    );
    // Enabled tracing is allowed to cost something, but a blow-up here
    // means the hot path regressed (lock contention, allocation, ...).
    assert!(
        obs.enabled_overhead_pct < 25.0,
        "enabled tracing costs {:+.2}% on the headline workload ({} ns vs {} ns)",
        obs.enabled_overhead_pct,
        obs.enabled_warm_engine_ns,
        obs.disabled_warm_engine_ns
    );
}

/// The committed connection-storm run (DESIGN.md §12): a full (non-quick)
/// sweep whose per-session oracle held at every tier — exactly one ack
/// and at least one activation per session, no transport errors, no
/// dropped telemetry events — and whose 10k-session throughput stayed
/// within 2x of the 512-session rate (the reactor must not collapse
/// under connection churn). Regenerate with
/// `cargo run --release -p harp-bench --bin storm_bench`.
#[test]
fn committed_storm_run_is_clean_at_both_tiers() {
    let storm = load_harness().storm;
    assert!(
        !storm.quick,
        "committed storm section must come from a full (512 + 10k) run"
    );
    for want in [512u64, 10_000] {
        assert!(
            storm.tiers.iter().any(|t| t.sessions == want),
            "storm section is missing the {want}-session tier"
        );
    }
    for t in &storm.tiers {
        assert_eq!(t.lost, 0, "{} sessions lost a directive", t.sessions);
        assert_eq!(
            t.duplicated, 0,
            "{} sessions saw a duplicated ack",
            t.sessions
        );
        assert_eq!(t.errors, 0, "{} sessions hit transport errors", t.sessions);
        assert_eq!(
            t.acks, t.sessions,
            "ack count must equal session count at the {}-session tier",
            t.sessions
        );
        assert!(
            t.activates >= t.sessions,
            "every session needs at least one activation ({} < {})",
            t.activates,
            t.sessions
        );
        // Throughput must match its inputs (artifact not hand-edited);
        // both fields are rounded, so allow 1%.
        let recomputed = t.sessions as f64 / t.wall_s.max(1e-9);
        assert!(
            (recomputed - t.sessions_per_sec).abs() / recomputed < 0.01,
            "sessions_per_sec {} disagrees with sessions/wall_s ({recomputed:.1}) \
             at the {}-session tier",
            t.sessions_per_sec,
            t.sessions
        );
    }
    assert_eq!(
        storm.events_dropped, 0,
        "storm run dropped telemetry events"
    );

    let rate = |want: u64| {
        storm
            .tiers
            .iter()
            .find(|t| t.sessions == want)
            .map(|t| t.sessions_per_sec)
            .expect("tier present")
    };
    let (base, big) = (rate(512), rate(10_000));
    assert!(
        big >= base * 0.5,
        "10k-session throughput {big:.1}/s fell below half the 512-session \
         rate {base:.1}/s — the session table is not scaling"
    );

    // The accept spread: every configured shard took connections, and
    // together they accepted exactly the total session count.
    let live = storm
        .shard_counters
        .accepted
        .iter()
        .filter(|&&a| a > 0)
        .count() as u64;
    assert_eq!(
        live, storm.shards,
        "connections did not spread across all {} reactor shards",
        storm.shards
    );
    let total: u64 = storm.tiers.iter().map(|t| t.sessions).sum();
    let accepted: u64 = storm.shard_counters.accepted.iter().sum();
    assert_eq!(
        accepted, total,
        "shard accept counters disagree with the tier session totals"
    );
    assert!(
        storm.shard_counters.frames >= 3 * total,
        "each session sends register/submit/exit; frame counter is too low"
    );
}

/// The committed trace-engine run (DESIGN.md §13): a full (non-quick)
/// sweep in which the seeded generator produced every headline shape at
/// 10k+ arrivals with a clean canonical round trip, and every replay
/// through the testkit oracles came back violation-free, quiescent and
/// fingerprint-deterministic. Regenerate with
/// `cargo run --release -p harp-bench --bin trace_bench`.
#[test]
fn committed_trace_bench_is_clean_and_deterministic() {
    let tb = load_harness().trace_bench;
    assert!(
        !tb.quick,
        "committed trace_bench section must come from a full run"
    );
    for shape in ["diurnal", "flash-crowd", "heavy-tail-churn"] {
        assert!(
            tb.generation
                .iter()
                .any(|g| g.shape == shape && g.arrivals >= 10_000),
            "generation is missing the {shape} shape at 10k+ arrivals"
        );
        assert!(
            tb.replay.iter().any(|r| r.shape == shape),
            "replay is missing the {shape} shape"
        );
    }
    for g in &tb.generation {
        assert!(g.round_trip_ok, "{} lost the canonical round trip", g.shape);
        assert!(
            g.events >= g.arrivals,
            "{} emitted fewer events than arrivals ({} < {})",
            g.shape,
            g.events,
            g.arrivals
        );
        assert!(
            g.canonical_bytes > g.events,
            "{} canonical text is implausibly small",
            g.shape
        );
        // Throughput must match its inputs (artifact not hand-edited);
        // the field is rounded to a whole event/s.
        let recomputed = g.events as f64 * 1e9 / g.gen_ns.max(1) as f64;
        assert!(
            (recomputed - g.events_per_sec).abs() <= 1.0,
            "{} events_per_sec {} disagrees with its inputs ({recomputed:.1})",
            g.shape,
            g.events_per_sec
        );
    }
    for r in &tb.replay {
        assert_eq!(r.violations, 0, "{} replay violated an oracle", r.shape);
        assert!(r.quiesced, "{} replay never quiesced", r.shape);
        assert!(
            r.deterministic,
            "{} replay fingerprint drifted between runs",
            r.shape
        );
        assert!(
            r.fingerprint.len() == 16 && r.fingerprint.chars().all(|c| c.is_ascii_hexdigit()),
            "{} fingerprint {:?} is not a 16-digit hex string",
            r.shape,
            r.fingerprint
        );
        assert!(
            r.ticks > 0 && r.events > 0,
            "{} replay ran nothing",
            r.shape
        );
        assert!(r.directives > 0, "{} replay emitted no directives", r.shape);
    }
}

/// The obs section must carry the events_recorded-normalized tracing
/// cost: the raw overhead percentage on a seconds-long reduced run is
/// dominated by noise (the committed artifact once read +33% for what
/// is ~3.5 µs/event), so the gate bounds the per-event cost instead.
#[test]
fn committed_obs_per_event_cost_is_bounded() {
    let obs = load_harness().obs;
    assert!(obs.events_recorded > 0, "obs A/B recorded no events");
    assert_eq!(obs.events_dropped, 0, "obs A/B dropped events");
    assert!(obs.outputs_identical, "tracing perturbed rendered output");
    assert!(
        obs.per_event_ns.is_finite() && obs.per_event_ns.abs() < 20_000.0,
        "per-event tracing cost {} ns is out of range (timer noise on an \
         idle run may read slightly negative; 20 µs/event means the hot \
         path regressed)",
        obs.per_event_ns
    );
    // Recomputed from its (3-decimal-rounded) inputs: the rounding of
    // the two wall times alone can move the quotient by ~1.1e6 /
    // events_recorded nanoseconds.
    let recomputed = (obs.enabled_s - obs.disabled_s) * 1e9 / obs.events_recorded as f64;
    let tol = 1.2e6 / obs.events_recorded as f64 + 0.1;
    assert!(
        (recomputed - obs.per_event_ns).abs() <= tol,
        "per_event_ns {} disagrees with its inputs ({recomputed:.1} ± {tol:.1})",
        obs.per_event_ns
    );
}
