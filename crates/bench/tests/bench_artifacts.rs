//! Guards on the committed benchmark artifacts: `BENCH_solver.json` must
//! stay parseable and keep demonstrating the warm-start speedup the
//! solver engine was built for (≥ 3x on every row with at least 16 apps
//! and 8 operating points). Regenerate the artifact with
//! `cargo bench -p harp-bench --bench solver` after solver changes.

use serde::Deserialize;

#[derive(Deserialize)]
struct BenchFile {
    quick: bool,
    rows: Vec<Row>,
}

#[derive(Deserialize)]
struct Row {
    apps: u64,
    options: u64,
    kinds: u64,
    warm_ticks: u64,
    warm_speedup: f64,
    memo_hits: u64,
    certified: u64,
    full: u64,
}

#[test]
fn committed_solver_bench_parses_and_meets_speedup_floor() {
    let text = include_str!("../../../BENCH_solver.json");
    let file: BenchFile = serde_json::from_str(text).expect("BENCH_solver.json parses");
    assert!(!file.quick, "committed artifact must come from a full run");
    assert!(!file.rows.is_empty(), "artifact has no rows");
    let mut large_rows = 0;
    for r in &file.rows {
        assert!(r.kinds >= 2, "solver rows must be heterogeneous");
        assert_eq!(
            r.memo_hits + r.certified + r.full,
            r.warm_ticks,
            "every warm tick must be accounted for ({}x{}x{})",
            r.apps,
            r.options,
            r.kinds
        );
        if r.apps >= 16 && r.options >= 8 {
            large_rows += 1;
            assert!(
                r.warm_speedup >= 3.0,
                "warm speedup {:.2}x below the 3x floor at {}x{}x{}",
                r.warm_speedup,
                r.apps,
                r.options,
                r.kinds
            );
        }
    }
    assert!(
        large_rows >= 1,
        "artifact needs at least one row with >= 16 apps and >= 8 options"
    );
}
