//! Guards on the committed benchmark artifacts: `BENCH_solver.json` must
//! stay parseable and keep demonstrating the warm-start speedup the
//! solver engine was built for (≥ 3x on every row with at least 16 apps
//! and 8 operating points). Regenerate the artifact with
//! `cargo bench -p harp-bench --bench solver` after solver changes.

use serde::Deserialize;

#[derive(Deserialize)]
struct BenchFile {
    quick: bool,
    rows: Vec<Row>,
    obs: ObsSection,
}

#[derive(Deserialize)]
struct ObsSection {
    apps: u64,
    options: u64,
    baseline_pr3_warm_engine_ns: u64,
    disabled_warm_engine_ns: u64,
    enabled_warm_engine_ns: u64,
    disabled_delta_pct: f64,
    enabled_overhead_pct: f64,
}

#[derive(Deserialize)]
struct Row {
    apps: u64,
    options: u64,
    kinds: u64,
    warm_ticks: u64,
    warm_speedup: f64,
    memo_hits: u64,
    certified: u64,
    full: u64,
}

#[test]
fn committed_solver_bench_parses_and_meets_speedup_floor() {
    let text = include_str!("../../../BENCH_solver.json");
    let file: BenchFile = serde_json::from_str(text).expect("BENCH_solver.json parses");
    assert!(!file.quick, "committed artifact must come from a full run");
    assert!(!file.rows.is_empty(), "artifact has no rows");
    let mut large_rows = 0;
    for r in &file.rows {
        assert!(r.kinds >= 2, "solver rows must be heterogeneous");
        assert_eq!(
            r.memo_hits + r.certified + r.full,
            r.warm_ticks,
            "every warm tick must be accounted for ({}x{}x{})",
            r.apps,
            r.options,
            r.kinds
        );
        if r.apps >= 16 && r.options >= 8 {
            large_rows += 1;
            assert!(
                r.warm_speedup >= 3.0,
                "warm speedup {:.2}x below the 3x floor at {}x{}x{}",
                r.warm_speedup,
                r.apps,
                r.options,
                r.kinds
            );
        }
    }
    assert!(
        large_rows >= 1,
        "artifact needs at least one row with >= 16 apps and >= 8 options"
    );
}

/// The observability layer must be free when disabled: the committed
/// artifact's headline warm run (instrumentation compiled in, collector
/// off) may not regress more than 2% against the PR 3 baseline measured
/// before `harp-obs` existed. Signed gate — being faster always passes.
#[test]
fn committed_obs_overhead_is_within_gate() {
    let text = include_str!("../../../BENCH_solver.json");
    let file: BenchFile = serde_json::from_str(text).expect("BENCH_solver.json parses");
    let obs = &file.obs;
    assert_eq!(
        (obs.apps, obs.options),
        (32, 16),
        "obs A/B must run the headline configuration"
    );
    assert_eq!(
        obs.baseline_pr3_warm_engine_ns, 2_757_343,
        "PR 3 anchor changed — the gate no longer measures what it claims"
    );
    assert!(
        obs.disabled_delta_pct <= 2.0,
        "disabled-instrumentation solver run drifted {:+.2}% (> +2%) from the PR 3 baseline \
         ({} ns vs {} ns) — the telemetry layer is taxing the disabled path",
        obs.disabled_delta_pct,
        obs.disabled_warm_engine_ns,
        obs.baseline_pr3_warm_engine_ns
    );
    // The recomputed delta must match what the bench wrote (artifact not
    // hand-edited).
    let recomputed = (obs.disabled_warm_engine_ns as f64 - obs.baseline_pr3_warm_engine_ns as f64)
        / obs.baseline_pr3_warm_engine_ns as f64
        * 100.0;
    assert!(
        (recomputed - obs.disabled_delta_pct).abs() < 0.01,
        "disabled_delta_pct {} disagrees with its inputs ({recomputed:.3})",
        obs.disabled_delta_pct
    );
    // Enabled tracing is allowed to cost something, but a blow-up here
    // means the hot path regressed (lock contention, allocation, ...).
    assert!(
        obs.enabled_overhead_pct < 25.0,
        "enabled tracing costs {:+.2}% on the headline workload ({} ns vs {} ns)",
        obs.enabled_overhead_pct,
        obs.enabled_warm_engine_ns,
        obs.disabled_warm_engine_ns
    );
}
