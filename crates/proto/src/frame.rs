//! Length-prefixed framing for byte-stream transports (Unix sockets).
//!
//! Each frame is a little-endian `u32` length followed by the encoded
//! [`crate::Message`]. The daemon (`harp-daemon`) wraps
//! `UnixStream`s in [`Framed`]; tests exercise the same code over in-memory
//! buffers.

use crate::Message;
use harp_types::{HarpError, Result};
use std::io::{Read, Write};

/// Maximum accepted frame size (16 MiB) — guards against corrupted length
/// prefixes allocating unbounded memory.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Allocation granularity of the frame-body reader. A corrupted length
/// prefix can claim up to [`MAX_FRAME_LEN`] bytes; reading in chunks means
/// memory only grows as bytes actually arrive, so a peer that lies about
/// the length and then stalls or disconnects costs at most one chunk.
const READ_CHUNK: usize = 64 * 1024;

/// Writes one framed message to `w`.
///
/// A `&mut W` can be passed for any `W: Write`.
///
/// # Errors
///
/// Returns [`HarpError::Io`] on write failure.
pub fn write_frame<W: Write>(mut w: W, msg: &Message) -> Result<()> {
    let body = msg.encode();
    let len = u32::try_from(body.len()).map_err(|_| HarpError::protocol("frame too large"))?;
    if len > MAX_FRAME_LEN {
        return Err(HarpError::protocol("frame too large"));
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&body)?;
    w.flush()?;
    Ok(())
}

/// Reads one framed message from `r`, blocking until a full frame arrives.
///
/// Returns `Ok(None)` on a clean end-of-stream at a frame boundary.
///
/// # Errors
///
/// Returns [`HarpError::Io`] on read failure, [`HarpError::Protocol`] on an
/// oversized frame, a mid-frame end-of-stream, or a malformed body.
pub fn read_frame<R: Read>(mut r: R) -> Result<Option<Message>> {
    let mut len_buf = [0u8; 4];
    // Distinguish clean EOF (zero bytes) from a truncated prefix.
    match r.read(&mut len_buf[..1])? {
        0 => return Ok(None),
        1 => {}
        _ => unreachable!("read of one byte cannot return more"),
    }
    r.read_exact(&mut len_buf[1..])
        .map_err(|_| HarpError::protocol("truncated frame length"))?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(HarpError::protocol(format!("oversized frame: {len} bytes")));
    }
    let mut body = Vec::with_capacity((len as usize).min(READ_CHUNK));
    let mut remaining = len as usize;
    while remaining > 0 {
        let take = remaining.min(READ_CHUNK);
        let start = body.len();
        body.resize(start + take, 0);
        r.read_exact(&mut body[start..])
            .map_err(|_| HarpError::protocol("truncated frame body"))?;
        remaining -= take;
    }
    Message::decode(&body).map(Some)
}

/// A framed transport over any `Read + Write` stream.
///
/// # Example
///
/// ```
/// use harp_proto::frame::{write_frame, read_frame};
/// use harp_proto::Message;
///
/// let mut buf = Vec::new();
/// write_frame(&mut buf, &Message::Exit { app_id: 1 })?;
/// write_frame(&mut buf, &Message::Exit { app_id: 2 })?;
/// let mut cursor = std::io::Cursor::new(buf);
/// assert_eq!(read_frame(&mut cursor)?, Some(Message::Exit { app_id: 1 }));
/// assert_eq!(read_frame(&mut cursor)?, Some(Message::Exit { app_id: 2 }));
/// assert_eq!(read_frame(&mut cursor)?, None);
/// # Ok::<(), harp_types::HarpError>(())
/// ```
#[derive(Debug)]
pub struct Framed<S> {
    stream: S,
}

impl<S: Read + Write> Framed<S> {
    /// Wraps a stream.
    pub fn new(stream: S) -> Self {
        Framed { stream }
    }

    /// Consumes the wrapper and returns the underlying stream.
    pub fn into_inner(self) -> S {
        self.stream
    }

    /// Sends one message.
    ///
    /// # Errors
    ///
    /// See [`write_frame`].
    pub fn send(&mut self, msg: &Message) -> Result<()> {
        write_frame(&mut self.stream, msg)
    }

    /// Receives the next message, or `None` at a clean end-of-stream.
    ///
    /// # Errors
    ///
    /// See [`read_frame`].
    pub fn recv(&mut self) -> Result<Option<Message>> {
        read_frame(&mut self.stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdaptivityType, Register};
    use std::io::Cursor;

    #[test]
    fn frame_round_trip_multiple_messages() {
        let msgs = vec![
            Message::Register(Register {
                pid: 1,
                app_name: "ep.C".into(),
                adaptivity: AdaptivityType::Scalable,
                provides_utility: false,
            }),
            Message::Exit { app_id: 1 },
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, m).unwrap();
        }
        let mut cursor = Cursor::new(buf);
        for m in &msgs {
            assert_eq!(read_frame(&mut cursor).unwrap().as_ref(), Some(m));
        }
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn clean_eof_returns_none_truncation_is_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::Exit { app_id: 3 }).unwrap();
        // Truncate mid-frame.
        buf.truncate(buf.len() - 2);
        let mut cursor = Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn truncated_length_prefix_is_error() {
        let mut cursor = Cursor::new(vec![5u8, 0]);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn oversized_frame_is_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn framed_wrapper_works_over_cursor() {
        let mut inner = Vec::new();
        {
            let mut framed = Framed::new(Cursor::new(&mut inner));
            framed.send(&Message::Exit { app_id: 42 }).unwrap();
        }
        let mut framed = Framed::new(Cursor::new(inner));
        assert_eq!(framed.recv().unwrap(), Some(Message::Exit { app_id: 42 }));
        assert_eq!(framed.recv().unwrap(), None);
    }
}
