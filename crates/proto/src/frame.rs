//! Length-prefixed framing for byte-stream transports (Unix sockets).
//!
//! Each frame is a little-endian `u32` length followed by the encoded
//! [`crate::Message`]. The daemon (`harp-daemon`) wraps
//! `UnixStream`s in [`Framed`]; tests exercise the same code over in-memory
//! buffers.

use crate::Message;
use harp_types::{HarpError, Result};
use std::io::{Read, Write};

/// Maximum accepted frame size (16 MiB) — guards against corrupted length
/// prefixes allocating unbounded memory.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Allocation granularity of the frame-body reader. A corrupted length
/// prefix can claim up to [`MAX_FRAME_LEN`] bytes; reading in chunks means
/// memory only grows as bytes actually arrive, so a peer that lies about
/// the length and then stalls or disconnects costs at most one chunk.
const READ_CHUNK: usize = 64 * 1024;

/// Writes one framed message to `w`.
///
/// A `&mut W` can be passed for any `W: Write`.
///
/// # Errors
///
/// Returns [`HarpError::Io`] on write failure.
pub fn write_frame<W: Write>(mut w: W, msg: &Message) -> Result<()> {
    let body = msg.encode();
    let len = u32::try_from(body.len()).map_err(|_| HarpError::protocol("frame too large"))?;
    if len > MAX_FRAME_LEN {
        return Err(HarpError::protocol("frame too large"));
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&body)?;
    w.flush()?;
    Ok(())
}

/// Encodes one framed message (length prefix + body) into a byte vector —
/// the buffer-building counterpart of [`write_frame`] for outbound rings
/// that batch many frames per `write`.
///
/// # Errors
///
/// Returns [`HarpError::Protocol`] if the encoded body exceeds
/// [`MAX_FRAME_LEN`].
pub fn encode_frame(msg: &Message) -> Result<Vec<u8>> {
    let body = msg.encode();
    let len = u32::try_from(body.len()).map_err(|_| HarpError::protocol("frame too large"))?;
    if len > MAX_FRAME_LEN {
        return Err(HarpError::protocol("frame too large"));
    }
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

/// Reads one framed message from `r`, blocking until a full frame arrives.
///
/// Returns `Ok(None)` on a clean end-of-stream at a frame boundary.
///
/// # Errors
///
/// Returns [`HarpError::Io`] on read failure, [`HarpError::Protocol`] on an
/// oversized frame, a mid-frame end-of-stream, or a malformed body.
pub fn read_frame<R: Read>(mut r: R) -> Result<Option<Message>> {
    let mut len_buf = [0u8; 4];
    // Distinguish clean EOF (zero bytes) from a truncated prefix.
    match r.read(&mut len_buf[..1])? {
        0 => return Ok(None),
        1 => {}
        _ => unreachable!("read of one byte cannot return more"),
    }
    r.read_exact(&mut len_buf[1..])
        .map_err(|_| HarpError::protocol("truncated frame length"))?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(HarpError::protocol(format!("oversized frame: {len} bytes")));
    }
    let mut body = Vec::with_capacity((len as usize).min(READ_CHUNK));
    let mut remaining = len as usize;
    while remaining > 0 {
        let take = remaining.min(READ_CHUNK);
        let start = body.len();
        body.resize(start + take, 0);
        r.read_exact(&mut body[start..])
            .map_err(|_| HarpError::protocol("truncated frame body"))?;
        remaining -= take;
    }
    Message::decode(&body).map(Some)
}

/// Minimum space the decoder exposes per read — one syscall can pull in
/// many small frames at once, which is what makes per-wakeup batching in
/// the reactor shards pay off.
const MIN_READ_SPACE: usize = 16 * 1024;

/// Consumed-prefix size beyond which [`FrameDecoder`] slides remaining
/// bytes to the front of its buffer instead of growing it.
const COMPACT_THRESHOLD: usize = 64 * 1024;

/// One complete frame borrowed out of a [`FrameDecoder`]'s buffer.
///
/// The payload aliases the decoder's internal buffer — no copy is made
/// between the socket read and [`Message::decode`] (which itself borrows
/// all nested payloads). Drop the frame (typically by calling
/// [`Frame::decode`]) before pulling the next one.
#[derive(Debug)]
pub struct Frame<'a> {
    payload: &'a [u8],
}

impl<'a> Frame<'a> {
    /// The raw frame body (without the length prefix).
    pub fn payload(&self) -> &'a [u8] {
        self.payload
    }

    /// Decodes the body into an owned [`Message`].
    ///
    /// # Errors
    ///
    /// Returns [`HarpError::Protocol`] on a malformed body.
    pub fn decode(&self) -> Result<Message> {
        Message::decode(self.payload)
    }
}

/// Incremental, zero-copy frame extraction over a reusable buffer.
///
/// This is the non-blocking counterpart of [`read_frame`]: bytes arrive in
/// arbitrary chunks (`read_space` → `commit`, or [`FrameDecoder::read_from`]
/// for `Read` streams), and [`FrameDecoder::next_frame`] yields complete
/// frames as borrowed [`Frame`]s without copying the body out. The buffer
/// is compacted lazily, so a long-lived session reuses one allocation in
/// steady state.
///
/// # Example
///
/// ```
/// use harp_proto::frame::{write_frame, FrameDecoder};
/// use harp_proto::Message;
///
/// let mut bytes = Vec::new();
/// write_frame(&mut bytes, &Message::Exit { app_id: 1 })?;
/// write_frame(&mut bytes, &Message::Exit { app_id: 2 })?;
///
/// let mut dec = FrameDecoder::new();
/// // Feed an arbitrary split; frames appear once complete.
/// dec.read_space(bytes.len())[..3].copy_from_slice(&bytes[..3]);
/// dec.commit(3);
/// assert!(dec.next_frame()?.is_none());
/// let rest = bytes.len() - 3;
/// dec.read_space(rest)[..rest].copy_from_slice(&bytes[3..]);
/// dec.commit(rest);
/// assert_eq!(dec.next_frame()?.unwrap().decode()?, Message::Exit { app_id: 1 });
/// assert_eq!(dec.next_frame()?.unwrap().decode()?, Message::Exit { app_id: 2 });
/// assert!(dec.next_frame()?.is_none() && dec.is_clean());
/// # Ok::<(), harp_types::HarpError>(())
/// ```
#[derive(Debug, Default)]
pub struct FrameDecoder {
    /// Backing storage; valid bytes live in `buf[head..end]`.
    buf: Vec<u8>,
    head: usize,
    end: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Number of buffered bytes not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.end - self.head
    }

    /// True when the decoder sits at a frame boundary — the state in which
    /// an end-of-stream is a clean close rather than a truncated frame.
    pub fn is_clean(&self) -> bool {
        self.pending() == 0
    }

    /// Returns writable space of at least `min.max(16 KiB)` bytes to read
    /// socket data into; follow with [`FrameDecoder::commit`]. Consumed
    /// prefix space is reclaimed here (never while a [`Frame`] borrow is
    /// live).
    pub fn read_space(&mut self, min: usize) -> &mut [u8] {
        if self.head == self.end {
            self.head = 0;
            self.end = 0;
        } else if self.head >= COMPACT_THRESHOLD {
            self.buf.copy_within(self.head..self.end, 0);
            self.end -= self.head;
            self.head = 0;
        }
        let want = self.end + min.max(MIN_READ_SPACE);
        if self.buf.len() < want {
            self.buf.resize(want, 0);
        }
        &mut self.buf[self.end..]
    }

    /// Marks `n` bytes of the last [`FrameDecoder::read_space`] as filled.
    pub fn commit(&mut self, n: usize) {
        self.end += n;
        debug_assert!(self.end <= self.buf.len());
    }

    /// Reads once from `r` into the buffer. Returns the byte count (0 at
    /// end-of-stream). `WouldBlock` is surfaced for non-blocking streams.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn read_from<R: Read>(&mut self, r: &mut R) -> std::io::Result<usize> {
        let space = self.read_space(MIN_READ_SPACE);
        let n = r.read(space)?;
        self.commit(n);
        Ok(n)
    }

    /// Extracts the next complete frame, or `None` if more bytes are
    /// needed. The frame borrows the internal buffer; it is already
    /// consumed, so dropping it without decoding skips the frame.
    ///
    /// # Errors
    ///
    /// Returns [`HarpError::Protocol`] on an oversized length prefix.
    pub fn next_frame(&mut self) -> Result<Option<Frame<'_>>> {
        if self.pending() < 4 {
            return Ok(None);
        }
        let mut len_buf = [0u8; 4];
        len_buf.copy_from_slice(&self.buf[self.head..self.head + 4]);
        let len = u32::from_le_bytes(len_buf);
        if len > MAX_FRAME_LEN {
            return Err(HarpError::protocol(format!("oversized frame: {len} bytes")));
        }
        let total = 4 + len as usize;
        if self.pending() < total {
            return Ok(None);
        }
        let start = self.head + 4;
        self.head += total;
        Ok(Some(Frame {
            payload: &self.buf[start..start + len as usize],
        }))
    }
}

/// A framed transport over any `Read + Write` stream.
///
/// # Example
///
/// ```
/// use harp_proto::frame::{write_frame, read_frame};
/// use harp_proto::Message;
///
/// let mut buf = Vec::new();
/// write_frame(&mut buf, &Message::Exit { app_id: 1 })?;
/// write_frame(&mut buf, &Message::Exit { app_id: 2 })?;
/// let mut cursor = std::io::Cursor::new(buf);
/// assert_eq!(read_frame(&mut cursor)?, Some(Message::Exit { app_id: 1 }));
/// assert_eq!(read_frame(&mut cursor)?, Some(Message::Exit { app_id: 2 }));
/// assert_eq!(read_frame(&mut cursor)?, None);
/// # Ok::<(), harp_types::HarpError>(())
/// ```
#[derive(Debug)]
pub struct Framed<S> {
    stream: S,
}

impl<S: Read + Write> Framed<S> {
    /// Wraps a stream.
    pub fn new(stream: S) -> Self {
        Framed { stream }
    }

    /// Consumes the wrapper and returns the underlying stream.
    pub fn into_inner(self) -> S {
        self.stream
    }

    /// Sends one message.
    ///
    /// # Errors
    ///
    /// See [`write_frame`].
    pub fn send(&mut self, msg: &Message) -> Result<()> {
        write_frame(&mut self.stream, msg)
    }

    /// Receives the next message, or `None` at a clean end-of-stream.
    ///
    /// # Errors
    ///
    /// See [`read_frame`].
    pub fn recv(&mut self) -> Result<Option<Message>> {
        read_frame(&mut self.stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdaptivityType, Register, TelemetryDump};
    use std::io::Cursor;

    #[test]
    fn frame_round_trip_multiple_messages() {
        let msgs = vec![
            Message::Register(Register {
                pid: 1,
                app_name: "ep.C".into(),
                adaptivity: AdaptivityType::Scalable,
                provides_utility: false,
            }),
            Message::Exit { app_id: 1 },
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, m).unwrap();
        }
        let mut cursor = Cursor::new(buf);
        for m in &msgs {
            assert_eq!(read_frame(&mut cursor).unwrap().as_ref(), Some(m));
        }
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn clean_eof_returns_none_truncation_is_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::Exit { app_id: 3 }).unwrap();
        // Truncate mid-frame.
        buf.truncate(buf.len() - 2);
        let mut cursor = Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn truncated_length_prefix_is_error() {
        let mut cursor = Cursor::new(vec![5u8, 0]);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn oversized_frame_is_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn frame_decoder_batches_many_frames_per_commit() {
        let mut bytes = Vec::new();
        for id in 0..100u64 {
            write_frame(&mut bytes, &Message::Exit { app_id: id }).unwrap();
        }
        let mut dec = FrameDecoder::new();
        let space = dec.read_space(bytes.len());
        space[..bytes.len()].copy_from_slice(&bytes);
        dec.commit(bytes.len());
        for id in 0..100u64 {
            let frame = dec.next_frame().unwrap().expect("frame available");
            assert_eq!(frame.decode().unwrap(), Message::Exit { app_id: id });
        }
        assert!(dec.next_frame().unwrap().is_none());
        assert!(dec.is_clean());
    }

    #[test]
    fn frame_decoder_read_from_matches_read_frame() {
        let mut bytes = Vec::new();
        let msgs = vec![
            Message::Register(Register {
                pid: 7,
                app_name: "ft.B".into(),
                adaptivity: AdaptivityType::Static,
                provides_utility: true,
            }),
            Message::Exit { app_id: 7 },
        ];
        for m in &msgs {
            write_frame(&mut bytes, m).unwrap();
        }
        let mut dec = FrameDecoder::new();
        let mut cursor = Cursor::new(bytes);
        let mut got = Vec::new();
        loop {
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f.decode().unwrap());
            }
            if dec.read_from(&mut cursor).unwrap() == 0 {
                break;
            }
        }
        assert_eq!(got, msgs);
        assert!(dec.is_clean(), "EOF at frame boundary");
    }

    #[test]
    fn frame_decoder_rejects_oversized_prefix() {
        let mut dec = FrameDecoder::new();
        let poison = u32::MAX.to_le_bytes();
        dec.read_space(4)[..4].copy_from_slice(&poison);
        dec.commit(4);
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn frame_decoder_partial_frame_is_not_clean() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &Message::Exit { app_id: 3 }).unwrap();
        let cut = bytes.len() - 2;
        let mut dec = FrameDecoder::new();
        dec.read_space(cut)[..cut].copy_from_slice(&bytes[..cut]);
        dec.commit(cut);
        assert!(dec.next_frame().unwrap().is_none());
        assert!(!dec.is_clean(), "mid-frame EOF must be detectable");
    }

    #[test]
    fn frame_decoder_compacts_and_survives_many_rounds() {
        // Push enough traffic through a small decoder that the consumed
        // prefix crosses the compaction threshold repeatedly.
        let mut one = Vec::new();
        write_frame(
            &mut one,
            &Message::TelemetryDump(TelemetryDump {
                jsonl: "x".repeat(8 * 1024),
                truncated: false,
            }),
        )
        .unwrap();
        let mut dec = FrameDecoder::new();
        for _ in 0..64 {
            let space = dec.read_space(one.len());
            space[..one.len()].copy_from_slice(&one);
            dec.commit(one.len());
            let f = dec.next_frame().unwrap().expect("frame");
            assert_eq!(f.payload().len(), one.len() - 4);
            assert!(dec.next_frame().unwrap().is_none());
        }
        assert!(dec.is_clean());
    }

    #[test]
    fn framed_wrapper_works_over_cursor() {
        let mut inner = Vec::new();
        {
            let mut framed = Framed::new(Cursor::new(&mut inner));
            framed.send(&Message::Exit { app_id: 42 }).unwrap();
        }
        let mut framed = Framed::new(Cursor::new(inner));
        assert_eq!(framed.recv().unwrap(), Some(Message::Exit { app_id: 42 }));
        assert_eq!(framed.recv().unwrap(), None);
    }
}
