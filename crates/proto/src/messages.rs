//! The HARP protocol message set (paper §4.1.1 and Fig. 3).
//!
//! The typical control flow between a managed application and the RM:
//!
//! 1. [`Register`] / [`RegisterAck`] — registration request with the
//!    process id and the supported adaptivity type.
//! 2. [`SubmitPoints`] — operating points from the application description
//!    file, plus the utility-subscription flag carried by [`Register`].
//! 3. [`Activate`] — operating-point activation: the RM communicates the
//!    selected extended resource vector and the concrete core allocation.
//! 4. [`UtilityRequest`] / [`UtilityReport`] — periodic utility feedback.
//! 5. [`Message::Exit`] — deregistration.

use crate::wire::{self, WireType};
use harp_types::{HarpError, Result};

/// Application adaptivity classification (paper §4.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdaptivityType {
    /// No runtime adaptation; threads are managed purely via affinity.
    Static,
    /// Data-parallel application whose parallelization degree libharp can
    /// adjust at runtime (OpenMP/TBB-style, made *malleable*).
    Scalable,
    /// Application-specific adaptation via registered callbacks
    /// (e.g. KPN region scaling, algorithm switching).
    Custom,
}

impl AdaptivityType {
    fn to_raw(self) -> u64 {
        match self {
            AdaptivityType::Static => 0,
            AdaptivityType::Scalable => 1,
            AdaptivityType::Custom => 2,
        }
    }

    fn from_raw(raw: u64) -> Result<Self> {
        match raw {
            0 => Ok(AdaptivityType::Static),
            1 => Ok(AdaptivityType::Scalable),
            2 => Ok(AdaptivityType::Custom),
            other => Err(HarpError::protocol(format!(
                "unknown adaptivity type {other}"
            ))),
        }
    }
}

/// Registration request (application → RM).
#[derive(Debug, Clone, PartialEq)]
pub struct Register {
    /// Process id of the registering application.
    pub pid: u64,
    /// Application name (used to look up stored operating-point profiles).
    pub app_name: String,
    /// Supported adaptivity type.
    pub adaptivity: AdaptivityType,
    /// Whether the application can provide its own utility metric
    /// (otherwise the RM falls back to IPS from perf, paper §4.2.1).
    pub provides_utility: bool,
}

/// Registration acknowledgement (RM → application).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterAck {
    /// The session id assigned by the RM.
    pub app_id: u64,
    /// Daemon boot epoch the session was (re)registered under. `0` from
    /// daemons that predate crash recovery (the decoder skips unknown
    /// fields, so old and new peers interoperate).
    pub epoch: u64,
    /// Opaque token the client presents in a [`Resume`] after a disconnect
    /// to reclaim this session idempotently. `0` means "no resume support".
    pub resume_token: u64,
    /// True when this ack answers a [`Resume`] that reclaimed existing
    /// session state; false for a fresh registration (the client must then
    /// resubmit its operating points).
    pub resumed: bool,
}

impl RegisterAck {
    /// Ack for a fresh registration without resume support (the pre-recovery
    /// wire shape; `epoch`/`resume_token`/`resumed` all zero).
    pub fn new(app_id: u64) -> Self {
        RegisterAck {
            app_id,
            epoch: 0,
            resume_token: 0,
            resumed: false,
        }
    }
}

/// Greeting pushed by the daemon as the first frame on every accepted
/// connection. Carries the daemon's boot epoch so clients can detect a
/// restart, plus a pre-minted resume token for this connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Monotonically increasing daemon boot epoch (bumped on every start
    /// and on every watchdog-triggered internal restart).
    pub epoch: u64,
    /// Token minted for this connection; the daemon also embeds the
    /// authoritative per-session token in [`RegisterAck`].
    pub resume_token: u64,
}

/// Idempotent re-registration after a disconnect (application → RM).
///
/// Presents the resume token from the previous [`RegisterAck`]. If the
/// daemon still (or again, after journal recovery) knows the session, it
/// re-binds the connection to the existing state and replies with
/// `RegisterAck { resumed: true }`; otherwise it falls back to a fresh
/// registration using the carried [`Register`]-equivalent fields and
/// replies `resumed: false`, telling the client to resubmit its points.
#[derive(Debug, Clone, PartialEq)]
pub struct Resume {
    /// Token from the previous registration acknowledgement.
    pub resume_token: u64,
    /// Process id of the resuming application.
    pub pid: u64,
    /// Application name (for the fresh-registration fallback).
    pub app_name: String,
    /// Supported adaptivity type.
    pub adaptivity: AdaptivityType,
    /// Whether the application provides its own utility metric.
    pub provides_utility: bool,
}

/// One operating point on the wire: the flattened extended resource vector
/// plus utility and power. Fine-grained details never cross the interface
/// (paper §4.1.2).
#[derive(Debug, Clone, PartialEq)]
pub struct WirePoint {
    /// Flattened extended resource vector (kind-major slot counts).
    pub erv_flat: Vec<u32>,
    /// Utility (IPS or application-specific).
    pub utility: f64,
    /// Attributed power in watts.
    pub power: f64,
}

/// Operating points from an application description file
/// (application → RM).
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitPoints {
    /// Session id.
    pub app_id: u64,
    /// Per-kind SMT widths describing the vector shape.
    pub smt_widths: Vec<u32>,
    /// The submitted points.
    pub points: Vec<WirePoint>,
}

/// Operating-point activation (RM → application): the new allocation the
/// application must adapt to (paper §4.1.1 step 3).
#[derive(Debug, Clone, PartialEq)]
pub struct Activate {
    /// Session id.
    pub app_id: u64,
    /// The selected extended resource vector (flattened).
    pub erv_flat: Vec<u32>,
    /// The concrete physical cores allocated (spatial isolation).
    pub core_ids: Vec<u32>,
    /// The parallelization degree derived from the vector — the value the
    /// scalable-application hook clamps the team size to.
    pub parallelism: u32,
    /// The concrete hardware threads (SMT siblings) granted — what
    /// `sched_setaffinity` masks are built from.
    pub hw_thread_ids: Vec<u32>,
}

/// Utility poll (RM → application).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UtilityRequest {
    /// Session id.
    pub app_id: u64,
}

/// Utility feedback (application → RM, paper §4.1.1 step 4).
#[derive(Debug, Clone, PartialEq)]
pub struct UtilityReport {
    /// Session id.
    pub app_id: u64,
    /// Current application-specific utility (work per second).
    pub utility: f64,
}

/// Protocol-level error notification.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorMsg {
    /// Numeric error code.
    pub code: u32,
    /// Human-readable description.
    pub detail: String,
}

/// Telemetry dump request (observer → RM daemon).
///
/// Any client may ask the daemon to serialize its flight recorder; the
/// daemon replies with a [`TelemetryDump`]. This is how `harp-trace`
/// inspects a live daemon without attaching a debugger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DumpTelemetry {
    /// Whether to append a metrics snapshot after the event lines.
    pub include_metrics: bool,
}

/// Telemetry dump reply (RM daemon → observer).
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryDump {
    /// `harp-obs-v1` JSONL document (may be truncated to respect the
    /// frame limit; truncation always happens at a line boundary).
    pub jsonl: String,
    /// True when the daemon had to drop trailing lines to fit the frame.
    pub truncated: bool,
}

/// Live telemetry subscription request (observer → RM daemon).
///
/// Unlike the one-shot [`DumpTelemetry`], a subscription asks the daemon
/// to push a [`TelemetryFrame`] roughly every `interval_ms` until the
/// connection closes. Frames are bounded and drop-oldest under
/// backpressure: when the subscriber's outbound queue is saturated the
/// daemon skips pushes and accounts for them in
/// [`TelemetryFrame::dropped_frames`], so a slow observer can always
/// detect exactly how many intervals it missed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubscribeTelemetry {
    /// Requested push interval in milliseconds; the daemon clamps it to
    /// its own floor (0 means "daemon default").
    pub interval_ms: u32,
    /// Whether frames should include interval metric deltas rendered as
    /// `harp-obs-v1` metric JSONL lines.
    pub include_metrics: bool,
}

/// Per-session row in a [`TelemetryFrame`]: the energy-ledger slice and
/// latency digest for one live session over the frame interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionEnergy {
    /// Session id.
    pub app_id: u64,
    /// Application name.
    pub name: String,
    /// Micro-joules attributed to the session over this interval.
    pub tick_uj: u64,
    /// Cumulative micro-joules attributed since the session registered.
    pub total_uj: u64,
    /// p99 request-handling latency over the interval, microseconds
    /// (0 when the session issued no requests this interval).
    pub latency_p99_us: u64,
}

/// One pushed telemetry interval (RM daemon → subscriber).
///
/// Energy fields mirror the RM's [`EnergyLedger`] tick accounting: the
/// per-session `tick_uj` values plus `idle_uj` sum exactly to the global
/// `tick_uj` (largest-remainder apportionment; see DESIGN.md §14).
///
/// [`EnergyLedger`]: https://docs.rs/harp-rm
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryFrame {
    /// Frame sequence number within this subscription, starting at 0.
    /// `seq` advances even for dropped frames, so
    /// `seq + 1 == delivered + dropped_frames` holds at the subscriber.
    pub seq: u64,
    /// Cumulative count of frames this subscription dropped under
    /// backpressure (drop-oldest; never delivered, never re-sent).
    pub dropped_frames: u64,
    /// Actual push interval in milliseconds after daemon clamping.
    pub interval_ms: u32,
    /// Global modeled energy over this interval, micro-joules.
    pub tick_uj: u64,
    /// Share of `tick_uj` charged to the idle account this interval.
    pub idle_uj: u64,
    /// Cumulative global modeled energy, micro-joules.
    pub total_uj: u64,
    /// Per-session ledger rows, ascending `app_id`.
    pub sessions: Vec<SessionEnergy>,
    /// Interval metric deltas as `harp-obs-v1` metric JSONL lines
    /// (empty unless the subscription asked for metrics).
    pub metrics_jsonl: String,
}

/// Envelope over all protocol messages.
///
/// On the wire: field 1 (varint) holds the message-type discriminant,
/// field 2 (length-delimited) the type-specific payload. Unknown fields in
/// any payload are skipped.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum Message {
    Register(Register),
    RegisterAck(RegisterAck),
    SubmitPoints(SubmitPoints),
    Activate(Activate),
    UtilityRequest(UtilityRequest),
    UtilityReport(UtilityReport),
    Exit {
        /// Session id of the exiting application.
        app_id: u64,
    },
    Error(ErrorMsg),
    DumpTelemetry(DumpTelemetry),
    TelemetryDump(TelemetryDump),
    Hello(Hello),
    Resume(Resume),
    SubscribeTelemetry(SubscribeTelemetry),
    TelemetryFrame(TelemetryFrame),
}

impl Message {
    fn discriminant(&self) -> u64 {
        match self {
            Message::Register(_) => 1,
            Message::RegisterAck(_) => 2,
            Message::SubmitPoints(_) => 3,
            Message::Activate(_) => 4,
            Message::UtilityRequest(_) => 5,
            Message::UtilityReport(_) => 6,
            Message::Exit { .. } => 7,
            Message::Error(_) => 8,
            Message::DumpTelemetry(_) => 9,
            Message::TelemetryDump(_) => 10,
            Message::Hello(_) => 11,
            Message::Resume(_) => 12,
            Message::SubscribeTelemetry(_) => 13,
            Message::TelemetryFrame(_) => 14,
        }
    }

    /// Encodes the message to its wire representation.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        match self {
            Message::Register(m) => {
                wire::put_uint_field(&mut payload, 1, m.pid);
                wire::put_str_field(&mut payload, 2, &m.app_name);
                wire::put_uint_field(&mut payload, 3, m.adaptivity.to_raw());
                wire::put_uint_field(&mut payload, 4, u64::from(m.provides_utility));
            }
            Message::RegisterAck(m) => {
                wire::put_uint_field(&mut payload, 1, m.app_id);
                wire::put_uint_field(&mut payload, 2, m.epoch);
                wire::put_uint_field(&mut payload, 3, m.resume_token);
                wire::put_uint_field(&mut payload, 4, u64::from(m.resumed));
            }
            Message::SubmitPoints(m) => {
                wire::put_uint_field(&mut payload, 1, m.app_id);
                wire::put_packed_u32_field(&mut payload, 2, &m.smt_widths);
                for p in &m.points {
                    let mut inner = Vec::new();
                    wire::put_packed_u32_field(&mut inner, 1, &p.erv_flat);
                    wire::put_f64_field(&mut inner, 2, p.utility);
                    wire::put_f64_field(&mut inner, 3, p.power);
                    wire::put_bytes_field(&mut payload, 3, &inner);
                }
            }
            Message::Activate(m) => {
                wire::put_uint_field(&mut payload, 1, m.app_id);
                wire::put_packed_u32_field(&mut payload, 2, &m.erv_flat);
                wire::put_packed_u32_field(&mut payload, 3, &m.core_ids);
                wire::put_uint_field(&mut payload, 4, u64::from(m.parallelism));
                wire::put_packed_u32_field(&mut payload, 5, &m.hw_thread_ids);
            }
            Message::UtilityRequest(m) => {
                wire::put_uint_field(&mut payload, 1, m.app_id);
            }
            Message::UtilityReport(m) => {
                wire::put_uint_field(&mut payload, 1, m.app_id);
                wire::put_f64_field(&mut payload, 2, m.utility);
            }
            Message::Exit { app_id } => {
                wire::put_uint_field(&mut payload, 1, *app_id);
            }
            Message::Error(m) => {
                wire::put_uint_field(&mut payload, 1, u64::from(m.code));
                wire::put_str_field(&mut payload, 2, &m.detail);
            }
            Message::DumpTelemetry(m) => {
                wire::put_uint_field(&mut payload, 1, u64::from(m.include_metrics));
            }
            Message::TelemetryDump(m) => {
                wire::put_str_field(&mut payload, 1, &m.jsonl);
                wire::put_uint_field(&mut payload, 2, u64::from(m.truncated));
            }
            Message::Hello(m) => {
                wire::put_uint_field(&mut payload, 1, m.epoch);
                wire::put_uint_field(&mut payload, 2, m.resume_token);
            }
            Message::Resume(m) => {
                wire::put_uint_field(&mut payload, 1, m.resume_token);
                wire::put_uint_field(&mut payload, 2, m.pid);
                wire::put_str_field(&mut payload, 3, &m.app_name);
                wire::put_uint_field(&mut payload, 4, m.adaptivity.to_raw());
                wire::put_uint_field(&mut payload, 5, u64::from(m.provides_utility));
            }
            Message::SubscribeTelemetry(m) => {
                wire::put_uint_field(&mut payload, 1, u64::from(m.interval_ms));
                wire::put_uint_field(&mut payload, 2, u64::from(m.include_metrics));
            }
            Message::TelemetryFrame(m) => {
                wire::put_uint_field(&mut payload, 1, m.seq);
                wire::put_uint_field(&mut payload, 2, m.dropped_frames);
                wire::put_uint_field(&mut payload, 3, u64::from(m.interval_ms));
                wire::put_uint_field(&mut payload, 4, m.tick_uj);
                wire::put_uint_field(&mut payload, 5, m.idle_uj);
                wire::put_uint_field(&mut payload, 6, m.total_uj);
                for s in &m.sessions {
                    let mut inner = Vec::new();
                    wire::put_uint_field(&mut inner, 1, s.app_id);
                    wire::put_str_field(&mut inner, 2, &s.name);
                    wire::put_uint_field(&mut inner, 3, s.tick_uj);
                    wire::put_uint_field(&mut inner, 4, s.total_uj);
                    wire::put_uint_field(&mut inner, 5, s.latency_p99_us);
                    wire::put_bytes_field(&mut payload, 7, &inner);
                }
                wire::put_str_field(&mut payload, 8, &m.metrics_jsonl);
            }
        }
        let mut out = Vec::with_capacity(payload.len() + 8);
        wire::put_uint_field(&mut out, 1, self.discriminant());
        wire::put_bytes_field(&mut out, 2, &payload);
        out
    }

    /// Decodes a message from its wire representation.
    ///
    /// The envelope payload and every nested submessage are *borrowed*
    /// from `bytes` while parsing — no intermediate copies are made. Only
    /// the owned fields of the resulting [`Message`] (strings, vectors)
    /// allocate; messages without such fields decode allocation-free.
    /// The pre-reactor allocating decoder is frozen in [`crate::legacy`]
    /// as a differential oracle.
    ///
    /// # Errors
    ///
    /// Returns [`HarpError::Protocol`] for truncated or malformed input,
    /// unknown discriminants, or missing required fields.
    pub fn decode(mut bytes: &[u8]) -> Result<Message> {
        let buf = &mut bytes;
        let mut discriminant: Option<u64> = None;
        let mut payload: Option<&[u8]> = None;
        while !buf.is_empty() {
            let (field, wiretype) = wire::get_key(buf)?;
            match (field, wiretype) {
                (1, WireType::Varint) => discriminant = Some(wire::get_varint(buf)?),
                (2, WireType::LengthDelimited) => payload = Some(wire::take_bytes(buf)?),
                (_, w) => wire::skip_field(buf, w)?,
            }
        }
        let discriminant =
            discriminant.ok_or_else(|| HarpError::protocol("missing message discriminant"))?;
        let mut p = payload.ok_or_else(|| HarpError::protocol("missing message payload"))?;
        decode_payload(discriminant, &mut p)
    }
}

fn decode_payload(discriminant: u64, buf: &mut &[u8]) -> Result<Message> {
    match discriminant {
        1 => {
            let (mut pid, mut name, mut adapt, mut provides) = (0u64, String::new(), 0u64, false);
            for_each_field(buf, |field, wiretype, buf| {
                match (field, wiretype) {
                    (1, WireType::Varint) => pid = wire::get_varint(buf)?,
                    (2, WireType::LengthDelimited) => name = wire::take_str(buf)?.to_owned(),
                    (3, WireType::Varint) => adapt = wire::get_varint(buf)?,
                    (4, WireType::Varint) => provides = wire::get_varint(buf)? != 0,
                    (_, w) => wire::skip_field(buf, w)?,
                }
                Ok(())
            })?;
            Ok(Message::Register(Register {
                pid,
                app_name: name,
                adaptivity: AdaptivityType::from_raw(adapt)?,
                provides_utility: provides,
            }))
        }
        2 => {
            let (mut app_id, mut epoch, mut resume_token, mut resumed) = (0u64, 0u64, 0u64, false);
            for_each_field(buf, |field, wiretype, buf| {
                match (field, wiretype) {
                    (1, WireType::Varint) => app_id = wire::get_varint(buf)?,
                    (2, WireType::Varint) => epoch = wire::get_varint(buf)?,
                    (3, WireType::Varint) => resume_token = wire::get_varint(buf)?,
                    (4, WireType::Varint) => resumed = wire::get_varint(buf)? != 0,
                    (_, w) => wire::skip_field(buf, w)?,
                }
                Ok(())
            })?;
            Ok(Message::RegisterAck(RegisterAck {
                app_id,
                epoch,
                resume_token,
                resumed,
            }))
        }
        3 => {
            let mut app_id = 0u64;
            let mut smt_widths = Vec::new();
            let mut points = Vec::new();
            for_each_field(buf, |field, wiretype, buf| {
                match (field, wiretype) {
                    (1, WireType::Varint) => app_id = wire::get_varint(buf)?,
                    (2, WireType::LengthDelimited) => smt_widths = wire::take_packed_u32(buf)?,
                    (3, WireType::LengthDelimited) => {
                        let mut inner = wire::take_bytes(buf)?;
                        points.push(decode_point(&mut inner)?);
                    }
                    (_, w) => wire::skip_field(buf, w)?,
                }
                Ok(())
            })?;
            Ok(Message::SubmitPoints(SubmitPoints {
                app_id,
                smt_widths,
                points,
            }))
        }
        4 => {
            let mut app_id = 0u64;
            let mut erv_flat = Vec::new();
            let mut core_ids = Vec::new();
            let mut parallelism = 0u32;
            let mut hw_thread_ids = Vec::new();
            for_each_field(buf, |field, wiretype, buf| {
                match (field, wiretype) {
                    (1, WireType::Varint) => app_id = wire::get_varint(buf)?,
                    (2, WireType::LengthDelimited) => erv_flat = wire::take_packed_u32(buf)?,
                    (3, WireType::LengthDelimited) => core_ids = wire::take_packed_u32(buf)?,
                    (4, WireType::Varint) => {
                        parallelism = u32::try_from(wire::get_varint(buf)?)
                            .map_err(|_| HarpError::protocol("parallelism too large"))?
                    }
                    (5, WireType::LengthDelimited) => hw_thread_ids = wire::take_packed_u32(buf)?,
                    (_, w) => wire::skip_field(buf, w)?,
                }
                Ok(())
            })?;
            Ok(Message::Activate(Activate {
                app_id,
                erv_flat,
                core_ids,
                parallelism,
                hw_thread_ids,
            }))
        }
        5 => {
            let mut app_id = 0u64;
            for_each_field(buf, |field, wiretype, buf| {
                match (field, wiretype) {
                    (1, WireType::Varint) => app_id = wire::get_varint(buf)?,
                    (_, w) => wire::skip_field(buf, w)?,
                }
                Ok(())
            })?;
            Ok(Message::UtilityRequest(UtilityRequest { app_id }))
        }
        6 => {
            let mut app_id = 0u64;
            let mut utility = 0.0;
            for_each_field(buf, |field, wiretype, buf| {
                match (field, wiretype) {
                    (1, WireType::Varint) => app_id = wire::get_varint(buf)?,
                    (2, WireType::Fixed64) => utility = wire::get_f64(buf)?,
                    (_, w) => wire::skip_field(buf, w)?,
                }
                Ok(())
            })?;
            Ok(Message::UtilityReport(UtilityReport { app_id, utility }))
        }
        7 => {
            let mut app_id = 0u64;
            for_each_field(buf, |field, wiretype, buf| {
                match (field, wiretype) {
                    (1, WireType::Varint) => app_id = wire::get_varint(buf)?,
                    (_, w) => wire::skip_field(buf, w)?,
                }
                Ok(())
            })?;
            Ok(Message::Exit { app_id })
        }
        8 => {
            let mut code = 0u32;
            let mut detail = String::new();
            for_each_field(buf, |field, wiretype, buf| {
                match (field, wiretype) {
                    (1, WireType::Varint) => {
                        code = u32::try_from(wire::get_varint(buf)?)
                            .map_err(|_| HarpError::protocol("error code too large"))?
                    }
                    (2, WireType::LengthDelimited) => detail = wire::take_str(buf)?.to_owned(),
                    (_, w) => wire::skip_field(buf, w)?,
                }
                Ok(())
            })?;
            Ok(Message::Error(ErrorMsg { code, detail }))
        }
        9 => {
            let mut include_metrics = false;
            for_each_field(buf, |field, wiretype, buf| {
                match (field, wiretype) {
                    (1, WireType::Varint) => include_metrics = wire::get_varint(buf)? != 0,
                    (_, w) => wire::skip_field(buf, w)?,
                }
                Ok(())
            })?;
            Ok(Message::DumpTelemetry(DumpTelemetry { include_metrics }))
        }
        10 => {
            let mut jsonl = String::new();
            let mut truncated = false;
            for_each_field(buf, |field, wiretype, buf| {
                match (field, wiretype) {
                    (1, WireType::LengthDelimited) => jsonl = wire::take_str(buf)?.to_owned(),
                    (2, WireType::Varint) => truncated = wire::get_varint(buf)? != 0,
                    (_, w) => wire::skip_field(buf, w)?,
                }
                Ok(())
            })?;
            Ok(Message::TelemetryDump(TelemetryDump { jsonl, truncated }))
        }
        11 => {
            let (mut epoch, mut resume_token) = (0u64, 0u64);
            for_each_field(buf, |field, wiretype, buf| {
                match (field, wiretype) {
                    (1, WireType::Varint) => epoch = wire::get_varint(buf)?,
                    (2, WireType::Varint) => resume_token = wire::get_varint(buf)?,
                    (_, w) => wire::skip_field(buf, w)?,
                }
                Ok(())
            })?;
            Ok(Message::Hello(Hello {
                epoch,
                resume_token,
            }))
        }
        12 => {
            let (mut resume_token, mut pid, mut name, mut adapt, mut provides) =
                (0u64, 0u64, String::new(), 0u64, false);
            for_each_field(buf, |field, wiretype, buf| {
                match (field, wiretype) {
                    (1, WireType::Varint) => resume_token = wire::get_varint(buf)?,
                    (2, WireType::Varint) => pid = wire::get_varint(buf)?,
                    (3, WireType::LengthDelimited) => name = wire::take_str(buf)?.to_owned(),
                    (4, WireType::Varint) => adapt = wire::get_varint(buf)?,
                    (5, WireType::Varint) => provides = wire::get_varint(buf)? != 0,
                    (_, w) => wire::skip_field(buf, w)?,
                }
                Ok(())
            })?;
            Ok(Message::Resume(Resume {
                resume_token,
                pid,
                app_name: name,
                adaptivity: AdaptivityType::from_raw(adapt)?,
                provides_utility: provides,
            }))
        }
        13 => {
            let mut interval_ms = 0u32;
            let mut include_metrics = false;
            for_each_field(buf, |field, wiretype, buf| {
                match (field, wiretype) {
                    (1, WireType::Varint) => {
                        interval_ms = u32::try_from(wire::get_varint(buf)?)
                            .map_err(|_| HarpError::protocol("interval too large"))?
                    }
                    (2, WireType::Varint) => include_metrics = wire::get_varint(buf)? != 0,
                    (_, w) => wire::skip_field(buf, w)?,
                }
                Ok(())
            })?;
            Ok(Message::SubscribeTelemetry(SubscribeTelemetry {
                interval_ms,
                include_metrics,
            }))
        }
        14 => {
            let mut frame = TelemetryFrame {
                seq: 0,
                dropped_frames: 0,
                interval_ms: 0,
                tick_uj: 0,
                idle_uj: 0,
                total_uj: 0,
                sessions: Vec::new(),
                metrics_jsonl: String::new(),
            };
            for_each_field(buf, |field, wiretype, buf| {
                match (field, wiretype) {
                    (1, WireType::Varint) => frame.seq = wire::get_varint(buf)?,
                    (2, WireType::Varint) => frame.dropped_frames = wire::get_varint(buf)?,
                    (3, WireType::Varint) => {
                        frame.interval_ms = u32::try_from(wire::get_varint(buf)?)
                            .map_err(|_| HarpError::protocol("interval too large"))?
                    }
                    (4, WireType::Varint) => frame.tick_uj = wire::get_varint(buf)?,
                    (5, WireType::Varint) => frame.idle_uj = wire::get_varint(buf)?,
                    (6, WireType::Varint) => frame.total_uj = wire::get_varint(buf)?,
                    (7, WireType::LengthDelimited) => {
                        let mut inner = wire::take_bytes(buf)?;
                        frame.sessions.push(decode_session_energy(&mut inner)?);
                    }
                    (8, WireType::LengthDelimited) => {
                        frame.metrics_jsonl = wire::take_str(buf)?.to_owned()
                    }
                    (_, w) => wire::skip_field(buf, w)?,
                }
                Ok(())
            })?;
            Ok(Message::TelemetryFrame(frame))
        }
        other => Err(HarpError::protocol(format!(
            "unknown message discriminant {other}"
        ))),
    }
}

fn decode_session_energy(buf: &mut &[u8]) -> Result<SessionEnergy> {
    let mut s = SessionEnergy {
        app_id: 0,
        name: String::new(),
        tick_uj: 0,
        total_uj: 0,
        latency_p99_us: 0,
    };
    for_each_field(buf, |field, wiretype, buf| {
        match (field, wiretype) {
            (1, WireType::Varint) => s.app_id = wire::get_varint(buf)?,
            (2, WireType::LengthDelimited) => s.name = wire::take_str(buf)?.to_owned(),
            (3, WireType::Varint) => s.tick_uj = wire::get_varint(buf)?,
            (4, WireType::Varint) => s.total_uj = wire::get_varint(buf)?,
            (5, WireType::Varint) => s.latency_p99_us = wire::get_varint(buf)?,
            (_, w) => wire::skip_field(buf, w)?,
        }
        Ok(())
    })?;
    Ok(s)
}

fn decode_point(buf: &mut &[u8]) -> Result<WirePoint> {
    let mut erv_flat = Vec::new();
    let mut utility = 0.0;
    let mut power = 0.0;
    for_each_field(buf, |field, wiretype, buf| {
        match (field, wiretype) {
            (1, WireType::LengthDelimited) => erv_flat = wire::take_packed_u32(buf)?,
            (2, WireType::Fixed64) => utility = wire::get_f64(buf)?,
            (3, WireType::Fixed64) => power = wire::get_f64(buf)?,
            (_, w) => wire::skip_field(buf, w)?,
        }
        Ok(())
    })?;
    Ok(WirePoint {
        erv_flat,
        utility,
        power,
    })
}

fn for_each_field(
    buf: &mut &[u8],
    mut f: impl FnMut(u32, WireType, &mut &[u8]) -> Result<()>,
) -> Result<()> {
    while !buf.is_empty() {
        let (field, wiretype) = wire::get_key(buf)?;
        f(field, wiretype, buf)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) {
        let bytes = msg.encode();
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(msg, back);
    }

    #[test]
    fn all_message_types_round_trip() {
        round_trip(Message::Register(Register {
            pid: 31337,
            app_name: "binpack".into(),
            adaptivity: AdaptivityType::Scalable,
            provides_utility: true,
        }));
        round_trip(Message::RegisterAck(RegisterAck::new(9)));
        round_trip(Message::RegisterAck(RegisterAck {
            app_id: 9,
            epoch: 4,
            resume_token: 0xdead_beef,
            resumed: true,
        }));
        round_trip(Message::Hello(Hello {
            epoch: 3,
            resume_token: 77,
        }));
        round_trip(Message::Resume(Resume {
            resume_token: 77,
            pid: 4242,
            app_name: "binpack".into(),
            adaptivity: AdaptivityType::Scalable,
            provides_utility: false,
        }));
        round_trip(Message::SubmitPoints(SubmitPoints {
            app_id: 9,
            smt_widths: vec![2, 1],
            points: vec![
                WirePoint {
                    erv_flat: vec![0, 8, 16],
                    utility: 3.3e10,
                    power: 110.5,
                },
                WirePoint {
                    erv_flat: vec![1, 0, 0],
                    utility: 9.0e9,
                    power: 11.0,
                },
            ],
        }));
        round_trip(Message::Activate(Activate {
            app_id: 9,
            erv_flat: vec![1, 2, 4],
            core_ids: vec![0, 1, 2, 8, 9, 10, 11],
            parallelism: 9,
            hw_thread_ids: vec![0, 1, 2, 3, 4, 16, 17, 18, 19],
        }));
        round_trip(Message::UtilityRequest(UtilityRequest { app_id: 9 }));
        round_trip(Message::UtilityReport(UtilityReport {
            app_id: 9,
            utility: 1234.5,
        }));
        round_trip(Message::Exit { app_id: 9 });
        round_trip(Message::Error(ErrorMsg {
            code: 3,
            detail: "no such session".into(),
        }));
        round_trip(Message::DumpTelemetry(DumpTelemetry {
            include_metrics: true,
        }));
        round_trip(Message::DumpTelemetry(DumpTelemetry {
            include_metrics: false,
        }));
        round_trip(Message::TelemetryDump(TelemetryDump {
            jsonl: "{\"type\":\"meta\",\"format\":\"harp-obs-v1\"}\n".into(),
            truncated: false,
        }));
        round_trip(Message::TelemetryDump(TelemetryDump {
            jsonl: String::new(),
            truncated: true,
        }));
        round_trip(Message::SubscribeTelemetry(SubscribeTelemetry {
            interval_ms: 250,
            include_metrics: true,
        }));
        round_trip(Message::SubscribeTelemetry(SubscribeTelemetry {
            interval_ms: 0,
            include_metrics: false,
        }));
        round_trip(Message::TelemetryFrame(TelemetryFrame {
            seq: 41,
            dropped_frames: 3,
            interval_ms: 250,
            tick_uj: 1_000_001,
            idle_uj: 17,
            total_uj: 99_000_000,
            sessions: vec![
                SessionEnergy {
                    app_id: 1,
                    name: "mg".into(),
                    tick_uj: 700_000,
                    total_uj: 60_000_000,
                    latency_p99_us: 812,
                },
                SessionEnergy {
                    app_id: 2,
                    name: "binpack".into(),
                    tick_uj: 299_984,
                    total_uj: 38_999_983,
                    latency_p99_us: 0,
                },
            ],
            metrics_jsonl:
                "{\"type\":\"metric\",\"metric\":\"counter\",\"name\":\"rm.ticks\",\"value\":4}\n"
                    .into(),
        }));
        round_trip(Message::TelemetryFrame(TelemetryFrame {
            seq: 0,
            dropped_frames: 0,
            interval_ms: 0,
            tick_uj: 0,
            idle_uj: 0,
            total_uj: 0,
            sessions: vec![],
            metrics_jsonl: String::new(),
        }));
    }

    #[test]
    fn empty_collections_round_trip() {
        round_trip(Message::SubmitPoints(SubmitPoints {
            app_id: 0,
            smt_widths: vec![],
            points: vec![],
        }));
        round_trip(Message::Activate(Activate {
            app_id: 0,
            erv_flat: vec![],
            core_ids: vec![],
            parallelism: 0,
            hw_thread_ids: vec![],
        }));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Message::decode(&[]).is_err());
        assert!(Message::decode(&[0xff, 0xff, 0xff]).is_err());
        // Valid envelope but unknown discriminant.
        let mut out = Vec::new();
        wire::put_uint_field(&mut out, 1, 99);
        wire::put_bytes_field(&mut out, 2, &[]);
        assert!(Message::decode(&out).is_err());
    }

    #[test]
    fn telemetry_frame_decoder_skips_unknown_fields_everywhere() {
        // A future daemon may extend both the frame and its per-session
        // rows; today's decoder must skip the extensions at both levels.
        let mut inner = Vec::new();
        wire::put_uint_field(&mut inner, 1, 7);
        wire::put_str_field(&mut inner, 2, "mg");
        wire::put_uint_field(&mut inner, 3, 5);
        wire::put_uint_field(&mut inner, 9, 0xfeed); // unknown session field
        let mut payload = Vec::new();
        wire::put_uint_field(&mut payload, 1, 2);
        wire::put_uint_field(&mut payload, 4, 5);
        wire::put_bytes_field(&mut payload, 7, &inner);
        wire::put_str_field(&mut payload, 21, "future"); // unknown frame field
        let mut out = Vec::new();
        wire::put_uint_field(&mut out, 1, 14);
        wire::put_bytes_field(&mut out, 2, &payload);
        let got = Message::decode(&out).unwrap();
        let Message::TelemetryFrame(f) = got else {
            panic!("expected TelemetryFrame, got {got:?}");
        };
        assert_eq!(f.seq, 2);
        assert_eq!(f.tick_uj, 5);
        assert_eq!(f.sessions.len(), 1);
        assert_eq!(f.sessions[0].app_id, 7);
        assert_eq!(f.sessions[0].name, "mg");
        assert_eq!(f.sessions[0].tick_uj, 5);
    }

    #[test]
    fn telemetry_frame_decode_rejects_garbage_sessions() {
        // A corrupt nested session row must surface as a protocol error,
        // not a panic or silent skip.
        let mut payload = Vec::new();
        wire::put_uint_field(&mut payload, 1, 2);
        wire::put_bytes_field(&mut payload, 7, &[0xff, 0xff, 0xff, 0xff]);
        let mut out = Vec::new();
        wire::put_uint_field(&mut out, 1, 14);
        wire::put_bytes_field(&mut out, 2, &payload);
        assert!(Message::decode(&out).is_err());
    }

    #[test]
    fn decoder_skips_unknown_fields() {
        // Encode a RegisterAck with an extra field 17 appended to its payload.
        let mut payload = Vec::new();
        wire::put_uint_field(&mut payload, 1, 5);
        wire::put_str_field(&mut payload, 17, "future extension");
        let mut out = Vec::new();
        wire::put_uint_field(&mut out, 1, 2);
        wire::put_bytes_field(&mut out, 2, &payload);
        assert_eq!(
            Message::decode(&out).unwrap(),
            Message::RegisterAck(RegisterAck::new(5))
        );
    }

    #[test]
    fn old_register_ack_payload_decodes_with_zero_recovery_fields() {
        // A pre-recovery daemon only emits field 1; the new decoder must
        // fill the recovery fields with their compatibility defaults.
        let mut payload = Vec::new();
        wire::put_uint_field(&mut payload, 1, 5);
        let mut out = Vec::new();
        wire::put_uint_field(&mut out, 1, 2);
        wire::put_bytes_field(&mut out, 2, &payload);
        let got = Message::decode(&out).unwrap();
        assert_eq!(got, Message::RegisterAck(RegisterAck::new(5)));
    }

    #[test]
    fn adaptivity_type_raw_values_are_stable() {
        // Wire compatibility: these values must never change.
        assert_eq!(AdaptivityType::Static.to_raw(), 0);
        assert_eq!(AdaptivityType::Scalable.to_raw(), 1);
        assert_eq!(AdaptivityType::Custom.to_raw(), 2);
        assert!(AdaptivityType::from_raw(3).is_err());
    }
}
