//! Byte-cursor traits used by the wire codec. These mirror the subset of
//! the `bytes` crate's `Buf`/`BufMut` that the codec needs, implemented for
//! plain `&[u8]` readers and `Vec<u8>` writers so the crate has no external
//! dependency.

/// A readable byte cursor.
pub trait Buf {
    /// Number of unread bytes.
    fn remaining(&self) -> usize;

    /// Whether any unread bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte. Panics if empty; callers check `has_remaining`.
    fn get_u8(&mut self) -> u8;

    /// Reads a little-endian `u64`. Panics if fewer than 8 bytes remain;
    /// callers check `remaining`.
    fn get_u64_le(&mut self) -> u64;

    /// Copies the next `len` bytes out and advances past them. Panics if
    /// fewer than `len` bytes remain.
    fn copy_to_bytes(&mut self, len: usize) -> Vec<u8>;

    /// Discards the next `n` bytes. Panics if fewer than `n` remain.
    fn advance(&mut self, n: usize);
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (first, rest) = self.split_first().expect("get_u8 on empty buffer");
        *self = rest;
        *first
    }

    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        u64::from_le_bytes(head.try_into().unwrap())
    }

    fn copy_to_bytes(&mut self, len: usize) -> Vec<u8> {
        let (head, rest) = self.split_at(len);
        *self = rest;
        head.to_vec()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn get_u8(&mut self) -> u8 {
        (**self).get_u8()
    }
    fn get_u64_le(&mut self) -> u64 {
        (**self).get_u64_le()
    }
    fn copy_to_bytes(&mut self, len: usize) -> Vec<u8> {
        (**self).copy_to_bytes(len)
    }
    fn advance(&mut self, n: usize) {
        (**self).advance(n)
    }
}

/// A growable byte sink.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, value: u8);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, value: u64);
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, value: u8) {
        self.push(value);
    }
    fn put_u64_le(&mut self, value: u64) {
        self.extend_from_slice(&value.to_le_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_u8(&mut self, value: u8) {
        (**self).put_u8(value)
    }
    fn put_u64_le(&mut self, value: u64) {
        (**self).put_u64_le(value)
    }
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_cursor_reads_and_advances() {
        let data = [1u8, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        let mut cursor: &[u8] = &data;
        assert_eq!(cursor.get_u8(), 1);
        assert_eq!(cursor.get_u8(), 2);
        assert_eq!(
            cursor.get_u64_le(),
            u64::from_le_bytes([3, 4, 5, 6, 7, 8, 9, 10])
        );
        assert!(!cursor.has_remaining());
    }

    #[test]
    fn vec_sink_appends() {
        let mut out = Vec::new();
        out.put_u8(0xAB);
        out.put_u64_le(1);
        out.put_slice(&[9, 9]);
        assert_eq!(out.len(), 11);
        assert_eq!(out[0], 0xAB);
        assert_eq!(&out[9..], &[9, 9]);
    }

    #[test]
    fn copy_to_bytes_splits() {
        let data = [5u8, 6, 7];
        let mut cursor: &[u8] = &data;
        assert_eq!(cursor.copy_to_bytes(2), vec![5, 6]);
        assert_eq!(cursor.remaining(), 1);
        cursor.advance(1);
        assert!(!cursor.has_remaining());
    }
}
