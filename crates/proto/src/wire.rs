//! Low-level, protobuf-compatible encoding primitives.
//!
//! Wire types follow the protobuf encoding: `0` varint, `1` fixed64,
//! `2` length-delimited. Field keys are `(field_number << 3) | wire_type`.
//! Unknown fields can be skipped, giving the protocol protobuf-style
//! forward compatibility.

use crate::buf::{Buf, BufMut};
use harp_types::{HarpError, Result};

/// Protobuf wire type of a field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireType {
    /// Base-128 varint.
    Varint,
    /// Little-endian 8-byte value (used for `f64`).
    Fixed64,
    /// Length-prefixed byte string.
    LengthDelimited,
}

impl WireType {
    fn from_raw(raw: u64) -> Result<WireType> {
        match raw {
            0 => Ok(WireType::Varint),
            1 => Ok(WireType::Fixed64),
            2 => Ok(WireType::LengthDelimited),
            other => Err(HarpError::protocol(format!(
                "unsupported wire type {other}"
            ))),
        }
    }

    fn raw(self) -> u64 {
        match self {
            WireType::Varint => 0,
            WireType::Fixed64 => 1,
            WireType::LengthDelimited => 2,
        }
    }
}

/// Writes a base-128 varint.
pub fn put_varint(buf: &mut impl BufMut, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads a base-128 varint.
///
/// # Errors
///
/// Returns [`HarpError::Protocol`] on truncated input or a varint longer
/// than 10 bytes.
pub fn get_varint(buf: &mut impl Buf) -> Result<u64> {
    let mut value = 0u64;
    for shift in (0..64).step_by(7) {
        if !buf.has_remaining() {
            return Err(HarpError::protocol("truncated varint"));
        }
        let byte = buf.get_u8();
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
    }
    Err(HarpError::protocol("varint longer than 10 bytes"))
}

/// Zig-zag encodes a signed integer (protobuf `sint64`).
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Zig-zag decodes a signed integer.
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Writes a field key.
pub fn put_key(buf: &mut impl BufMut, field: u32, wire: WireType) {
    put_varint(buf, (u64::from(field) << 3) | wire.raw());
}

/// Reads a field key, returning `(field_number, wire_type)`.
///
/// # Errors
///
/// Returns [`HarpError::Protocol`] on truncated input or an unsupported
/// wire type.
pub fn get_key(buf: &mut impl Buf) -> Result<(u32, WireType)> {
    let key = get_varint(buf)?;
    let wire = WireType::from_raw(key & 0x7)?;
    Ok(((key >> 3) as u32, wire))
}

/// Writes a varint field (key + value).
pub fn put_uint_field(buf: &mut impl BufMut, field: u32, value: u64) {
    put_key(buf, field, WireType::Varint);
    put_varint(buf, value);
}

/// Writes an `f64` field as fixed64 (key + little-endian bits).
pub fn put_f64_field(buf: &mut impl BufMut, field: u32, value: f64) {
    put_key(buf, field, WireType::Fixed64);
    buf.put_u64_le(value.to_bits());
}

/// Writes a length-delimited field (key + length + bytes).
pub fn put_bytes_field(buf: &mut impl BufMut, field: u32, bytes: &[u8]) {
    put_key(buf, field, WireType::LengthDelimited);
    put_varint(buf, bytes.len() as u64);
    buf.put_slice(bytes);
}

/// Writes a string field.
pub fn put_str_field(buf: &mut impl BufMut, field: u32, s: &str) {
    put_bytes_field(buf, field, s.as_bytes());
}

/// Writes a packed `u32` sequence as one length-delimited field of varints.
pub fn put_packed_u32_field(buf: &mut impl BufMut, field: u32, values: &[u32]) {
    let mut inner: Vec<u8> = Vec::with_capacity(values.len());
    for &v in values {
        put_varint(&mut inner, u64::from(v));
    }
    put_bytes_field(buf, field, &inner);
}

/// Reads a fixed64 `f64` payload.
///
/// # Errors
///
/// Returns [`HarpError::Protocol`] on truncated input.
pub fn get_f64(buf: &mut impl Buf) -> Result<f64> {
    if buf.remaining() < 8 {
        return Err(HarpError::protocol("truncated fixed64"));
    }
    Ok(f64::from_bits(buf.get_u64_le()))
}

/// Reads a length-delimited payload as an owned byte vector.
///
/// # Errors
///
/// Returns [`HarpError::Protocol`] on truncated input.
pub fn get_bytes(buf: &mut impl Buf) -> Result<Vec<u8>> {
    let len = get_varint(buf)? as usize;
    if buf.remaining() < len {
        return Err(HarpError::protocol("truncated length-delimited field"));
    }
    Ok(buf.copy_to_bytes(len).to_vec())
}

/// Reads a length-delimited UTF-8 string.
///
/// # Errors
///
/// Returns [`HarpError::Protocol`] on truncated or non-UTF-8 input.
pub fn get_string(buf: &mut impl Buf) -> Result<String> {
    let bytes = get_bytes(buf)?;
    String::from_utf8(bytes).map_err(|_| HarpError::protocol("invalid utf-8 in string field"))
}

/// Reads a packed `u32` sequence from a length-delimited payload.
///
/// # Errors
///
/// Returns [`HarpError::Protocol`] on truncated input or a component that
/// does not fit into `u32`.
pub fn get_packed_u32(buf: &mut impl Buf) -> Result<Vec<u32>> {
    let bytes = get_bytes(buf)?;
    let mut inner = bytes.as_slice();
    let mut out = Vec::new();
    while !inner.is_empty() {
        let v = get_varint(&mut inner)?;
        out.push(
            u32::try_from(v).map_err(|_| HarpError::protocol("packed u32 component too large"))?,
        );
    }
    Ok(out)
}

/// Borrows a length-delimited payload straight out of the input slice —
/// the zero-copy counterpart of [`get_bytes`]. The returned slice aliases
/// the input; nothing is allocated.
///
/// # Errors
///
/// Returns [`HarpError::Protocol`] on truncated input.
pub fn take_bytes<'a>(buf: &mut &'a [u8]) -> Result<&'a [u8]> {
    let len = get_varint(buf)? as usize;
    if buf.len() < len {
        return Err(HarpError::protocol("truncated length-delimited field"));
    }
    let (head, tail) = buf.split_at(len);
    *buf = tail;
    Ok(head)
}

/// Borrows a length-delimited UTF-8 string out of the input slice —
/// the zero-copy counterpart of [`get_string`].
///
/// # Errors
///
/// Returns [`HarpError::Protocol`] on truncated or non-UTF-8 input.
pub fn take_str<'a>(buf: &mut &'a [u8]) -> Result<&'a str> {
    std::str::from_utf8(take_bytes(buf)?)
        .map_err(|_| HarpError::protocol("invalid utf-8 in string field"))
}

/// Reads a packed `u32` sequence directly from the input slice — the
/// counterpart of [`get_packed_u32`] without the intermediate byte copy
/// (only the resulting `Vec<u32>` is allocated).
///
/// # Errors
///
/// Returns [`HarpError::Protocol`] on truncated input or a component that
/// does not fit into `u32`.
pub fn take_packed_u32(buf: &mut &[u8]) -> Result<Vec<u32>> {
    let mut inner = take_bytes(buf)?;
    let mut out = Vec::with_capacity(inner.len().min(64));
    while !inner.is_empty() {
        let v = get_varint(&mut inner)?;
        out.push(
            u32::try_from(v).map_err(|_| HarpError::protocol("packed u32 component too large"))?,
        );
    }
    Ok(out)
}

/// Skips over one field payload of the given wire type (for forward
/// compatibility with unknown fields).
///
/// # Errors
///
/// Returns [`HarpError::Protocol`] on truncated input.
pub fn skip_field(buf: &mut impl Buf, wire: WireType) -> Result<()> {
    match wire {
        WireType::Varint => {
            get_varint(buf)?;
        }
        WireType::Fixed64 => {
            if buf.remaining() < 8 {
                return Err(HarpError::protocol("truncated fixed64"));
            }
            buf.advance(8);
        }
        WireType::LengthDelimited => {
            let len = get_varint(buf)? as usize;
            if buf.remaining() < len {
                return Err(HarpError::protocol("truncated length-delimited field"));
            }
            buf.advance(len);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip_boundaries() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut slice = buf.as_slice();
            assert_eq!(get_varint(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn varint_encoding_matches_protobuf() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 300);
        assert_eq!(buf, vec![0xAC, 0x02]); // canonical protobuf example
    }

    #[test]
    fn truncated_varint_is_error() {
        let mut slice: &[u8] = &[0x80];
        assert!(get_varint(&mut slice).is_err());
        let mut empty: &[u8] = &[];
        assert!(get_varint(&mut empty).is_err());
    }

    #[test]
    fn overlong_varint_is_error() {
        let mut bytes = vec![0x80u8; 11];
        bytes.push(0);
        let mut slice = bytes.as_slice();
        assert!(get_varint(&mut slice).is_err());
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [0i64, -1, 1, -2, i64::MIN, i64::MAX, 123456, -987654] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        // Canonical values.
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
    }

    #[test]
    fn key_round_trip() {
        let mut buf = Vec::new();
        put_key(&mut buf, 15, WireType::LengthDelimited);
        let mut slice = buf.as_slice();
        assert_eq!(
            get_key(&mut slice).unwrap(),
            (15, WireType::LengthDelimited)
        );
    }

    #[test]
    fn f64_field_round_trip() {
        let mut buf = Vec::new();
        put_f64_field(&mut buf, 2, -1234.5678);
        let mut slice = buf.as_slice();
        let (field, wire) = get_key(&mut slice).unwrap();
        assert_eq!((field, wire), (2, WireType::Fixed64));
        assert_eq!(get_f64(&mut slice).unwrap(), -1234.5678);
    }

    #[test]
    fn nan_survives_round_trip_bitwise() {
        let mut buf = Vec::new();
        put_f64_field(&mut buf, 1, f64::NAN);
        let mut slice = buf.as_slice();
        get_key(&mut slice).unwrap();
        assert!(get_f64(&mut slice).unwrap().is_nan());
    }

    #[test]
    fn packed_u32_round_trip() {
        let values = vec![0u32, 1, 127, 128, 65535, u32::MAX];
        let mut buf = Vec::new();
        put_packed_u32_field(&mut buf, 4, &values);
        let mut slice = buf.as_slice();
        get_key(&mut slice).unwrap();
        assert_eq!(get_packed_u32(&mut slice).unwrap(), values);
    }

    #[test]
    fn string_field_round_trip() {
        let mut buf = Vec::new();
        put_str_field(&mut buf, 3, "héllo wörld");
        let mut slice = buf.as_slice();
        get_key(&mut slice).unwrap();
        assert_eq!(get_string(&mut slice).unwrap(), "héllo wörld");
    }

    #[test]
    fn invalid_utf8_is_error() {
        let mut buf = Vec::new();
        put_bytes_field(&mut buf, 3, &[0xff, 0xfe]);
        let mut slice = buf.as_slice();
        get_key(&mut slice).unwrap();
        assert!(get_string(&mut slice).is_err());
    }

    #[test]
    fn skip_unknown_fields() {
        let mut buf = Vec::new();
        put_uint_field(&mut buf, 9, 42);
        put_f64_field(&mut buf, 10, 1.0);
        put_str_field(&mut buf, 11, "x");
        put_uint_field(&mut buf, 1, 7);
        let mut slice = buf.as_slice();
        // Skip the three unknown fields, then read field 1.
        loop {
            let (field, wire) = get_key(&mut slice).unwrap();
            if field == 1 {
                assert_eq!(get_varint(&mut slice).unwrap(), 7);
                break;
            }
            skip_field(&mut slice, wire).unwrap();
        }
        assert!(slice.is_empty());
    }

    #[test]
    fn take_bytes_borrows_without_copying() {
        let mut buf = Vec::new();
        put_bytes_field(&mut buf, 1, b"payload");
        let mut slice = buf.as_slice();
        get_key(&mut slice).unwrap();
        let borrowed = take_bytes(&mut slice).unwrap();
        assert_eq!(borrowed, b"payload");
        // The borrow aliases the original buffer, not a copy.
        let base = buf.as_ptr() as usize;
        let got = borrowed.as_ptr() as usize;
        assert!((base..base + buf.len()).contains(&got));
        assert!(slice.is_empty());
    }

    #[test]
    fn take_helpers_match_allocating_helpers() {
        let mut buf = Vec::new();
        put_str_field(&mut buf, 1, "zéro-copy");
        put_packed_u32_field(&mut buf, 2, &[0, 1, 127, 128, u32::MAX]);

        let mut a = buf.as_slice();
        get_key(&mut a).unwrap();
        let s_owned = get_string(&mut a).unwrap();
        get_key(&mut a).unwrap();
        let p_owned = get_packed_u32(&mut a).unwrap();

        let mut b = buf.as_slice();
        get_key(&mut b).unwrap();
        let s_borrowed = take_str(&mut b).unwrap();
        get_key(&mut b).unwrap();
        let p_borrowed = take_packed_u32(&mut b).unwrap();

        assert_eq!(s_owned, s_borrowed);
        assert_eq!(p_owned, p_borrowed);
    }

    #[test]
    fn take_truncated_is_error() {
        // Claims 9 bytes, provides 2.
        let mut slice: &[u8] = &[9, 0xaa, 0xbb];
        assert!(take_bytes(&mut slice).is_err());
        let mut bad_utf8 = Vec::new();
        put_bytes_field(&mut bad_utf8, 1, &[0xff, 0xfe]);
        let mut slice = bad_utf8.as_slice();
        get_key(&mut slice).unwrap();
        assert!(take_str(&mut slice).is_err());
    }

    #[test]
    fn skip_truncated_is_error() {
        let mut buf = Vec::new();
        put_key(&mut buf, 1, WireType::Fixed64);
        buf.extend_from_slice(&[0, 1, 2]); // only 3 of 8 bytes
        let mut slice = buf.as_slice();
        let (_, wire) = get_key(&mut slice).unwrap();
        assert!(skip_field(&mut slice, wire).is_err());
    }
}
