//! The HARP communication protocol between `libharp` and the HARP RM.
//!
//! The paper (§4.1.1) specifies "protobuf messages over Unix sockets". This
//! crate implements the message set with a hand-rolled, protobuf-compatible
//! wire format (varints, zig-zag, little-endian fixed64, length-delimited
//! fields) so that no code generation is needed:
//!
//! * [`wire`] — low-level encoding primitives over [`bytes`] buffers.
//! * [`Message`] — the protocol message set: registration, operating-point
//!   submission, activation, utility feedback, exit.
//! * [`frame`] — length-prefixed framing for byte streams (Unix sockets) and
//!   the [`frame::Framed`] reader/writer helpers.
//! * [`duplex`] — an in-process transport pair used by the simulator and by
//!   tests; the daemon (`harp-daemon`) speaks the same frames over real
//!   `UnixStream`s.
//!
//! Decoders skip unknown fields, so the format is forward compatible in the
//! protobuf sense.
//!
//! # Example
//!
//! ```
//! use harp_proto::{AdaptivityType, Message};
//!
//! let msg = Message::Register(harp_proto::Register {
//!     pid: 4242,
//!     app_name: "mg.C".to_string(),
//!     adaptivity: AdaptivityType::Scalable,
//!     provides_utility: false,
//! });
//! let bytes = msg.encode();
//! let back = Message::decode(&bytes)?;
//! assert_eq!(msg, back);
//! # Ok::<(), harp_types::HarpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buf;
pub mod frame;
pub mod legacy;
mod messages;
pub mod wire;

pub use messages::{
    Activate, AdaptivityType, DumpTelemetry, ErrorMsg, Hello, Message, Register, RegisterAck,
    Resume, SessionEnergy, SubmitPoints, SubscribeTelemetry, TelemetryDump, TelemetryFrame,
    UtilityReport, UtilityRequest, WirePoint,
};

use std::sync::mpsc;

/// One endpoint of an in-process, bidirectional message channel.
///
/// Messages are encoded to their wire representation on send and decoded on
/// receive, so in-process communication exercises the same codec as the real
/// Unix-socket transport.
#[derive(Debug)]
pub struct DuplexEndpoint {
    tx: mpsc::Sender<Vec<u8>>,
    rx: mpsc::Receiver<Vec<u8>>,
}

impl DuplexEndpoint {
    /// Sends a message to the peer.
    ///
    /// # Errors
    ///
    /// Returns [`harp_types::HarpError::Disconnected`] if the peer
    /// endpoint was dropped — the same classification the Unix-socket
    /// transport gives a hangup, so reconnect logic behaves identically
    /// over both.
    pub fn send(&self, msg: &Message) -> harp_types::Result<()> {
        self.tx
            .send(msg.encode())
            .map_err(|_| harp_types::HarpError::disconnected("peer endpoint closed"))
    }

    /// Receives the next message, blocking until one arrives.
    ///
    /// # Errors
    ///
    /// Returns [`harp_types::HarpError::Disconnected`] if the peer
    /// endpoint was dropped, or [`harp_types::HarpError::Protocol`] if the
    /// payload fails to decode.
    pub fn recv(&self) -> harp_types::Result<Message> {
        let bytes = self
            .rx
            .recv()
            .map_err(|_| harp_types::HarpError::disconnected("peer endpoint closed"))?;
        Message::decode(&bytes)
    }

    /// Receives the next message if one is already queued.
    ///
    /// Returns `Ok(None)` when the queue is empty.
    ///
    /// # Errors
    ///
    /// Returns [`harp_types::HarpError::Disconnected`] if the peer
    /// endpoint was dropped, or [`harp_types::HarpError::Protocol`] if the
    /// payload fails to decode.
    pub fn try_recv(&self) -> harp_types::Result<Option<Message>> {
        match self.rx.try_recv() {
            Ok(bytes) => Message::decode(&bytes).map(Some),
            Err(mpsc::TryRecvError::Empty) => Ok(None),
            Err(mpsc::TryRecvError::Disconnected) => {
                Err(harp_types::HarpError::disconnected("peer endpoint closed"))
            }
        }
    }
}

/// Creates a connected pair of in-process endpoints (application side, RM
/// side).
pub fn duplex() -> (DuplexEndpoint, DuplexEndpoint) {
    let (a_tx, b_rx) = mpsc::channel();
    let (b_tx, a_rx) = mpsc::channel();
    (
        DuplexEndpoint { tx: a_tx, rx: a_rx },
        DuplexEndpoint { tx: b_tx, rx: b_rx },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplex_round_trips_messages() {
        let (app, rm) = duplex();
        app.send(&Message::UtilityRequest(UtilityRequest { app_id: 7 }))
            .unwrap();
        let got = rm.recv().unwrap();
        assert_eq!(got, Message::UtilityRequest(UtilityRequest { app_id: 7 }));
        rm.send(&Message::RegisterAck(RegisterAck::new(7))).unwrap();
        assert_eq!(
            app.try_recv().unwrap(),
            Some(Message::RegisterAck(RegisterAck::new(7)))
        );
        assert_eq!(app.try_recv().unwrap(), None);
    }

    #[test]
    fn dropped_peer_is_a_disconnect() {
        let (app, rm) = duplex();
        drop(rm);
        assert!(app
            .send(&Message::Exit { app_id: 1 })
            .unwrap_err()
            .is_disconnect());
        assert!(app.recv().unwrap_err().is_disconnect());
        assert!(app.try_recv().unwrap_err().is_retryable());
    }
}
