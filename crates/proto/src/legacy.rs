//! The pre-reactor *allocating* message decoder, frozen verbatim.
//!
//! [`Message::decode`] now borrows the envelope payload and nested
//! submessages out of the input instead of copying them. This module
//! keeps the old implementation — envelope payload extracted as an owned
//! `Vec`, every nested point copied, strings/packed sequences read via
//! the allocating [`wire`] helpers — as a differential oracle: the
//! corpus and property tests in `tests/corpus_decode.rs` assert both
//! decoders accept/reject byte-identically and produce equal messages.
//!
//! Do not "improve" this code; its value is that it does not change.

use crate::wire::{self, WireType};
use crate::{
    Activate, AdaptivityType, DumpTelemetry, ErrorMsg, Hello, Message, Register, RegisterAck,
    Resume, SessionEnergy, SubmitPoints, SubscribeTelemetry, TelemetryDump, TelemetryFrame,
    UtilityReport, UtilityRequest, WirePoint,
};
use harp_types::{HarpError, Result};

fn adaptivity_from_raw(raw: u64) -> Result<AdaptivityType> {
    match raw {
        0 => Ok(AdaptivityType::Static),
        1 => Ok(AdaptivityType::Scalable),
        2 => Ok(AdaptivityType::Custom),
        other => Err(HarpError::protocol(format!(
            "unknown adaptivity type {other}"
        ))),
    }
}

/// Decodes a message with the frozen allocating code path.
///
/// # Errors
///
/// Returns [`HarpError::Protocol`] exactly where [`Message::decode`] does.
pub fn decode(mut bytes: &[u8]) -> Result<Message> {
    let buf = &mut bytes;
    let mut discriminant: Option<u64> = None;
    let mut payload: Option<Vec<u8>> = None;
    while !buf.is_empty() {
        let (field, wiretype) = wire::get_key(buf)?;
        match (field, wiretype) {
            (1, WireType::Varint) => discriminant = Some(wire::get_varint(buf)?),
            (2, WireType::LengthDelimited) => payload = Some(wire::get_bytes(buf)?),
            (_, w) => wire::skip_field(buf, w)?,
        }
    }
    let discriminant =
        discriminant.ok_or_else(|| HarpError::protocol("missing message discriminant"))?;
    let payload = payload.ok_or_else(|| HarpError::protocol("missing message payload"))?;
    let mut p = payload.as_slice();
    decode_payload(discriminant, &mut p)
}

fn decode_payload(discriminant: u64, buf: &mut &[u8]) -> Result<Message> {
    match discriminant {
        1 => {
            let (mut pid, mut name, mut adapt, mut provides) = (0u64, String::new(), 0u64, false);
            for_each_field(buf, |field, wiretype, buf| {
                match (field, wiretype) {
                    (1, WireType::Varint) => pid = wire::get_varint(buf)?,
                    (2, WireType::LengthDelimited) => name = wire::get_string(buf)?,
                    (3, WireType::Varint) => adapt = wire::get_varint(buf)?,
                    (4, WireType::Varint) => provides = wire::get_varint(buf)? != 0,
                    (_, w) => wire::skip_field(buf, w)?,
                }
                Ok(())
            })?;
            Ok(Message::Register(Register {
                pid,
                app_name: name,
                adaptivity: adaptivity_from_raw(adapt)?,
                provides_utility: provides,
            }))
        }
        2 => {
            let (mut app_id, mut epoch, mut resume_token, mut resumed) = (0u64, 0u64, 0u64, false);
            for_each_field(buf, |field, wiretype, buf| {
                match (field, wiretype) {
                    (1, WireType::Varint) => app_id = wire::get_varint(buf)?,
                    (2, WireType::Varint) => epoch = wire::get_varint(buf)?,
                    (3, WireType::Varint) => resume_token = wire::get_varint(buf)?,
                    (4, WireType::Varint) => resumed = wire::get_varint(buf)? != 0,
                    (_, w) => wire::skip_field(buf, w)?,
                }
                Ok(())
            })?;
            Ok(Message::RegisterAck(RegisterAck {
                app_id,
                epoch,
                resume_token,
                resumed,
            }))
        }
        3 => {
            let mut app_id = 0u64;
            let mut smt_widths = Vec::new();
            let mut points = Vec::new();
            for_each_field(buf, |field, wiretype, buf| {
                match (field, wiretype) {
                    (1, WireType::Varint) => app_id = wire::get_varint(buf)?,
                    (2, WireType::LengthDelimited) => smt_widths = wire::get_packed_u32(buf)?,
                    (3, WireType::LengthDelimited) => {
                        let inner = wire::get_bytes(buf)?;
                        points.push(decode_point(&mut inner.as_slice())?);
                    }
                    (_, w) => wire::skip_field(buf, w)?,
                }
                Ok(())
            })?;
            Ok(Message::SubmitPoints(SubmitPoints {
                app_id,
                smt_widths,
                points,
            }))
        }
        4 => {
            let mut app_id = 0u64;
            let mut erv_flat = Vec::new();
            let mut core_ids = Vec::new();
            let mut parallelism = 0u32;
            let mut hw_thread_ids = Vec::new();
            for_each_field(buf, |field, wiretype, buf| {
                match (field, wiretype) {
                    (1, WireType::Varint) => app_id = wire::get_varint(buf)?,
                    (2, WireType::LengthDelimited) => erv_flat = wire::get_packed_u32(buf)?,
                    (3, WireType::LengthDelimited) => core_ids = wire::get_packed_u32(buf)?,
                    (4, WireType::Varint) => {
                        parallelism = u32::try_from(wire::get_varint(buf)?)
                            .map_err(|_| HarpError::protocol("parallelism too large"))?
                    }
                    (5, WireType::LengthDelimited) => hw_thread_ids = wire::get_packed_u32(buf)?,
                    (_, w) => wire::skip_field(buf, w)?,
                }
                Ok(())
            })?;
            Ok(Message::Activate(Activate {
                app_id,
                erv_flat,
                core_ids,
                parallelism,
                hw_thread_ids,
            }))
        }
        5 => {
            let mut app_id = 0u64;
            for_each_field(buf, |field, wiretype, buf| {
                match (field, wiretype) {
                    (1, WireType::Varint) => app_id = wire::get_varint(buf)?,
                    (_, w) => wire::skip_field(buf, w)?,
                }
                Ok(())
            })?;
            Ok(Message::UtilityRequest(UtilityRequest { app_id }))
        }
        6 => {
            let mut app_id = 0u64;
            let mut utility = 0.0;
            for_each_field(buf, |field, wiretype, buf| {
                match (field, wiretype) {
                    (1, WireType::Varint) => app_id = wire::get_varint(buf)?,
                    (2, WireType::Fixed64) => utility = wire::get_f64(buf)?,
                    (_, w) => wire::skip_field(buf, w)?,
                }
                Ok(())
            })?;
            Ok(Message::UtilityReport(UtilityReport { app_id, utility }))
        }
        7 => {
            let mut app_id = 0u64;
            for_each_field(buf, |field, wiretype, buf| {
                match (field, wiretype) {
                    (1, WireType::Varint) => app_id = wire::get_varint(buf)?,
                    (_, w) => wire::skip_field(buf, w)?,
                }
                Ok(())
            })?;
            Ok(Message::Exit { app_id })
        }
        8 => {
            let mut code = 0u32;
            let mut detail = String::new();
            for_each_field(buf, |field, wiretype, buf| {
                match (field, wiretype) {
                    (1, WireType::Varint) => {
                        code = u32::try_from(wire::get_varint(buf)?)
                            .map_err(|_| HarpError::protocol("error code too large"))?
                    }
                    (2, WireType::LengthDelimited) => detail = wire::get_string(buf)?,
                    (_, w) => wire::skip_field(buf, w)?,
                }
                Ok(())
            })?;
            Ok(Message::Error(ErrorMsg { code, detail }))
        }
        9 => {
            let mut include_metrics = false;
            for_each_field(buf, |field, wiretype, buf| {
                match (field, wiretype) {
                    (1, WireType::Varint) => include_metrics = wire::get_varint(buf)? != 0,
                    (_, w) => wire::skip_field(buf, w)?,
                }
                Ok(())
            })?;
            Ok(Message::DumpTelemetry(DumpTelemetry { include_metrics }))
        }
        10 => {
            let mut jsonl = String::new();
            let mut truncated = false;
            for_each_field(buf, |field, wiretype, buf| {
                match (field, wiretype) {
                    (1, WireType::LengthDelimited) => jsonl = wire::get_string(buf)?,
                    (2, WireType::Varint) => truncated = wire::get_varint(buf)? != 0,
                    (_, w) => wire::skip_field(buf, w)?,
                }
                Ok(())
            })?;
            Ok(Message::TelemetryDump(TelemetryDump { jsonl, truncated }))
        }
        11 => {
            let (mut epoch, mut resume_token) = (0u64, 0u64);
            for_each_field(buf, |field, wiretype, buf| {
                match (field, wiretype) {
                    (1, WireType::Varint) => epoch = wire::get_varint(buf)?,
                    (2, WireType::Varint) => resume_token = wire::get_varint(buf)?,
                    (_, w) => wire::skip_field(buf, w)?,
                }
                Ok(())
            })?;
            Ok(Message::Hello(Hello {
                epoch,
                resume_token,
            }))
        }
        12 => {
            let (mut resume_token, mut pid, mut name, mut adapt, mut provides) =
                (0u64, 0u64, String::new(), 0u64, false);
            for_each_field(buf, |field, wiretype, buf| {
                match (field, wiretype) {
                    (1, WireType::Varint) => resume_token = wire::get_varint(buf)?,
                    (2, WireType::Varint) => pid = wire::get_varint(buf)?,
                    (3, WireType::LengthDelimited) => name = wire::get_string(buf)?,
                    (4, WireType::Varint) => adapt = wire::get_varint(buf)?,
                    (5, WireType::Varint) => provides = wire::get_varint(buf)? != 0,
                    (_, w) => wire::skip_field(buf, w)?,
                }
                Ok(())
            })?;
            Ok(Message::Resume(Resume {
                resume_token,
                pid,
                app_name: name,
                adaptivity: adaptivity_from_raw(adapt)?,
                provides_utility: provides,
            }))
        }
        // Discriminants 13/14 postdate the freeze; these arms keep the
        // differential property (legacy == zero-copy on every input)
        // total, written in the module's original allocating style.
        13 => {
            let mut interval_ms = 0u32;
            let mut include_metrics = false;
            for_each_field(buf, |field, wiretype, buf| {
                match (field, wiretype) {
                    (1, WireType::Varint) => {
                        interval_ms = u32::try_from(wire::get_varint(buf)?)
                            .map_err(|_| HarpError::protocol("interval too large"))?
                    }
                    (2, WireType::Varint) => include_metrics = wire::get_varint(buf)? != 0,
                    (_, w) => wire::skip_field(buf, w)?,
                }
                Ok(())
            })?;
            Ok(Message::SubscribeTelemetry(SubscribeTelemetry {
                interval_ms,
                include_metrics,
            }))
        }
        14 => {
            let mut frame = TelemetryFrame {
                seq: 0,
                dropped_frames: 0,
                interval_ms: 0,
                tick_uj: 0,
                idle_uj: 0,
                total_uj: 0,
                sessions: Vec::new(),
                metrics_jsonl: String::new(),
            };
            for_each_field(buf, |field, wiretype, buf| {
                match (field, wiretype) {
                    (1, WireType::Varint) => frame.seq = wire::get_varint(buf)?,
                    (2, WireType::Varint) => frame.dropped_frames = wire::get_varint(buf)?,
                    (3, WireType::Varint) => {
                        frame.interval_ms = u32::try_from(wire::get_varint(buf)?)
                            .map_err(|_| HarpError::protocol("interval too large"))?
                    }
                    (4, WireType::Varint) => frame.tick_uj = wire::get_varint(buf)?,
                    (5, WireType::Varint) => frame.idle_uj = wire::get_varint(buf)?,
                    (6, WireType::Varint) => frame.total_uj = wire::get_varint(buf)?,
                    (7, WireType::LengthDelimited) => {
                        let inner = wire::get_bytes(buf)?;
                        frame
                            .sessions
                            .push(decode_session_energy(&mut inner.as_slice())?);
                    }
                    (8, WireType::LengthDelimited) => frame.metrics_jsonl = wire::get_string(buf)?,
                    (_, w) => wire::skip_field(buf, w)?,
                }
                Ok(())
            })?;
            Ok(Message::TelemetryFrame(frame))
        }
        other => Err(HarpError::protocol(format!(
            "unknown message discriminant {other}"
        ))),
    }
}

fn decode_session_energy(buf: &mut &[u8]) -> Result<SessionEnergy> {
    let mut s = SessionEnergy {
        app_id: 0,
        name: String::new(),
        tick_uj: 0,
        total_uj: 0,
        latency_p99_us: 0,
    };
    for_each_field(buf, |field, wiretype, buf| {
        match (field, wiretype) {
            (1, WireType::Varint) => s.app_id = wire::get_varint(buf)?,
            (2, WireType::LengthDelimited) => s.name = wire::get_string(buf)?,
            (3, WireType::Varint) => s.tick_uj = wire::get_varint(buf)?,
            (4, WireType::Varint) => s.total_uj = wire::get_varint(buf)?,
            (5, WireType::Varint) => s.latency_p99_us = wire::get_varint(buf)?,
            (_, w) => wire::skip_field(buf, w)?,
        }
        Ok(())
    })?;
    Ok(s)
}

fn decode_point(buf: &mut &[u8]) -> Result<WirePoint> {
    let mut erv_flat = Vec::new();
    let mut utility = 0.0;
    let mut power = 0.0;
    for_each_field(buf, |field, wiretype, buf| {
        match (field, wiretype) {
            (1, WireType::LengthDelimited) => erv_flat = wire::get_packed_u32(buf)?,
            (2, WireType::Fixed64) => utility = wire::get_f64(buf)?,
            (3, WireType::Fixed64) => power = wire::get_f64(buf)?,
            (_, w) => wire::skip_field(buf, w)?,
        }
        Ok(())
    })?;
    Ok(WirePoint {
        erv_flat,
        utility,
        power,
    })
}

fn for_each_field(
    buf: &mut &[u8],
    mut f: impl FnMut(u32, WireType, &mut &[u8]) -> Result<()>,
) -> Result<()> {
    while !buf.is_empty() {
        let (field, wiretype) = wire::get_key(buf)?;
        f(field, wiretype, buf)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_matches_primary_on_every_message_type() {
        let msgs = vec![
            Message::Register(Register {
                pid: 31337,
                app_name: "binpack".into(),
                adaptivity: AdaptivityType::Scalable,
                provides_utility: true,
            }),
            Message::RegisterAck(RegisterAck {
                app_id: 9,
                epoch: 4,
                resume_token: 0xdead_beef,
                resumed: true,
            }),
            Message::SubmitPoints(SubmitPoints {
                app_id: 9,
                smt_widths: vec![2, 1],
                points: vec![WirePoint {
                    erv_flat: vec![0, 8, 16],
                    utility: 3.3e10,
                    power: 110.5,
                }],
            }),
            Message::Activate(Activate {
                app_id: 9,
                erv_flat: vec![1, 2, 4],
                core_ids: vec![0, 1, 2],
                parallelism: 9,
                hw_thread_ids: vec![0, 1, 2, 3],
            }),
            Message::Exit { app_id: 9 },
            Message::Hello(Hello {
                epoch: 3,
                resume_token: 77,
            }),
        ];
        for msg in msgs {
            let bytes = msg.encode();
            assert_eq!(decode(&bytes).unwrap(), msg);
            assert_eq!(Message::decode(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn legacy_rejects_garbage_like_primary() {
        for bad in [&[][..], &[0xff, 0xff, 0xff][..], &[0x08][..]] {
            assert_eq!(decode(bad).is_err(), Message::decode(bad).is_err());
            assert!(decode(bad).is_err());
        }
    }
}
