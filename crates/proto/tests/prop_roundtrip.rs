//! Property tests: every representable message survives an encode/decode
//! round trip, both bare and framed, and the decoder never panics on
//! arbitrary bytes.

use harp_proto::{
    frame, Activate, AdaptivityType, ErrorMsg, Hello, Message, Register, RegisterAck, Resume,
    SubmitPoints, UtilityReport, UtilityRequest, WirePoint,
};
use proptest::prelude::*;

fn arb_adaptivity() -> impl Strategy<Value = AdaptivityType> {
    prop_oneof![
        Just(AdaptivityType::Static),
        Just(AdaptivityType::Scalable),
        Just(AdaptivityType::Custom),
    ]
}

fn arb_point() -> impl Strategy<Value = WirePoint> {
    (
        proptest::collection::vec(any::<u32>(), 0..6),
        any::<f64>(),
        any::<f64>(),
    )
        .prop_map(|(erv_flat, utility, power)| WirePoint {
            erv_flat,
            utility,
            power,
        })
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u64>(), ".{0,40}", arb_adaptivity(), any::<bool>()).prop_map(
            |(pid, app_name, adaptivity, provides_utility)| Message::Register(Register {
                pid,
                app_name,
                adaptivity,
                provides_utility,
            })
        ),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<bool>()).prop_map(
            |(app_id, epoch, resume_token, resumed)| Message::RegisterAck(RegisterAck {
                app_id,
                epoch,
                resume_token,
                resumed,
            })
        ),
        (any::<u64>(), any::<u64>()).prop_map(|(epoch, resume_token)| Message::Hello(Hello {
            epoch,
            resume_token,
        })),
        (
            any::<u64>(),
            any::<u64>(),
            ".{0,40}",
            arb_adaptivity(),
            any::<bool>()
        )
            .prop_map(
                |(resume_token, pid, app_name, adaptivity, provides_utility)| {
                    Message::Resume(Resume {
                        resume_token,
                        pid,
                        app_name,
                        adaptivity,
                        provides_utility,
                    })
                }
            ),
        (
            any::<u64>(),
            proptest::collection::vec(any::<u32>(), 0..4),
            proptest::collection::vec(arb_point(), 0..5),
        )
            .prop_map(|(app_id, smt_widths, points)| {
                Message::SubmitPoints(SubmitPoints {
                    app_id,
                    smt_widths,
                    points,
                })
            }),
        (
            any::<u64>(),
            proptest::collection::vec(any::<u32>(), 0..6),
            proptest::collection::vec(any::<u32>(), 0..32),
            any::<u32>(),
            proptest::collection::vec(any::<u32>(), 0..32),
        )
            .prop_map(|(app_id, erv_flat, core_ids, parallelism, hw_thread_ids)| {
                Message::Activate(Activate {
                    app_id,
                    erv_flat,
                    core_ids,
                    parallelism,
                    hw_thread_ids,
                })
            }),
        any::<u64>().prop_map(|app_id| Message::UtilityRequest(UtilityRequest { app_id })),
        (any::<u64>(), any::<f64>()).prop_map(|(app_id, utility)| {
            Message::UtilityReport(UtilityReport { app_id, utility })
        }),
        any::<u64>().prop_map(|app_id| Message::Exit { app_id }),
        (any::<u32>(), ".{0,60}")
            .prop_map(|(code, detail)| Message::Error(ErrorMsg { code, detail })),
    ]
}

/// NaN-aware message equality (NaN utilities round-trip bit-exactly but
/// `PartialEq` would reject them).
fn msg_eq(a: &Message, b: &Message) -> bool {
    a.encode() == b.encode()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_round_trip(msg in arb_message()) {
        let bytes = msg.encode();
        let back = Message::decode(&bytes).expect("decode of own encoding");
        prop_assert!(msg_eq(&msg, &back));
    }

    #[test]
    fn framed_round_trip(msgs in proptest::collection::vec(arb_message(), 1..6)) {
        let mut buf = Vec::new();
        for m in &msgs {
            frame::write_frame(&mut buf, m).expect("write frame");
        }
        let mut cursor = std::io::Cursor::new(buf);
        for m in &msgs {
            let got = frame::read_frame(&mut cursor)
                .expect("read frame")
                .expect("frame present");
            prop_assert!(msg_eq(m, &got));
        }
        prop_assert_eq!(frame::read_frame(&mut cursor).expect("clean eof"), None);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(&bytes); // may error, must not panic
    }

    #[test]
    fn truncation_is_an_error_not_a_panic(msg in arb_message(), cut in 0.0f64..1.0) {
        let bytes = msg.encode();
        if bytes.len() > 1 {
            let keep = ((bytes.len() as f64) * cut) as usize;
            if keep < bytes.len() {
                let _ = Message::decode(&bytes[..keep]); // may error, must not panic
            }
        }
    }
}
