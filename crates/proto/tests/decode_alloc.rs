//! Proof of the zero-copy property: steady-state frame decoding performs
//! no per-message payload allocation.
//!
//! The old `read_frame` path allocated a fresh body `Vec<u8>` for every
//! frame. The incremental [`FrameDecoder`] instead lends out borrowed
//! [`harp_proto::frame::Frame`]s over its internal ring, so once the ring
//! has grown to its working size, pushing messages through it touches the
//! allocator only for whatever owned fields the decoded `Message` itself
//! carries — and for payload-free messages, not at all.
//!
//! The counter is a thread-local tally fed by a wrapper global allocator,
//! so concurrent test threads cannot pollute the measurement.

use harp_proto::frame::{encode_frame, FrameDecoder};
use harp_proto::Message;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: defers entirely to `System`; the bookkeeping around it does not
// allocate (Cell<u64> in a thread-local).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

#[test]
fn steady_state_decode_is_allocation_free() {
    // One payload-free message, framed once, replayed many times.
    let frame_bytes = encode_frame(&Message::Exit { app_id: 77 }).unwrap();
    let mut dec = FrameDecoder::new();

    let mut feed_and_decode = |dec: &mut FrameDecoder| {
        let space = dec.read_space(frame_bytes.len());
        space[..frame_bytes.len()].copy_from_slice(&frame_bytes);
        dec.commit(frame_bytes.len());
        let mut n = 0;
        while let Some(frame) = dec.next_frame().unwrap() {
            assert_eq!(frame.decode().unwrap(), Message::Exit { app_id: 77 });
            n += 1;
        }
        n
    };

    // Warm-up: let the decoder's ring grow to its working size.
    for _ in 0..64 {
        feed_and_decode(&mut dec);
    }

    // Steady state: thousands of messages, zero allocator traffic.
    let before = allocs();
    let mut decoded = 0;
    for _ in 0..4096 {
        decoded += feed_and_decode(&mut dec);
    }
    let delta = allocs() - before;
    assert_eq!(decoded, 4096);
    assert_eq!(
        delta, 0,
        "steady-state decode of {decoded} messages hit the allocator {delta} times"
    );
}

/// Contrast: the legacy blocking reader allocates at least one body buffer
/// per frame. This pins down *why* the reactor uses the incremental
/// decoder, and fails loudly if someone "simplifies" it back.
#[test]
fn blocking_reader_allocates_per_frame() {
    let mut stream = Vec::new();
    for _ in 0..256 {
        stream.extend_from_slice(&encode_frame(&Message::Exit { app_id: 77 }).unwrap());
    }
    let mut cursor = std::io::Cursor::new(stream.as_slice());
    // Warm-up one frame so lazy statics settle.
    assert!(harp_proto::frame::read_frame(&mut cursor)
        .unwrap()
        .is_some());

    let before = allocs();
    let mut n = 0;
    while let Some(msg) = harp_proto::frame::read_frame(&mut cursor).unwrap() {
        assert_eq!(msg, Message::Exit { app_id: 77 });
        n += 1;
    }
    let delta = allocs() - before;
    assert_eq!(n, 255);
    assert!(
        delta >= n,
        "expected >= {n} allocations from the per-frame body buffers, saw {delta}"
    );
}
